//! From tokens to a workspace model: files, `fn` items, scopes, and
//! justification comments.
//!
//! The parser tracks exactly the structure the passes need:
//!
//! - every `fn` item (free functions, inherent and trait methods, nested
//!   fns), with its enclosing impl type / trait, module path, `#[test]` /
//!   `#[cfg(test)]` status, and `#[cfg(feature = "…")]` gates — own *and
//!   inherited* from enclosing `mod`/`impl` scopes;
//! - per-token ownership: which innermost `fn` a token belongs to
//!   (closures therefore attribute to their enclosing fn, as required);
//! - per-token test-scope flags, so code inside `#[cfg(test)] mod tests`
//!   is excluded from emission/panic accounting;
//! - `// audit: safe — reason` justification comments, with their line
//!   and reason text;
//! - the crate root's `#![forbid(unsafe_code)]` inner attribute.
//!
//! It is a *recognizer*, not a validator: token sequences it does not
//! understand are skipped, and brace tracking keeps the scope stack
//! consistent on any input that brace-balances (which compiling Rust
//! does; the planted fixture does too).

use crate::lex::{lex, Spanned, Tok};

/// Token index marker for "owned by no fn" (module-level tokens).
pub const NO_OWNER: u32 = u32::MAX;

/// One `fn` item anywhere in the workspace.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Global id — index into [`Model::fns`].
    pub id: u32,
    /// Index into [`Model::files`].
    pub file: u32,
    /// Bare name (`verify_json`, `new`).
    pub name: String,
    /// Display name: `crate::module::Type::name`.
    pub qualname: String,
    /// The `impl` type's last path segment, for methods.
    pub self_type: Option<String>,
    /// The trait being implemented (or declared, for default methods).
    pub trait_name: Option<String>,
    /// `#[test]`, inside `#[cfg(test)]`, or in a `tests/` file.
    pub is_test: bool,
    /// Feature gates in effect (own + inherited), e.g. `["mutate"]`.
    pub features: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range of the whole item (signature start .. body end).
    pub span: (u32, u32),
    /// Whether the item has a body (trait method *declarations* do not).
    pub has_body: bool,
}

/// A `// audit: safe — reason` comment.
#[derive(Clone, Debug)]
pub struct Justification {
    /// Index into [`Model::files`].
    pub file: u32,
    /// 1-based line the comment sits on.
    pub line: u32,
    /// The reason text after the dash.
    pub reason: String,
}

/// One parsed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Owning crate's package name (e.g. `mmio-cert`).
    pub crate_name: String,
    /// Workspace-relative path (e.g. `crates/cert/src/verify.rs`).
    pub rel_path: String,
    /// Whether the whole file is test code (`tests/`, `benches/`).
    pub is_test_file: bool,
    /// Whether this file is a crate root (`lib.rs` / `main.rs`).
    pub is_crate_root: bool,
    /// Crate roots: whether `#![forbid(unsafe_code)]` is present.
    pub has_forbid_unsafe: bool,
    /// The token stream.
    pub toks: Vec<Spanned>,
    /// Per-token owning fn id ([`NO_OWNER`] at module level).
    pub owner: Vec<u32>,
    /// Per-token test-scope flag.
    pub in_test: Vec<bool>,
}

/// The whole parsed workspace.
#[derive(Debug, Default)]
pub struct Model {
    /// Every parsed file.
    pub files: Vec<SourceFile>,
    /// Every fn item, globally indexed.
    pub fns: Vec<FnItem>,
    /// Every justification comment.
    pub justifications: Vec<Justification>,
    /// Declared crate dependencies (from each `Cargo.toml`); the call
    /// graph only admits cross-crate edges along these. Crates with no
    /// entry admit no cross-crate edges.
    pub deps: std::collections::HashMap<String, Vec<String>>,
}

impl Model {
    /// Records crate `name`'s declared dependencies.
    pub fn add_crate_deps(&mut self, name: &str, deps: Vec<String>) {
        self.deps.insert(name.to_string(), deps);
    }

    /// Whether a call edge from crate `from` into crate `to` is
    /// structurally possible (same crate, or a declared dependency).
    pub fn crate_edge_allowed(&self, from: &str, to: &str) -> bool {
        from == to
            || self
                .deps
                .get(from)
                .is_some_and(|d| d.iter().any(|x| x == to))
    }
    /// Parses one file and appends it (and its items) to the model.
    pub fn add_file(&mut self, crate_name: &str, rel_path: &str, src: &str) {
        let file_id = self.files.len() as u32;
        let is_test_file = rel_path.contains("/tests/") || rel_path.contains("/benches/");
        let file_name = rel_path.rsplit('/').next().unwrap_or(rel_path);
        let is_crate_root = file_name == "lib.rs" || file_name == "main.rs";
        let toks = lex(src);
        let mut p = Parser {
            model: self,
            file_id,
            is_test_file,
            toks: &toks,
            owner: vec![NO_OWNER; toks.len()],
            in_test: vec![is_test_file; toks.len()],
        };
        let has_forbid_unsafe = p.run(crate_name, rel_path);
        let (owner, in_test) = (p.owner, p.in_test);
        self.files.push(SourceFile {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            is_test_file,
            is_crate_root,
            has_forbid_unsafe,
            toks,
            owner,
            in_test,
        });
    }

    /// The fns defined in file `f`, in source order.
    pub fn fns_in_file(&self, f: u32) -> impl Iterator<Item = &FnItem> {
        self.fns.iter().filter(move |i| i.file == f)
    }
}

/// Attributes gathered in front of an item.
#[derive(Default, Clone)]
struct Pending {
    is_test: bool,
    features: Vec<String>,
}

#[derive(Clone)]
enum ScopeKind {
    Block,
    Mod(String),
    Impl {
        ty: Option<String>,
        tr: Option<String>,
    },
    Trait(String),
    Fn(u32),
}

struct Scope {
    kind: ScopeKind,
    is_test: bool,
    features: Vec<String>,
}

struct Parser<'a> {
    model: &'a mut Model,
    file_id: u32,
    is_test_file: bool,
    toks: &'a [Spanned],
    owner: Vec<u32>,
    in_test: Vec<bool>,
}

impl Parser<'_> {
    /// Walks the token stream; returns whether `#![forbid(unsafe_code)]`
    /// was seen.
    fn run(&mut self, crate_name: &str, rel_path: &str) -> bool {
        let toks = self.toks;
        let mut scopes: Vec<Scope> = vec![Scope {
            kind: ScopeKind::Block,
            is_test: self.is_test_file,
            features: Vec::new(),
        }];
        let mut pending = Pending::default();
        let mut next_scope: Option<ScopeKind> = None;
        let mut has_forbid_unsafe = false;
        let mut i = 0usize;
        while i < toks.len() {
            let in_test_here = scopes.last().is_some_and(|s| s.is_test);
            if let Some(fn_scope) = scopes.iter().rev().find_map(|s| match s.kind {
                ScopeKind::Fn(id) => Some(id),
                _ => None,
            }) {
                self.owner[i] = fn_scope;
            }
            self.in_test[i] = in_test_here || pending.is_test;
            match &toks[i].tok {
                Tok::LineComment(text) => {
                    if let Some(reason) = parse_justification(text) {
                        self.model.justifications.push(Justification {
                            file: self.file_id,
                            line: toks[i].line,
                            reason,
                        });
                    }
                    i += 1;
                }
                Tok::Punct("#") => {
                    let inner = toks.get(i + 1).is_some_and(|t| t.is_punct("!"));
                    let open = i + if inner { 2 } else { 1 };
                    if toks.get(open).is_some_and(|t| t.is_punct("[")) {
                        let close = match_bracket(toks, open);
                        let attr = &toks[open + 1..close.min(toks.len())];
                        if inner {
                            if attr_contains(attr, "forbid") && attr_contains(attr, "unsafe_code") {
                                has_forbid_unsafe = true;
                            }
                        } else {
                            absorb_attr(attr, &mut pending);
                        }
                        // Attribute tokens keep the owner/test marks they
                        // were assigned; skip past the group.
                        for j in i..close.min(toks.len()) {
                            self.in_test[j] = in_test_here;
                        }
                        i = close + 1;
                    } else {
                        i += 1;
                    }
                }
                Tok::Ident(kw) if kw == "mod" => {
                    if let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) {
                        if toks.get(i + 2).is_some_and(|t| t.is_punct("{")) {
                            next_scope = Some(ScopeKind::Mod(name.to_string()));
                            // The scope push at `{` consumes `pending`.
                            i += 2;
                            continue;
                        }
                    }
                    pending = Pending::default();
                    i += 1;
                }
                Tok::Ident(kw) if kw == "impl" => {
                    let (ty, tr, brace) = parse_impl_header(toks, i + 1);
                    next_scope = Some(ScopeKind::Impl { ty, tr });
                    i = brace;
                }
                Tok::Ident(kw) if kw == "trait" => {
                    if let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) {
                        let brace = find_scope_open(toks, i + 2);
                        if brace < toks.len() && toks[brace].is_punct("{") {
                            next_scope = Some(ScopeKind::Trait(name.to_string()));
                            i = brace;
                            continue;
                        }
                    }
                    pending = Pending::default();
                    i += 1;
                }
                Tok::Ident(kw) if kw == "fn" => {
                    let name = match toks.get(i + 1).and_then(|t| t.ident()) {
                        Some(n) => n.to_string(),
                        None => {
                            i += 1;
                            continue;
                        }
                    };
                    let sig_end = find_scope_open(toks, i + 2);
                    let has_body = sig_end < toks.len() && toks[sig_end].is_punct("{");
                    let id = self.model.fns.len() as u32;
                    let (self_type, trait_name) = impl_context(&scopes);
                    let is_test =
                        pending.is_test || scopes.iter().any(|s| s.is_test) || self.is_test_file;
                    let mut features: Vec<String> = scopes
                        .iter()
                        .flat_map(|s| s.features.iter().cloned())
                        .collect();
                    features.extend(pending.features.iter().cloned());
                    features.sort();
                    features.dedup();
                    let qualname = qualify(crate_name, rel_path, &scopes, &self_type, &name);
                    self.model.fns.push(FnItem {
                        id,
                        file: self.file_id,
                        name,
                        qualname,
                        self_type,
                        trait_name,
                        is_test,
                        features,
                        line: toks[i].line,
                        span: (i as u32, sig_end as u32), // end fixed at pop
                        has_body,
                    });
                    // Signature tokens belong to this fn.
                    for j in i..sig_end.min(toks.len()) {
                        self.owner[j] = id;
                        self.in_test[j] = is_test;
                    }
                    pending = Pending::default();
                    if has_body {
                        next_scope = Some(ScopeKind::Fn(id));
                        i = sig_end;
                    } else {
                        i = sig_end + 1;
                    }
                }
                Tok::Punct("{") => {
                    let parent = scopes.last().expect("root scope always present");
                    let taken = next_scope.take();
                    let is_fn = matches!(taken, Some(ScopeKind::Fn(_)));
                    let scope = Scope {
                        kind: taken.unwrap_or(ScopeKind::Block),
                        is_test: parent.is_test || pending.is_test,
                        features: {
                            let mut f = parent.features.clone();
                            f.extend(pending.features.iter().cloned());
                            f
                        },
                    };
                    if let ScopeKind::Fn(id) = scope.kind {
                        let it = &self.model.fns[id as usize];
                        self.owner[i] = id;
                        self.in_test[i] = it.is_test;
                    }
                    if is_fn || matches!(scope.kind, ScopeKind::Mod(_)) {
                        pending = Pending::default();
                    }
                    scopes.push(scope);
                    i += 1;
                }
                Tok::Punct("}") => {
                    if scopes.len() > 1 {
                        let popped = scopes.pop().expect("len checked");
                        if let ScopeKind::Fn(id) = popped.kind {
                            self.model.fns[id as usize].span.1 = (i + 1) as u32;
                            self.owner[i] = id;
                            self.in_test[i] = self.model.fns[id as usize].is_test;
                        }
                    }
                    i += 1;
                }
                Tok::Punct(";") => {
                    pending = Pending::default();
                    i += 1;
                }
                _ => i += 1,
            }
        }
        // Fn ownership above marks tokens as the loop passes them with the
        // scope stack current — nested fns override naturally because the
        // innermost Fn scope wins at each token.
        has_forbid_unsafe
    }
}

/// `// audit: safe — reason` (also accepts `-` / `--` as the dash).
/// Returns the reason, or `None` if this is not a justification comment.
pub fn parse_justification(comment: &str) -> Option<String> {
    let body = comment.trim_start_matches('/').trim();
    let rest = body.strip_prefix("audit:")?.trim();
    let rest = rest.strip_prefix("safe")?.trim();
    let reason = rest
        .strip_prefix('\u{2014}') // em dash
        .or_else(|| rest.strip_prefix("--"))
        .or_else(|| rest.strip_prefix('-'))
        .map(str::trim)
        .unwrap_or("");
    Some(reason.to_string())
}

/// Finds the matching `]` for the `[` at `open`; returns its index (or
/// the stream end on malformed input).
fn match_bracket(toks: &[Spanned], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct("[") {
            depth += 1;
        } else if toks[i].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len()
}

/// Whether the attribute token group mentions identifier `name`.
fn attr_contains(attr: &[Spanned], name: &str) -> bool {
    attr.iter().any(|t| t.is_ident(name))
}

/// Extracts `test` / `cfg(test)` / `cfg(feature = "x")` facts from one
/// outer-attribute token group into `pending`. `cfg(any(test, …))` and
/// `cfg(all(test, …))` count as test — conservative in the safe
/// direction (test code is *excluded* from findings, and a
/// convention-bound `cfg` never gates production-only code on `test`).
fn absorb_attr(attr: &[Spanned], pending: &mut Pending) {
    if attr_contains(attr, "not") {
        // `#[cfg(not(test))]` / `#[cfg(not(feature = "x"))]` mark the
        // *fallback* — active precisely when the flag is off. Recording
        // the flag here would invert the gate, so negated cfgs
        // contribute nothing.
        return;
    }
    if attr_contains(attr, "test") {
        pending.is_test = true;
    }
    if attr_contains(attr, "cfg") || attr_contains(attr, "cfg_attr") {
        let mut i = 0usize;
        while i < attr.len() {
            if attr[i].is_ident("feature") && attr.get(i + 1).is_some_and(|t| t.is_punct("=")) {
                if let Some(name) = attr.get(i + 2).and_then(|t| t.str_contents()) {
                    pending.features.push(name.to_string());
                }
            }
            i += 1;
        }
    }
}

/// Scans an `impl` header starting after the `impl` keyword. Returns
/// `(type, trait, index-of-open-brace)`.
fn parse_impl_header(toks: &[Spanned], mut i: usize) -> (Option<String>, Option<String>, usize) {
    // Skip leading generics `<...>`.
    if toks.get(i).is_some_and(|t| t.is_punct("<")) {
        i = skip_angles(toks, i);
    }
    let mut angle = 0i32;
    let mut last_ident: Option<String> = None;
    let mut before_for: Option<String> = None;
    let mut saw_for = false;
    while i < toks.len() {
        let t = &toks[i];
        match &t.tok {
            Tok::Punct("{") | Tok::Punct(";") if angle == 0 => break,
            Tok::Punct("<") => angle += 1,
            Tok::Punct(">") => angle -= 1,
            Tok::Punct("<<") => angle += 2,
            Tok::Punct(">>") => angle -= 2,
            Tok::Ident(s) if angle == 0 => {
                if s == "for" {
                    saw_for = true;
                    before_for = last_ident.take();
                } else if s != "dyn" && s != "mut" && s != "const" && s != "where" {
                    last_ident = Some(s.clone());
                }
            }
            _ => {}
        }
        i += 1;
    }
    if saw_for {
        (last_ident, before_for, i)
    } else {
        (last_ident, None, i)
    }
}

/// Skips a balanced `<...>` group starting at `i` (which holds `<`).
fn skip_angles(toks: &[Spanned], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct("<") => depth += 1,
            Tok::Punct(">") => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            Tok::Punct("<<") => depth += 2,
            Tok::Punct(">>") => {
                depth -= 2;
                if depth <= 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Finds the start of an item's body `{` (or terminating `;`) from the
/// start of its signature — the first `{`/`;` outside parens, brackets,
/// and angle brackets.
fn find_scope_open(toks: &[Spanned], mut i: usize) -> usize {
    let mut paren = 0i32;
    let mut angle = 0i32;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct("(") | Tok::Punct("[") => paren += 1,
            Tok::Punct(")") | Tok::Punct("]") => paren -= 1,
            Tok::Punct("<") if paren == 0 => angle += 1,
            Tok::Punct(">") if paren == 0 => angle = (angle - 1).max(0),
            Tok::Punct("<<") if paren == 0 => angle += 2,
            Tok::Punct(">>") if paren == 0 => angle = (angle - 2).max(0),
            Tok::Punct("->") => {
                // Return types may contain `(`-free paths with `<`;
                // nothing to do — angle tracking covers it.
            }
            Tok::Punct("{") | Tok::Punct(";") if paren == 0 && angle == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// The enclosing impl/trait context, innermost first.
fn impl_context(scopes: &[Scope]) -> (Option<String>, Option<String>) {
    for s in scopes.iter().rev() {
        match &s.kind {
            ScopeKind::Impl { ty, tr } => return (ty.clone(), tr.clone()),
            ScopeKind::Trait(name) => return (None, Some(name.clone())),
            ScopeKind::Fn(_) | ScopeKind::Block => continue,
            ScopeKind::Mod(_) => return (None, None),
        }
    }
    (None, None)
}

/// Builds the display qualname `crate::mods::Type::name`.
fn qualify(
    crate_name: &str,
    _rel_path: &str,
    scopes: &[Scope],
    self_type: &Option<String>,
    name: &str,
) -> String {
    let mut parts = vec![crate_name.to_string()];
    for s in scopes {
        if let ScopeKind::Mod(m) = &s.kind {
            parts.push(m.clone());
        }
    }
    if let Some(ty) = self_type {
        parts.push(ty.clone());
    }
    parts.push(name.to_string());
    parts.join("::")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_of(src: &str) -> Model {
        let mut m = Model::default();
        m.add_file("demo", "crates/demo/src/lib.rs", src);
        m
    }

    #[test]
    fn free_fns_methods_and_trait_impls() {
        let m = model_of(
            r#"
            pub fn free() {}
            struct S;
            impl S { fn method(&self) {} }
            trait T { fn defaulted(&self) { helper(); } fn decl(&self); }
            impl T for S { fn decl(&self) {} }
            "#,
        );
        let names: Vec<_> = m.fns.iter().map(|f| f.qualname.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "demo::free",
                "demo::S::method",
                "demo::defaulted",
                "demo::decl",
                "demo::S::decl"
            ]
        );
        assert_eq!(m.fns[1].self_type.as_deref(), Some("S"));
        assert_eq!(m.fns[2].trait_name.as_deref(), Some("T"));
        assert!(!m.fns[3].has_body);
        let last = &m.fns[4];
        assert_eq!(last.self_type.as_deref(), Some("S"));
        assert_eq!(last.trait_name.as_deref(), Some("T"));
    }

    #[test]
    fn generic_impl_headers_resolve_type_and_trait() {
        let m = model_of(
            r#"
            impl<'a, T: Clone> Iterator for Wrapper<'a, T> {
                fn next(&mut self) -> Option<T> { None }
            }
            "#,
        );
        assert_eq!(m.fns[0].self_type.as_deref(), Some("Wrapper"));
        assert_eq!(m.fns[0].trait_name.as_deref(), Some("Iterator"));
    }

    #[test]
    fn cfg_test_and_test_attr_are_inherited() {
        let m = model_of(
            r#"
            fn prod() {}
            #[cfg(test)]
            mod tests {
                fn helper() {}
                #[test]
                fn case() {}
            }
            "#,
        );
        assert!(!m.fns[0].is_test);
        assert!(m.fns[1].is_test, "helper inherits mod cfg(test)");
        assert!(m.fns[2].is_test);
    }

    #[test]
    fn feature_gates_inherit_from_mods_and_impls() {
        let m = model_of(
            r#"
            #[cfg(feature = "mutate")]
            mod mutate {
                pub fn arm() {}
            }
            #[cfg(feature = "trace")]
            pub fn traced() {}
            pub fn plain() {}
            "#,
        );
        assert_eq!(m.fns[0].features, vec!["mutate".to_string()]);
        assert_eq!(m.fns[1].features, vec!["trace".to_string()]);
        assert!(m.fns[2].features.is_empty());
    }

    #[test]
    fn nested_fns_and_closures_attribute_to_the_innermost_fn() {
        let m = model_of(
            r#"
            fn outer() {
                let c = |x: u32| inner_call(x);
                fn nested() { deep_call(); }
            }
            "#,
        );
        assert_eq!(m.fns.len(), 2);
        let f = &m.files[0];
        // Find inner_call's and deep_call's owners.
        let find = |name: &str| {
            f.toks
                .iter()
                .position(|t| t.is_ident(name))
                .map(|i| f.owner[i])
                .unwrap()
        };
        assert_eq!(find("inner_call"), m.fns[0].id, "closure → enclosing fn");
        assert_eq!(find("deep_call"), m.fns[1].id, "nested fn owns its body");
    }

    #[test]
    fn forbid_unsafe_detection() {
        let mut m = Model::default();
        m.add_file(
            "demo",
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}",
        );
        m.add_file("demo2", "crates/demo2/src/lib.rs", "pub fn g() {}");
        assert!(m.files[0].has_forbid_unsafe);
        assert!(!m.files[1].has_forbid_unsafe);
    }

    #[test]
    fn justification_comments_parse() {
        assert_eq!(
            parse_justification("// audit: safe \u{2014} len checked above"),
            Some("len checked above".to_string())
        );
        assert_eq!(
            parse_justification("// audit: safe - bounded by a^k"),
            Some("bounded by a^k".to_string())
        );
        assert_eq!(parse_justification("// audit: safe"), Some(String::new()));
        assert_eq!(parse_justification("// plain comment"), None);
        let m = model_of("fn f() {\n    x.unwrap(); // audit: safe — probe\n}");
        assert_eq!(m.justifications.len(), 1);
        assert_eq!(m.justifications[0].line, 2);
        assert_eq!(m.justifications[0].reason, "probe");
    }

    #[test]
    fn test_files_mark_everything_test() {
        let mut m = Model::default();
        m.add_file("demo", "crates/demo/tests/golden.rs", "fn helper() {}");
        assert!(m.fns[0].is_test);
    }
}
