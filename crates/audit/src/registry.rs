//! Pass 2: diagnostic-registry lifecycle consistency.
//!
//! Every `MMIO-[A-Z]\d+` literal in the workspace is tracked through its
//! intended lifecycle: **emitted** (used by non-test code outside a
//! `codes.rs`) → **registered** (a literal in some crate's `codes.rs`
//! table) → **documented** (appears in `DESIGN.md`) → **asserted**
//! (appears in test code or a test corpus). Violations:
//!
//! - `MMIO-L010` (error): emitted but never registered.
//! - `MMIO-L011` (warning): registered but never emitted — dead code id.
//! - `MMIO-L012` (error): emitted but undocumented in DESIGN.md.
//! - `MMIO-L013` (warning): emitted but no test or corpus asserts it.
//! - `MMIO-L014` (error): emitted by two different crates — code
//!   families have exactly one emitting crate.
//!
//! Emission is counted for raw literals *and* for uses of `const`s that
//! `codes.rs` files bind to a single code literal (the normal idiom).
//! Occurrences in *check* position (`== code`, `!= code`, match arms)
//! are consumers, not emitters, and are skipped. Occurrences in the
//! configured expectation files (mutation harnesses, self-test suites)
//! count as assertion evidence *and* keep a code alive for `L011`, but
//! claim no crate ownership in the `L014` duplicate-emitter check — a
//! self-test suite exercises codes owned elsewhere, yet a code whose
//! only production emitter is that suite is not dead.

use crate::finding::{key_of, Finding};
use crate::lex::Tok;
use crate::parse::Model;
use mmio_analyze::codes;
use mmio_analyze::Severity;
use std::collections::{BTreeMap, HashMap};

/// A non-Rust input to the registry pass (docs and test corpora).
#[derive(Debug)]
pub struct DocFile {
    /// Workspace-relative path.
    pub rel_path: String,
    pub text: String,
    /// Lives under a `tests/` dir — counts as assertion evidence.
    pub is_test_corpus: bool,
    /// Is `DESIGN.md` — counts as documentation.
    pub is_design: bool,
}

/// One sighting of a code.
#[derive(Clone, Debug)]
struct Occurrence {
    file: String,
    line: u32,
    crate_name: String,
    in_test: bool,
    /// Sighted in a configured expectation file: counts as assertion
    /// evidence and keeps the code alive, but claims no ownership in
    /// the duplicate-emitter check.
    in_expectation: bool,
}

/// Per-code lifecycle evidence.
#[derive(Default, Debug)]
struct Lifecycle {
    emissions: Vec<Occurrence>,
    registrations: Vec<Occurrence>,
    documented: bool,
    tested: bool,
}

/// Extracts every `MMIO-[A-Z]<digits>` code from a string, with byte
/// offsets.
pub fn extract_codes(text: &str) -> Vec<(String, usize)> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while let Some(pos) = text[i..].find("MMIO-") {
        let start = i + pos;
        let mut j = start + 5;
        if j < bytes.len() && bytes[j].is_ascii_uppercase() {
            j += 1;
            let digits_start = j;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
            if j > digits_start {
                out.push((text[start..j].to_string(), start));
            }
        }
        i = start + 5;
    }
    out
}

/// 1-based line of a byte offset.
fn line_of(text: &str, offset: usize) -> u32 {
    text[..offset].bytes().filter(|b| *b == b'\n').count() as u32 + 1
}

/// Whether the token at `i` sits in check position (comparison or match
/// arm) rather than emission position.
fn is_check_context(toks: &[crate::lex::Spanned], i: usize) -> bool {
    let prev = i.checked_sub(1).map(|p| &toks[p].tok);
    let next = toks.get(i + 1).map(|t| &t.tok);
    matches!(prev, Some(Tok::Punct("==" | "!=" | "|")))
        || matches!(next, Some(Tok::Punct("==" | "!=" | "=>")))
}

/// Runs the registry pass over the parsed model plus doc/corpus files.
pub fn run(model: &Model, docs: &[DocFile]) -> Vec<Finding> {
    // 1. Map const names bound to exactly one code literal in codes.rs
    //    files (`pub const F006: &str = "MMIO-F006";`).
    let mut const_to_code: HashMap<String, String> = HashMap::new();
    for file in &model.files {
        if !file.rel_path.ends_with("codes.rs") {
            continue;
        }
        let toks = &file.toks;
        let mut i = 0usize;
        while i < toks.len() {
            if toks[i].is_ident("const") {
                if let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) {
                    let mut codes_here = Vec::new();
                    let mut j = i + 2;
                    while j < toks.len() && !toks[j].is_punct(";") {
                        if let Tok::Lit(raw) = &toks[j].tok {
                            for (c, _) in extract_codes(raw) {
                                codes_here.push(c);
                            }
                        }
                        j += 1;
                    }
                    if codes_here.len() == 1 {
                        const_to_code.insert(name.to_string(), codes_here.remove(0));
                    }
                    i = j;
                    continue;
                }
            }
            i += 1;
        }
    }

    // 2. Walk every token of every file, collecting sightings.
    let mut life: BTreeMap<String, Lifecycle> = BTreeMap::new();
    for file in &model.files {
        let in_codes_file = file.rel_path.ends_with("codes.rs");
        let in_expectation_file = crate::config::is_expectation_file(&file.rel_path);
        for (i, st) in file.toks.iter().enumerate() {
            let found: Vec<String> = match &st.tok {
                Tok::Lit(raw) if raw.contains("MMIO-") => {
                    extract_codes(raw).into_iter().map(|(c, _)| c).collect()
                }
                Tok::Ident(name) => match const_to_code.get(name) {
                    Some(c) => vec![c.clone()],
                    None => continue,
                },
                _ => continue,
            };
            for code in found {
                let occ = Occurrence {
                    file: file.rel_path.clone(),
                    line: st.line,
                    crate_name: file.crate_name.clone(),
                    in_test: file.in_test[i],
                    in_expectation: in_expectation_file,
                };
                let entry = life.entry(code).or_default();
                if in_expectation_file {
                    // Mutation harnesses and self-test suites *assert*
                    // codes fire — assertion evidence. A suite that runs
                    // in production (mmio-check's self-test pass) also
                    // genuinely emits, so its non-check sightings still
                    // count below for liveness; the duplicate-emitter
                    // check ignores them via `in_expectation`.
                    entry.tested = true;
                }
                if occ.in_test {
                    entry.tested = true;
                } else if in_codes_file {
                    // The defining literal (or a re-export) registers it.
                    if matches!(&st.tok, Tok::Lit(_)) {
                        entry.registrations.push(occ);
                    }
                } else if !is_check_context(&file.toks, i) {
                    entry.emissions.push(occ);
                }
            }
        }
    }

    // 3. Docs and corpora.
    for doc in docs {
        for (code, off) in extract_codes(&doc.text) {
            let entry = life.entry(code).or_default();
            if doc.is_design {
                entry.documented = true;
            }
            if doc.is_test_corpus {
                entry.tested = true;
            }
            let _ = line_of(&doc.text, off); // provenance available if needed
        }
    }

    // 4. Lifecycle findings. Codes the audit pass itself emits are in
    //    `life` via crates/audit's own const uses — no special casing.
    let mut findings = Vec::new();
    for (code, lc) in &life {
        let first_emit = lc.emissions.first();
        if let Some(e) = first_emit {
            if lc.registrations.is_empty() {
                findings.push(mk(
                    codes::AUDIT_CODE_UNREGISTERED,
                    Severity::Error,
                    e,
                    code,
                    format!("`{code}` is emitted but registered in no codes.rs table"),
                    "unregistered",
                ));
            }
            if !lc.documented {
                findings.push(mk(
                    codes::AUDIT_CODE_UNDOCUMENTED,
                    Severity::Error,
                    e,
                    code,
                    format!("`{code}` is emitted but not documented in DESIGN.md"),
                    "undocumented",
                ));
            }
            if !lc.tested {
                findings.push(mk(
                    codes::AUDIT_CODE_UNTESTED,
                    Severity::Warning,
                    e,
                    code,
                    format!("`{code}` is emitted but no test or corpus asserts it"),
                    "untested",
                ));
            }
            let mut crates: Vec<&str> = lc
                .emissions
                .iter()
                .filter(|o| !o.in_expectation)
                .map(|o| o.crate_name.as_str())
                .collect();
            crates.sort_unstable();
            crates.dedup();
            if crates.len() >= 2 {
                let second = lc
                    .emissions
                    .iter()
                    .filter(|o| !o.in_expectation)
                    .find(|o| o.crate_name != crates[0])
                    .unwrap_or(e);
                findings.push(mk(
                    codes::AUDIT_CODE_DUPLICATE_EMITTER,
                    Severity::Error,
                    second,
                    code,
                    format!(
                        "`{code}` is emitted by multiple crates ({}) — each code \
                         family has exactly one emitter",
                        crates.join(", ")
                    ),
                    "duplicate-emitter",
                ));
            }
        } else if let Some(r) = lc.registrations.first() {
            findings.push(mk(
                codes::AUDIT_CODE_DEAD,
                Severity::Warning,
                r,
                code,
                format!("`{code}` is registered but never emitted — dead code id"),
                "dead",
            ));
        }
    }
    findings
}

fn mk(
    fcode: &'static str,
    severity: Severity,
    occ: &Occurrence,
    code: &str,
    message: String,
    detail: &str,
) -> Finding {
    Finding {
        code: fcode,
        severity,
        file: occ.file.clone(),
        line: occ.line,
        message,
        chain: Vec::new(),
        key: key_of(fcode, &occ.file, code, detail),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(path: &str, text: &str) -> DocFile {
        DocFile {
            rel_path: path.to_string(),
            text: text.to_string(),
            is_test_corpus: path.contains("/tests/"),
            is_design: path.ends_with("DESIGN.md"),
        }
    }

    #[test]
    fn extract_finds_codes_and_offsets() {
        let found = extract_codes("x MMIO-A001 then MMIO-L020, not MMIO-x9 or MMIO-");
        let codes: Vec<&str> = found.iter().map(|(c, _)| c.as_str()).collect();
        assert_eq!(codes, vec!["MMIO-A001", "MMIO-L020"]);
    }

    #[test]
    fn healthy_lifecycle_is_silent() {
        let mut m = Model::default();
        m.add_file(
            "demo",
            "crates/demo/src/codes.rs",
            r#"pub const D001: &str = "MMIO-X001";"#,
        );
        m.add_file(
            "demo",
            "crates/demo/src/lib.rs",
            "fn emit() -> &'static str { crate::codes::D001 }",
        );
        m.add_file(
            "demo",
            "crates/demo/tests/golden.rs",
            r#"fn assert_code() { assert_eq!(emit(), "MMIO-X001"); }"#,
        );
        let docs = [doc("DESIGN.md", "## Codes\n- MMIO-X001: something")];
        let f = run(&m, &docs);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unregistered_undocumented_untested_all_fire() {
        let mut m = Model::default();
        m.add_file(
            "demo",
            "crates/demo/src/lib.rs",
            r#"fn emit() -> &'static str { "MMIO-X002" }"#,
        );
        let f = run(&m, &[]);
        let codes_seen: Vec<&str> = f.iter().map(|x| x.code).collect();
        assert!(codes_seen.contains(&"MMIO-L010"));
        assert!(codes_seen.contains(&"MMIO-L012"));
        assert!(codes_seen.contains(&"MMIO-L013"));
    }

    #[test]
    fn dead_code_is_a_warning_at_the_registration_site() {
        let mut m = Model::default();
        m.add_file(
            "demo",
            "crates/demo/src/codes.rs",
            r#"pub const GONE: &str = "MMIO-X003";"#,
        );
        let f = run(&m, &[]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "MMIO-L011");
        assert_eq!(f[0].severity, Severity::Warning);
        assert!(f[0].file.ends_with("codes.rs"));
    }

    #[test]
    fn two_emitting_crates_collide() {
        let mut m = Model::default();
        m.add_file(
            "one",
            "crates/one/src/codes.rs",
            r#"pub const X: &str = "MMIO-X004";"#,
        );
        m.add_file(
            "one",
            "crates/one/src/lib.rs",
            r#"fn e() -> &'static str { "MMIO-X004" }"#,
        );
        m.add_file(
            "two",
            "crates/two/src/lib.rs",
            r#"fn e() -> &'static str { "MMIO-X004" }"#,
        );
        let f = run(&m, &[]);
        assert!(f.iter().any(|x| x.code == "MMIO-L014"), "{f:?}");
    }

    #[test]
    fn check_position_is_not_emission() {
        let mut m = Model::default();
        m.add_file(
            "demo",
            "crates/demo/src/codes.rs",
            r#"pub const Y: &str = "MMIO-X005";"#,
        );
        m.add_file(
            "consumer",
            "crates/consumer/src/lib.rs",
            r#"fn is_it(c: &str) -> bool { c == "MMIO-X005" }"#,
        );
        let f = run(&m, &[]);
        // Only finding should be dead-code (registered, never emitted):
        // the comparison does not count as an emission.
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].code, "MMIO-L011");
    }

    #[test]
    fn corpus_files_count_as_assertion_evidence() {
        let mut m = Model::default();
        m.add_file(
            "demo",
            "crates/demo/src/codes.rs",
            r#"pub const Z: &str = "MMIO-X006";"#,
        );
        m.add_file(
            "demo",
            "crates/demo/src/lib.rs",
            "fn e() -> &'static str { crate::codes::Z }",
        );
        let docs = [
            doc("DESIGN.md", "MMIO-X006 means trouble"),
            doc("crates/demo/tests/corpus/bad.cert", "expect MMIO-X006"),
        ];
        let f = run(&m, &docs);
        assert!(f.is_empty(), "{f:?}");
    }
}
