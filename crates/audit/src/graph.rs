//! Conservative intra-workspace call graph and panic-site extraction.
//!
//! Resolution strategy (deliberately over-approximating — the passes
//! prove *absence* of panic reachability, so extra edges are safe,
//! missing edges are not):
//!
//! - `name(...)` — free call: every workspace free fn named `name`.
//! - `Qual::name(...)` — `Self` resolves to the enclosing impl type;
//!   a workspace type/trait qualifier narrows to that type's methods;
//!   any other qualifier (module path, crate name) falls back to free
//!   fns by name.
//! - `recv.name(...)` / `<T as Tr>::name(...)` — every workspace method
//!   named `name`, regardless of receiver type.
//! - Calls that resolve to *no* workspace item are external (std or a
//!   shim). Externals are classified by the deny table in
//!   [`crate::config`]: a handful of known-panicking std APIs become
//!   [`SiteKind::DeniedCall`] sites; everything else is allowed.
//!
//! Two refinements keep the graph honest without drowning it:
//!
//! - **Isolation**: tokens inside a `catch_unwind(...)` argument list
//!   are marked isolated. A panic site there cannot unwind past the
//!   caller, and call edges *originating* there do not propagate
//!   reachability (the serve engine uses this to turn compute-engine
//!   panics into typed `F006` responses).
//! - **Test exclusion**: tokens in `#[cfg(test)]` scopes, `#[test]`
//!   fns, and `tests/`/`benches/` files produce no edges or sites.

use crate::config;
use crate::parse::{FnItem, Model, SourceFile, NO_OWNER};
use std::collections::HashMap;

/// What kind of panic site was found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SiteKind {
    /// `.unwrap()` / `.unwrap_err()`.
    Unwrap,
    /// `.expect(..)` / `.expect_err(..)`.
    Expect,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!` /
    /// `assert!` / `assert_eq!` / `assert_ne!` (name recorded).
    PanicMacro(String),
    /// `debug_assert!` family — debug-only panic, reported as Warning.
    DebugAssert(String),
    /// `x[i]` slice/array indexing.
    Index,
    /// Unchecked arithmetic (`+ - * / %` and compound assignments) —
    /// overflow panics in debug builds; `/`/`%` by zero in all builds.
    Arith(&'static str),
    /// A call to an external API on the deny table (e.g. `split_at`).
    DeniedCall(String),
}

impl SiteKind {
    /// Short human label for messages.
    pub fn label(&self) -> String {
        match self {
            SiteKind::Unwrap => "unwrap".into(),
            SiteKind::Expect => "expect".into(),
            SiteKind::PanicMacro(m) => format!("{m}!"),
            SiteKind::DebugAssert(m) => format!("{m}!"),
            SiteKind::Index => "slice indexing".into(),
            SiteKind::Arith(op) => format!("unchecked `{op}`"),
            SiteKind::DeniedCall(n) => format!("call to panicking API `{n}`"),
        }
    }
}

/// One potential panic site inside an fn body.
#[derive(Clone, Debug)]
pub struct Site {
    /// The fn whose body contains the site.
    pub fn_id: u32,
    /// Index into [`Model::files`].
    pub file: u32,
    /// 1-based source line.
    pub line: u32,
    pub kind: SiteKind,
    /// Inside a `catch_unwind(...)` extent — cannot unwind to callers.
    pub isolated: bool,
}

/// A call edge between two workspace fns.
#[derive(Clone, Debug)]
pub struct Edge {
    pub from: u32,
    pub to: u32,
    /// Index into [`Model::files`] (call site location).
    pub file: u32,
    /// 1-based line of the call site.
    pub line: u32,
    /// Call site sits inside a `catch_unwind(...)` extent.
    pub isolated: bool,
    /// Resolved by bare method name (`.name(` / `<T as Tr>::name(`) —
    /// the most over-approximate resolution mode. Feature-gate and
    /// hygiene passes damp these edges to limit false positives; the
    /// panic pass follows them (over-approximation is safe there).
    pub methodish: bool,
}

/// The assembled graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub edges: Vec<Edge>,
    pub sites: Vec<Site>,
    /// Outgoing edge indices per fn id.
    pub adj: Vec<Vec<u32>>,
}

/// Name-resolution index over the model.
struct Index<'m> {
    free: HashMap<&'m str, Vec<u32>>,
    methods: HashMap<&'m str, Vec<u32>>,
    typed: HashMap<(&'m str, &'m str), Vec<u32>>,
    type_names: std::collections::HashSet<&'m str>,
}

impl<'m> Index<'m> {
    fn build(model: &'m Model) -> Self {
        let mut ix = Index {
            free: HashMap::new(),
            methods: HashMap::new(),
            typed: HashMap::new(),
            type_names: std::collections::HashSet::new(),
        };
        for f in &model.fns {
            if !f.has_body {
                // Trait method declarations resolve to their impls, which
                // are indexed separately; a decl itself has nothing to run.
                continue;
            }
            match (&f.self_type, &f.trait_name) {
                (None, None) => ix.free.entry(&f.name).or_default().push(f.id),
                _ => {
                    ix.methods.entry(&f.name).or_default().push(f.id);
                    if let Some(ty) = &f.self_type {
                        ix.typed.entry((ty, &f.name)).or_default().push(f.id);
                        ix.type_names.insert(ty);
                    }
                    if let Some(tr) = &f.trait_name {
                        ix.typed.entry((tr, &f.name)).or_default().push(f.id);
                        ix.type_names.insert(tr);
                    }
                }
            }
        }
        ix
    }
}

/// Builds the call graph and extracts every panic site.
pub fn build(model: &Model) -> CallGraph {
    let ix = Index::build(model);
    let mut g = CallGraph {
        edges: Vec::new(),
        sites: Vec::new(),
        adj: vec![Vec::new(); model.fns.len()],
    };
    for (file_id, file) in model.files.iter().enumerate() {
        let isolated = isolation_map(file);
        scan_file(model, &ix, file_id as u32, file, &isolated, &mut g);
    }
    g
}

/// Marks every token inside a `catch_unwind ( ... )` argument list.
fn isolation_map(file: &SourceFile) -> Vec<bool> {
    let toks = &file.toks;
    let mut iso = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("catch_unwind") {
            // Find the opening paren (allow `catch_unwind(` directly).
            let mut j = i + 1;
            if j < toks.len() && toks[j].is_punct("(") {
                let mut depth = 0i32;
                let start = j;
                while j < toks.len() {
                    if toks[j].is_punct("(") {
                        depth += 1;
                    } else if toks[j].is_punct(")") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                for slot in iso.iter_mut().take(j.min(toks.len())).skip(start) {
                    *slot = true;
                }
                i = j;
                continue;
            }
        }
        i += 1;
    }
    iso
}

/// Scans one file's fn bodies for calls and sites.
fn scan_file(
    model: &Model,
    ix: &Index<'_>,
    file_id: u32,
    file: &SourceFile,
    isolated: &[bool],
    g: &mut CallGraph,
) {
    use crate::lex::Tok;
    let toks = &file.toks;
    // Per-fn signature end, so sites in signatures (default parameter
    // expressions do not exist in Rust; bounds and where clauses do) are
    // never scanned.
    let sig_end: HashMap<u32, u32> = model
        .fns_in_file(file_id)
        .map(|f| (f.id, sig_end_of(f, file)))
        .collect();
    for i in 0..toks.len() {
        let owner = file.owner[i];
        if owner == NO_OWNER || file.in_test[i] {
            continue;
        }
        if sig_end.get(&owner).is_some_and(|&e| (i as u32) < e) {
            continue; // signature tokens: bounds `+`, array types, etc.
        }
        let owner_fn = &model.fns[owner as usize];
        if owner_fn.is_test {
            continue;
        }
        let line = toks[i].line;
        let iso = isolated[i];
        match &toks[i].tok {
            Tok::Ident(name) => {
                let next = toks.get(i + 1);
                if next.is_some_and(|t| t.is_punct("!")) {
                    if let Some(kind) = macro_site(name) {
                        g.sites.push(Site {
                            fn_id: owner,
                            file: file_id,
                            line,
                            kind,
                            isolated: iso,
                        });
                    }
                } else if next.is_some_and(|t| t.is_punct("(")) {
                    handle_call(model, ix, toks, i, name, owner, file_id, line, iso, g);
                }
            }
            Tok::Punct("[") if i > 0 && operand_like(&toks[i - 1].tok) => {
                g.sites.push(Site {
                    fn_id: owner,
                    file: file_id,
                    line,
                    kind: SiteKind::Index,
                    isolated: iso,
                });
            }
            Tok::Punct(op @ ("+" | "-" | "*" | "/" | "%"))
                if i > 0 && arith_operand(&toks[i - 1].tok) =>
            {
                g.sites.push(Site {
                    fn_id: owner,
                    file: file_id,
                    line,
                    kind: SiteKind::Arith(op),
                    isolated: iso,
                });
            }
            Tok::Punct(op @ ("+=" | "-=" | "*=" | "/=" | "%=")) => {
                g.sites.push(Site {
                    fn_id: owner,
                    file: file_id,
                    line,
                    kind: SiteKind::Arith(op),
                    isolated: iso,
                });
            }
            _ => {}
        }
    }
}

/// The token index just past an fn item's signature (its body `{`).
fn sig_end_of(f: &FnItem, file: &SourceFile) -> u32 {
    // span.0 is the `fn` keyword; scan to the body `{` like the parser
    // did. Cheaper to recompute than to store twice.
    let mut i = f.span.0 as usize + 1;
    let toks = &file.toks;
    let mut paren = 0i32;
    let mut angle = 0i32;
    while i < toks.len() && (i as u32) < f.span.1 {
        match &toks[i].tok {
            crate::lex::Tok::Punct("(") | crate::lex::Tok::Punct("[") => paren += 1,
            crate::lex::Tok::Punct(")") | crate::lex::Tok::Punct("]") => paren -= 1,
            crate::lex::Tok::Punct("<") if paren == 0 => angle += 1,
            crate::lex::Tok::Punct(">") if paren == 0 => angle = (angle - 1).max(0),
            crate::lex::Tok::Punct("<<") if paren == 0 => angle += 2,
            crate::lex::Tok::Punct(">>") if paren == 0 => angle = (angle - 2).max(0),
            crate::lex::Tok::Punct("{") | crate::lex::Tok::Punct(";")
                if paren == 0 && angle == 0 =>
            {
                return i as u32 + 1;
            }
            _ => {}
        }
        i += 1;
    }
    f.span.0 + 1
}

/// Whether `prev` can be the receiver of an index expression. Keywords
/// are excluded: `for x in [a, b]`, `return [x]`, `&mut [0; N]` start
/// array literals, not index expressions.
fn operand_like(prev: &crate::lex::Tok) -> bool {
    use crate::lex::Tok;
    match prev {
        Tok::Ident(s) => !matches!(
            s.as_str(),
            "in" | "return"
                | "break"
                | "if"
                | "else"
                | "match"
                | "mut"
                | "ref"
                | "move"
                | "dyn"
                | "impl"
                | "as"
                | "where"
                | "let"
                | "const"
                | "static"
        ),
        Tok::Punct(")") | Tok::Punct("]") => true,
        _ => false,
    }
}

/// Whether `prev` makes a following `+ - * / %` a binary operator.
fn arith_operand(prev: &crate::lex::Tok) -> bool {
    use crate::lex::Tok;
    match prev {
        Tok::Ident(s) => !matches!(
            s.as_str(),
            // `dyn A + B`, `impl A + B`, `return -x`, `in -1..`, …
            "dyn"
                | "impl"
                | "return"
                | "in"
                | "as"
                | "where"
                | "break"
                | "if"
                | "else"
                | "match"
                | "mut"
                | "ref"
                | "move"
        ),
        Tok::Lit(_) | Tok::Punct(")") | Tok::Punct("]") => true,
        _ => false,
    }
}

/// Panic-family macro classification.
fn macro_site(name: &str) -> Option<SiteKind> {
    match name {
        "panic" | "unreachable" | "todo" | "unimplemented" | "assert" | "assert_eq"
        | "assert_ne" => Some(SiteKind::PanicMacro(name.to_string())),
        "debug_assert" | "debug_assert_eq" | "debug_assert_ne" => {
            Some(SiteKind::DebugAssert(name.to_string()))
        }
        _ => None,
    }
}

/// Resolves one `name(` occurrence: emits edges to workspace candidates
/// or a site/nothing for externals.
#[allow(clippy::too_many_arguments)]
fn handle_call(
    model: &Model,
    ix: &Index<'_>,
    toks: &[crate::lex::Spanned],
    i: usize,
    name: &str,
    owner: u32,
    file_id: u32,
    line: u32,
    iso: bool,
    g: &mut CallGraph,
) {
    // Method-style sites are handled here too: `.unwrap(`, `.expect(`.
    let prev_dot = i > 0 && toks[i - 1].is_punct(".");
    if prev_dot {
        match name {
            "unwrap" | "unwrap_err" => {
                g.sites.push(Site {
                    fn_id: owner,
                    file: file_id,
                    line,
                    kind: SiteKind::Unwrap,
                    isolated: iso,
                });
                return;
            }
            "expect" | "expect_err" => {
                g.sites.push(Site {
                    fn_id: owner,
                    file: file_id,
                    line,
                    kind: SiteKind::Expect,
                    isolated: iso,
                });
                return;
            }
            _ => {}
        }
    }
    let methodish =
        prev_dot || (i > 0 && toks[i - 1].is_punct("::") && qualified_by_angle(toks, i));
    let candidates: Vec<u32> = if prev_dot {
        resolve_method(model, ix, toks, i, name, owner)
    } else if methodish {
        // `Type::<args>::name(` turbofish — recover the base type;
        // `<T as Tr>::name(` — all methods by name.
        match turbofish_base(toks, i) {
            Some(q) if ix.type_names.contains(q) => {
                ix.typed.get(&(q, name)).cloned().unwrap_or_default()
            }
            Some(_) => Vec::new(), // non-workspace type — external
            None => ix.methods.get(name).cloned().unwrap_or_default(),
        }
    } else if i > 0 && toks[i - 1].is_punct("::") {
        // `Qual::name(` — inspect the last path segment.
        match toks.get(i.wrapping_sub(2)).and_then(|t| t.ident()) {
            Some("Self") => {
                let self_ty = model.fns[owner as usize].self_type.clone();
                self_ty
                    .and_then(|ty| ix.typed.get(&(ty.as_str(), name)).cloned())
                    .unwrap_or_default()
            }
            Some(q) if ix.type_names.contains(q) => {
                ix.typed.get(&(q, name)).cloned().unwrap_or_default()
            }
            _ => ix.free.get(name).cloned().unwrap_or_default(),
        }
    } else {
        ix.free.get(name).cloned().unwrap_or_default()
    };
    // Enforce the declared dependency structure: a bare name resolving
    // into a crate the caller does not depend on is a coincidence of
    // naming, not a possible call.
    let from_crate = &model.files[model.fns[owner as usize].file as usize].crate_name;
    let candidates: Vec<u32> = candidates
        .into_iter()
        .filter(|&to| {
            let to_crate = &model.files[model.fns[to as usize].file as usize].crate_name;
            model.crate_edge_allowed(from_crate, to_crate)
        })
        .collect();
    if candidates.is_empty() {
        // External (std / shim / closure var). Consult the deny table.
        if config::DENIED_EXTERNAL_CALLS.contains(&name) {
            g.sites.push(Site {
                fn_id: owner,
                file: file_id,
                line,
                kind: SiteKind::DeniedCall(name.to_string()),
                isolated: iso,
            });
        }
        return;
    }
    for to in candidates {
        if to == owner && model.fns[to as usize].name == name {
            // Self-recursion still counts as an edge (cycle-safe BFS),
            // keep it — it can matter for site attribution? It cannot
            // introduce new reachability, skip to keep the graph small.
            continue;
        }
        g.adj[owner as usize].push(g.edges.len() as u32);
        g.edges.push(Edge {
            from: owner,
            to,
            file: file_id,
            line,
            isolated: iso,
            methodish,
        });
    }
}

/// Whether the `::` before a call closes a `<T as Tr>` qualifier.
fn qualified_by_angle(toks: &[crate::lex::Spanned], i: usize) -> bool {
    i >= 2 && toks[i - 2].is_punct(">")
}

/// For a `Type::<args>::name(` turbofish call (where `toks[i]` is the
/// name and `toks[i - 2]` closes an angle group), recovers `Type`.
/// Returns `None` for `<T as Tr>::name(` qualified paths.
fn turbofish_base(toks: &[crate::lex::Spanned], i: usize) -> Option<&str> {
    let mut depth: i32 = 0;
    let mut j = i - 2; // the closing `>`
    loop {
        match &toks[j].tok {
            crate::lex::Tok::Punct(">") => depth += 1,
            crate::lex::Tok::Punct(">>") => depth += 2,
            crate::lex::Tok::Punct("<") => depth -= 1,
            crate::lex::Tok::Punct("<<") => depth -= 2,
            _ => {}
        }
        if depth <= 0 {
            break;
        }
        j = j.checked_sub(1)?;
    }
    // `j` is at the matching `<`; a turbofish has `Type ::` before it.
    if j >= 2 && toks[j - 1].is_punct("::") {
        toks[j - 2].ident()
    } else {
        None
    }
}

/// Resolves a `.name(` method call. Precision ladder:
/// 1. `self.name(` — the enclosing impl's type (and trait) methods.
/// 2. `recv.name(` where `recv` has a visible binding (`recv: Type`
///    ascription or `let recv = Type::…`) — narrow to that type's
///    methods; a non-workspace binding type means the call is external.
/// 3. Unknown receiver — if the name shadows a ubiquitous std method
///    (`find`, `get`, `len`, …) keep only *same-crate* candidates:
///    `self.cache.get(…)` plausibly hits the crate's own `Cache::get`,
///    but a cross-crate jump on a std-ambient name (`verify_routing`'s
///    iterator `.find(` landing on `cdag::UnionFind::find`) is a
///    naming coincidence. Distinctive names keep the conservative
///    all-methods resolution.
fn resolve_method(
    model: &Model,
    ix: &Index<'_>,
    toks: &[crate::lex::Spanned],
    i: usize,
    name: &str,
    owner: u32,
) -> Vec<u32> {
    let fallback = |ix: &Index<'_>| -> Vec<u32> {
        let mut all = ix.methods.get(name).cloned().unwrap_or_default();
        if config::AMBIENT_STD_METHODS.contains(&name) {
            let caller = &model.files[model.fns[owner as usize].file as usize].crate_name;
            all.retain(|&to| {
                &model.files[model.fns[to as usize].file as usize].crate_name == caller
            });
        }
        all
    };
    let recv = toks.get(i.wrapping_sub(2)).and_then(|t| t.ident());
    // Only a bare `ident . name (` receiver is typable; chained or
    // computed receivers fall back.
    let bare_recv = recv.is_some()
        && (i < 3 || {
            let before = &toks[i - 3];
            !(before.is_punct(".") || before.is_punct("::") || before.is_punct(")"))
        });
    match recv {
        Some("self") if bare_recv => {
            let f = &model.fns[owner as usize];
            let mut out = Vec::new();
            if let Some(ty) = &f.self_type {
                if let Some(c) = ix.typed.get(&(ty.as_str(), name)) {
                    out.extend_from_slice(c);
                }
            }
            if let Some(tr) = &f.trait_name {
                if let Some(c) = ix.typed.get(&(tr.as_str(), name)) {
                    out.extend_from_slice(c);
                }
            }
            if out.is_empty() {
                fallback(ix)
            } else {
                out
            }
        }
        Some(r) if bare_recv => match binding_type(model, toks, owner, r) {
            Some(ty) if ix.type_names.contains(ty.as_str()) => {
                // Known workspace type: its method or nothing (an empty
                // result means a trait/std method on that type).
                ix.typed
                    .get(&(ty.as_str(), name))
                    .cloned()
                    .unwrap_or_default()
            }
            Some(_) => Vec::new(), // bound to a non-workspace type — external
            None => fallback(ix),
        },
        _ => fallback(ix),
    }
}

/// Looks for a binding of `recv` inside the owning function's span:
/// a `recv: Type` ascription (param or let) or `let recv = Type::…`
/// constructor call. Returns the type name if one is found.
fn binding_type(
    model: &Model,
    toks: &[crate::lex::Spanned],
    owner: u32,
    recv: &str,
) -> Option<String> {
    let f = &model.fns[owner as usize];
    let (lo, hi) = (f.span.0 as usize, (f.span.1 as usize).min(toks.len()));
    let mut j = lo;
    while j + 2 < hi {
        if toks[j].ident() == Some(recv) && toks[j + 1].is_punct(":") {
            // `recv : [&] [mut] ['a] Type` — skip reference noise.
            let mut k = j + 2;
            while k < hi
                && (toks[k].is_punct("&")
                    || toks[k].ident() == Some("mut")
                    || matches!(toks[k].tok, crate::lex::Tok::Lifetime))
            {
                k += 1;
            }
            if let Some(ty) = toks.get(k).and_then(|t| t.ident()) {
                if plausible_type_name(ty) {
                    return Some(ty.to_string());
                }
            }
        }
        if toks[j].ident() == Some("let") {
            // `let [mut] recv = Type :: …`
            let mut k = j + 1;
            if toks.get(k).and_then(|t| t.ident()) == Some("mut") {
                k += 1;
            }
            if toks.get(k).and_then(|t| t.ident()) == Some(recv)
                && toks.get(k + 1).is_some_and(|t| t.is_punct("="))
            {
                if let Some(ty) = toks.get(k + 2).and_then(|t| t.ident()) {
                    if toks.get(k + 3).is_some_and(|t| t.is_punct("::")) && plausible_type_name(ty)
                    {
                        return Some(ty.to_string());
                    }
                }
            }
        }
        j += 1;
    }
    None
}

/// Filters out value-looking idents picked up by the `name: value`
/// struct-literal ambiguity: a type name starts uppercase or is a
/// primitive.
fn plausible_type_name(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        || matches!(
            s,
            "usize"
                | "u8"
                | "u16"
                | "u32"
                | "u64"
                | "u128"
                | "isize"
                | "i8"
                | "i16"
                | "i32"
                | "i64"
                | "i128"
                | "f32"
                | "f64"
                | "bool"
                | "char"
                | "str"
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(src: &str) -> (Model, CallGraph) {
        let mut m = Model::default();
        m.add_file("demo", "crates/demo/src/lib.rs", src);
        let g = build(&m);
        (m, g)
    }

    fn edge_names(m: &Model, g: &CallGraph) -> Vec<(String, String)> {
        g.edges
            .iter()
            .map(|e| {
                (
                    m.fns[e.from as usize].name.clone(),
                    m.fns[e.to as usize].name.clone(),
                )
            })
            .collect()
    }

    #[test]
    fn free_call_edges() {
        let (m, g) = graph_of("fn a() { b(); }\nfn b() {}");
        assert_eq!(edge_names(&m, &g), vec![("a".into(), "b".into())]);
    }

    #[test]
    fn method_calls_resolve_conservatively() {
        // Receiver of unknown type, distinctive method name: every
        // same-named workspace method stays a candidate.
        let (m, g) = graph_of(
            r#"
            struct S; struct T;
            impl S { fn go(&self) {} }
            impl T { fn go(&self) {} }
            fn driver(s: S, xs: Vec<S>) { for x in xs { x.go(); } }
            "#,
        );
        let mut names = edge_names(&m, &g);
        names.sort();
        assert_eq!(
            names,
            vec![
                ("driver".into(), "go".into()),
                ("driver".into(), "go".into())
            ],
            "both `go` methods are candidates for an untyped receiver"
        );
    }

    #[test]
    fn typed_receiver_narrows_method_calls() {
        let (m, g) = graph_of(
            r#"
            struct S; struct T;
            impl S { fn go(&self) {} }
            impl T { fn go(&self) {} }
            fn by_param(s: S) { s.go(); }
            fn by_let() { let t = T::default(); t.go(); }
            "#,
        );
        let tys: Vec<_> = g
            .edges
            .iter()
            .map(|e| {
                (
                    m.fns[e.from as usize].name.clone(),
                    m.fns[e.to as usize].self_type.clone().unwrap(),
                )
            })
            .collect();
        assert!(tys.contains(&("by_param".into(), "S".into())), "{tys:?}");
        assert!(tys.contains(&("by_let".into(), "T".into())), "{tys:?}");
        assert_eq!(tys.len(), 2, "ascribed receivers resolve to one impl each");
    }

    #[test]
    fn ambient_std_method_names_stay_in_crate_when_untyped() {
        // `.find(` on an unknown receiver is usually std
        // `Iterator::find`: cross-crate candidates are dropped, but a
        // same-crate `find` (e.g. `self.uf.find(…)`) is kept, and a
        // typed receiver still resolves precisely.
        let mut m = Model::default();
        m.add_file(
            "structures",
            "crates/structures/src/lib.rs",
            r#"
            pub struct UnionFind;
            impl UnionFind { pub fn find(&self, x: usize) -> usize { x } }
            struct Local;
            impl Local { fn find(&self) {} }
            struct Holder { inner: Local }
            impl Holder { fn scan(&self, xs: Vec<u32>) { self.inner.find(); let _ = xs.iter().find(|v| v.is_positive()); } }
            "#,
        );
        m.add_file(
            "consumer",
            "crates/consumer/src/lib.rs",
            r#"
            fn chain(xs: Vec<u32>) { let _ = xs.iter().find(|v| v.is_positive()); }
            fn typed(u: UnionFind) { u.find(3); }
            "#,
        );
        m.add_crate_deps("consumer", vec!["structures".into()]);
        let g = build(&m);
        let names: Vec<_> = g
            .edges
            .iter()
            .map(|e| {
                (
                    m.fns[e.from as usize].name.clone(),
                    m.files[m.fns[e.to as usize].file as usize]
                        .crate_name
                        .clone(),
                )
            })
            .collect();
        assert!(
            names.contains(&("typed".into(), "structures".into())),
            "typed receiver crosses crates: {names:?}"
        );
        assert!(
            names.contains(&("scan".into(), "structures".into())),
            "same-crate ambient-name call is kept: {names:?}"
        );
        assert_eq!(
            names.iter().filter(|(f, _)| f == "chain").count(),
            0,
            "cross-crate iterator `.find(` is external: {names:?}"
        );
    }

    #[test]
    fn typed_qualifier_narrows() {
        let (m, g) = graph_of(
            r#"
            struct S; struct T;
            impl S { fn make() {} }
            impl T { fn make() {} }
            fn driver() { S::make(); }
            "#,
        );
        assert_eq!(g.edges.len(), 1);
        assert_eq!(
            m.fns[g.edges[0].to as usize].self_type.as_deref(),
            Some("S")
        );
    }

    #[test]
    fn unwrap_and_macros_are_sites_not_edges() {
        let (_m, g) = graph_of(
            r#"
            fn f(x: Option<u32>) -> u32 {
                if x.is_none() { panic!("gone"); }
                x.unwrap()
            }
            "#,
        );
        assert!(g.edges.is_empty());
        let kinds: Vec<_> = g.sites.iter().map(|s| s.kind.clone()).collect();
        assert!(kinds.contains(&SiteKind::PanicMacro("panic".into())));
        assert!(kinds.contains(&SiteKind::Unwrap));
    }

    #[test]
    fn indexing_and_arithmetic_sites() {
        let (_m, g) = graph_of("fn f(v: &[u32], i: usize) -> u32 { v[i] + 1 }");
        let kinds: Vec<_> = g.sites.iter().map(|s| s.kind.clone()).collect();
        assert!(kinds.contains(&SiteKind::Index));
        assert!(kinds.contains(&SiteKind::Arith("+")));
    }

    #[test]
    fn trait_bounds_in_signatures_are_not_arithmetic() {
        let (_m, g) = graph_of("fn f<T: Clone + Send>(x: T) -> T where T: Sync + Sized { x }");
        assert!(
            g.sites
                .iter()
                .all(|s| !matches!(s.kind, SiteKind::Arith(_))),
            "bounds `+` must not be flagged: {:?}",
            g.sites
        );
    }

    #[test]
    fn catch_unwind_isolates_sites_and_edges() {
        let (m, g) = graph_of(
            r#"
            fn risky() { panic!("boom"); }
            fn shielded() {
                let _ = catch_unwind(AssertUnwindSafe(|| risky()));
            }
            fn exposed() { risky(); }
            "#,
        );
        let shielded_edge = g
            .edges
            .iter()
            .find(|e| m.fns[e.from as usize].name == "shielded")
            .unwrap();
        assert!(shielded_edge.isolated);
        let exposed_edge = g
            .edges
            .iter()
            .find(|e| m.fns[e.from as usize].name == "exposed")
            .unwrap();
        assert!(!exposed_edge.isolated);
    }

    #[test]
    fn test_code_produces_nothing() {
        let (_m, g) = graph_of(
            r#"
            #[cfg(test)]
            mod tests {
                #[test]
                fn case() { assert_eq!(1, compute().unwrap()); }
            }
            "#,
        );
        assert!(g.sites.is_empty());
        assert!(g.edges.is_empty());
    }

    #[test]
    fn denied_external_call_is_a_site() {
        let (_m, g) = graph_of("fn f(v: &[u8]) { let (_a, _b) = v.split_at(4); }");
        assert!(g
            .sites
            .iter()
            .any(|s| matches!(&s.kind, SiteKind::DeniedCall(n) if n == "split_at")));
    }
}
