//! The audit policy: trust roots, the external-call allow/deny table,
//! audited feature gates, and render/payload sink roots.
//!
//! Everything here is workspace policy, versioned with the code it
//! audits. Changing a root or table entry changes what the auditor
//! proves — treat edits like editing a spec.

/// A fn the auditor must prove panic-free (together with everything it
/// transitively calls outside `catch_unwind` isolation).
#[derive(Clone, Copy, Debug)]
pub struct TrustRoot {
    /// Package name (`mmio-cert`).
    pub crate_name: &'static str,
    /// Impl type, when the root is a method.
    pub type_name: Option<&'static str>,
    /// Bare fn name.
    pub fn_name: &'static str,
    /// Why this root is trusted — rendered in reports.
    pub why: &'static str,
}

/// The panic-freedom trust roots.
///
/// Two surfaces carry the repo's external promises:
///
/// 1. **Certificate verification** (`mmio-cert`): `verify_json` /
///    `verify` are the minimal TCB — a malformed or adversarial
///    certificate must yield a typed verdict, never a panic.
/// 2. **The serve request path** (`mmio-serve`): protocol decode →
///    engine dispatch → response render. Compute engines below
///    `run_job`'s `catch_unwind` may panic (that surfaces as a typed
///    `F006` response); the dispatch layer itself may not.
pub const TRUST_ROOTS: &[TrustRoot] = &[
    TrustRoot {
        crate_name: "mmio-cert",
        type_name: None,
        fn_name: "verify_json",
        why: "certificate verification TCB entry point (JSON)",
    },
    TrustRoot {
        crate_name: "mmio-cert",
        type_name: None,
        fn_name: "verify",
        why: "certificate verification TCB entry point (typed)",
    },
    TrustRoot {
        crate_name: "mmio-serve",
        type_name: Some("Engine"),
        fn_name: "handle_line",
        why: "serve request path: protocol decode + dispatch",
    },
    TrustRoot {
        crate_name: "mmio-serve",
        type_name: Some("Engine"),
        fn_name: "submit",
        why: "serve request path: job admission",
    },
    TrustRoot {
        crate_name: "mmio-serve",
        type_name: None,
        fn_name: "run_job",
        why: "serve request path: job execution shell (engines are \
              isolated below catch_unwind)",
    },
    TrustRoot {
        crate_name: "mmio-serve",
        type_name: Some("Request"),
        fn_name: "from_line",
        why: "serve request path: wire decode",
    },
    TrustRoot {
        crate_name: "mmio-serve",
        type_name: Some("Response"),
        fn_name: "to_line",
        why: "serve request path: wire encode",
    },
];

/// External (std / shim) call names treated as panic sites wherever they
/// appear on a trust path. Everything *not* on this list that fails to
/// resolve to a workspace item is allowed — the table is the explicit
/// boundary of the proof, per the conservative-externals policy.
pub const DENIED_EXTERNAL_CALLS: &[&str] = &[
    // Slice APIs that panic on out-of-range arguments.
    "split_at",
    "split_at_mut",
    "copy_from_slice",
    "clone_from_slice",
    "swap_remove",
    // Process-fatal in every profile.
    "abort",
    "exit_with_panic",
];

/// Method names so common on std containers/iterators that an
/// *untyped* `.name(` receiver is overwhelmingly a std call, not a
/// workspace one. When the receiver's type cannot be established from
/// a local binding, calls to these names are classified external
/// instead of fanning out to every same-named workspace method.
/// Typed receivers (`recv: Type` / `let recv = Type::…` / `self`)
/// still resolve to workspace methods of these names.
pub const AMBIENT_STD_METHODS: &[&str] = &[
    "all",
    "any",
    "as_bytes",
    "as_ref",
    "as_slice",
    "as_str",
    "chars",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "drain",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "extend",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "first",
    "flat_map",
    "flatten",
    "fold",
    "get",
    "get_mut",
    "get_or_insert_with",
    "insert",
    "into_iter",
    "is_char_boundary",
    "is_empty",
    "is_some_and",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lines",
    "lock",
    "map",
    "max",
    "min",
    "next",
    "parse",
    "partition",
    "pop",
    "position",
    "push",
    "push_str",
    "read_line",
    "remove",
    "repeat",
    "retain",
    "rev",
    "reverse",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "splitn",
    "starts_with",
    "step_by",
    "sum",
    "take",
    "take_while",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "trim_end",
    "trim_start",
    "truncate",
    "values",
    "values_mut",
    "windows",
    "zip",
];

/// Feature names whose gated items must stay unreachable from default
/// (ungated) builds: fault-injection and tracing hooks.
pub const AUDITED_FEATURES: &[&str] = &["mutate", "engine-mutate", "trace"];

/// Fns whose output is rendered or serialized — HashMap/HashSet
/// iteration reaching these (transitively) would make output order
/// nondeterministic (`MMIO-L020`).
pub const RENDER_ROOTS: &[(&str, &str)] = &[
    ("mmio-serve", "to_line"),
    ("mmio-serve", "stats_payload"),
    ("mmio-serve", "certify_text"),
    ("mmio-serve", "analyze_json"),
    ("mmio-serve", "sweep_json"),
    ("mmio-serve", "routing_cert_json"),
    ("mmio-cert", "to_json"),
    ("mmio-cert", "emit_certificate"),
    ("mmio-cert", "emit_schedule_certificate"),
    ("mmio-cert", "emit_sweep_certificate"),
];

/// Fns that build certificate or memo-key payloads — wall-clock reads
/// (`SystemTime::now` / `Instant::now`) reaching these would break
/// reproducibility (`MMIO-L021`).
pub const PAYLOAD_ROOTS: &[(&str, &str)] = &[
    ("mmio-cert", "to_json"),
    ("mmio-cert", "emit_certificate"),
    ("mmio-cert", "emit_schedule_certificate"),
    ("mmio-cert", "emit_sweep_certificate"),
    ("mmio-serve", "cache_key"),
];

/// Files whose diagnostic-code mentions are *expectations*: mutation
/// harnesses and self-test suites assert that codes fire — they do not
/// emit them. The registry pass counts occurrences here as `tested`
/// evidence instead of emissions.
pub const EXPECTATION_FILES: &[&str] = &[
    "crates/check/src/bin/cert_mutate.rs",
    "crates/check/src/suite.rs",
    "crates/bench/src/bin/exp_e12_extension.rs",
];

/// Whether `rel_path` is an expectation file (see [`EXPECTATION_FILES`]).
pub fn is_expectation_file(rel_path: &str) -> bool {
    EXPECTATION_FILES.contains(&rel_path)
}

/// Crates excluded from the source model entirely: the shims are
/// stand-ins for external dependencies — they sit *outside* the trust
/// boundary exactly like the real crates they replace would.
pub fn crate_dir_excluded(dir_name: &str) -> bool {
    dir_name == "shims"
}

/// Path fragments excluded from the real-workspace scan: the planted
/// fixture workspace exists to violate every rule on purpose.
pub fn path_excluded(rel_path: &str) -> bool {
    rel_path.contains("/fixtures/")
}
