//! The auditor's finding record: a diagnostic plus source provenance,
//! a call-chain witness, and a line-independent baseline key.

use mmio_analyze::diag::{Severity, Span};
use serde::{Serialize, Value};

/// One audit finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Stable code from [`mmio_analyze::codes`] (`MMIO-Lxxx`).
    pub code: &'static str,
    pub severity: Severity,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// Shortest call chain from a trust root to the site (panic pass
    /// only; empty for registry/hygiene findings). Each entry is
    /// `qualname (file:line)`.
    pub chain: Vec<String>,
    /// Line-independent identity for baseline matching: unchanged code
    /// that merely moves does not churn the baseline.
    pub key: String,
}

impl Finding {
    /// Renders through the shared diagnostics machinery.
    pub fn to_diagnostic(&self) -> mmio_analyze::Diagnostic {
        mmio_analyze::Diagnostic {
            code: self.code,
            severity: self.severity,
            span: Span::Source(self.line),
            message: format!("{}: {}", self.file, self.message),
            suggestion: if self.chain.is_empty() {
                None
            } else {
                Some(format!("witness: {}", self.chain.join(" -> ")))
            },
        }
    }
}

impl Serialize for Finding {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("code".to_string(), Value::Str(self.code.to_string())),
            (
                "severity".to_string(),
                Value::Str(self.severity.as_str().to_string()),
            ),
            ("file".to_string(), Value::Str(self.file.clone())),
            ("line".to_string(), Value::UInt(u64::from(self.line))),
            ("message".to_string(), Value::Str(self.message.clone())),
            (
                "chain".to_string(),
                Value::Array(self.chain.iter().map(|c| Value::Str(c.clone())).collect()),
            ),
            ("key".to_string(), Value::Str(self.key.clone())),
        ])
    }
}

/// Builds the stable baseline key. Deliberately excludes line numbers.
pub fn key_of(code: &str, file: &str, qualname: &str, detail: &str) -> String {
    format!("{code}|{file}|{qualname}|{detail}")
}
