//! Pass 1: panic-reachability proofs for the trust roots.
//!
//! Runs a BFS over the call graph from each resolved trust root,
//! skipping edges that originate inside `catch_unwind(...)` isolation,
//! then reports every non-isolated panic site inside a reached fn with
//! the *shortest* call chain from a root as witness.
//!
//! Severity policy:
//!
//! - `unwrap`/`expect` (`MMIO-L001`), panic-family macros and denied
//!   external calls (`MMIO-L002`), and slice indexing (`MMIO-L003`) are
//!   **errors**: they abort in release builds.
//! - Unchecked arithmetic and `debug_assert!` (`MMIO-L004`) are
//!   **warnings**: overflow panics only in debug builds (division by
//!   zero is the exception, but is near-always guarded by construction
//!   and justified where not).
//!
//! Discharge via `// audit: safe — reason` happens centrally in
//! [`crate::run`], not here.

use crate::config::TrustRoot;
use crate::finding::{key_of, Finding};
use crate::graph::{CallGraph, SiteKind};
use crate::parse::Model;
use mmio_analyze::codes;
use mmio_analyze::Severity;
use std::collections::{HashMap, VecDeque};

/// The result of root resolution + BFS, kept for witness construction.
pub struct Reachability {
    /// fn id → (parent fn id, call-site line, call-site file) for the
    /// BFS tree; roots map to themselves.
    parent: HashMap<u32, (u32, u32, u32)>,
    /// Trust-root fn ids.
    pub roots: Vec<u32>,
}

impl Reachability {
    /// Whether fn `id` is reachable from any trust root.
    pub fn reached(&self, id: u32) -> bool {
        self.parent.contains_key(&id)
    }

    /// The witness chain `root … target`, as `qualname (file:line)`.
    fn chain_to(&self, model: &Model, target: u32) -> Vec<String> {
        let mut rev = Vec::new();
        let mut cur = target;
        loop {
            let f = &model.fns[cur as usize];
            let file = &model.files[f.file as usize];
            rev.push(format!("{} ({}:{})", f.qualname, file.rel_path, f.line));
            match self.parent.get(&cur) {
                Some(&(p, _, _)) if p != cur => cur = p,
                _ => break,
            }
        }
        rev.reverse();
        rev
    }
}

/// Resolves roots and runs the BFS. Unresolvable roots yield an error
/// finding — silently weakening the proof is worse than failing loud.
pub fn reach(
    model: &Model,
    graph: &CallGraph,
    roots: &[TrustRoot],
) -> (Reachability, Vec<Finding>) {
    let mut findings = Vec::new();
    let mut root_ids = Vec::new();
    for spec in roots {
        let matches: Vec<u32> = model
            .fns
            .iter()
            .filter(|f| {
                let file = &model.files[f.file as usize];
                file.crate_name == spec.crate_name
                    && f.name == spec.fn_name
                    && match spec.type_name {
                        Some(ty) => f.self_type.as_deref() == Some(ty),
                        None => f.self_type.is_none(),
                    }
                    && !f.is_test
            })
            .map(|f| f.id)
            .collect();
        if matches.is_empty() {
            findings.push(Finding {
                code: codes::AUDIT_PANIC_REACHABLE,
                severity: Severity::Error,
                file: format!("{}/", spec.crate_name),
                line: 0,
                message: format!(
                    "trust root `{}::{}{}` did not resolve to any workspace fn — \
                     the audit policy is stale",
                    spec.crate_name,
                    spec.type_name.map(|t| format!("{t}::")).unwrap_or_default(),
                    spec.fn_name
                ),
                chain: Vec::new(),
                key: key_of(
                    codes::AUDIT_PANIC_REACHABLE,
                    spec.crate_name,
                    spec.fn_name,
                    "unresolved-root",
                ),
            });
        }
        root_ids.extend(matches);
    }
    let mut r = Reachability {
        parent: HashMap::new(),
        roots: root_ids.clone(),
    };
    let mut q: VecDeque<u32> = VecDeque::new();
    for &id in &root_ids {
        if let std::collections::hash_map::Entry::Vacant(v) = r.parent.entry(id) {
            v.insert((id, 0, 0));
            q.push_back(id);
        }
    }
    while let Some(cur) = q.pop_front() {
        for &ei in &graph.adj[cur as usize] {
            let e = &graph.edges[ei as usize];
            if e.isolated {
                continue; // panics below catch_unwind surface as typed errors
            }
            if !r.parent.contains_key(&e.to) && !model.fns[e.to as usize].is_test {
                r.parent.insert(e.to, (cur, e.line, e.file));
                q.push_back(e.to);
            }
        }
    }
    (r, findings)
}

/// Maps a site kind to its diagnostic code and severity.
fn classify(kind: &SiteKind) -> (&'static str, Severity) {
    match kind {
        SiteKind::Unwrap | SiteKind::Expect => (codes::AUDIT_UNWRAP_REACHABLE, Severity::Error),
        SiteKind::PanicMacro(_) | SiteKind::DeniedCall(_) => {
            (codes::AUDIT_PANIC_REACHABLE, Severity::Error)
        }
        SiteKind::Index => (codes::AUDIT_INDEX_REACHABLE, Severity::Error),
        SiteKind::Arith(_) | SiteKind::DebugAssert(_) => {
            (codes::AUDIT_ARITH_REACHABLE, Severity::Warning)
        }
    }
}

/// Reports every panic site reachable from a trust root.
pub fn run(model: &Model, graph: &CallGraph, roots: &[TrustRoot]) -> Vec<Finding> {
    let (r, mut findings) = reach(model, graph, roots);
    for site in &graph.sites {
        if site.isolated || !r.reached(site.fn_id) {
            continue;
        }
        let (code, severity) = classify(&site.kind);
        let f = &model.fns[site.fn_id as usize];
        let file = &model.files[site.file as usize];
        let mut chain = r.chain_to(model, site.fn_id);
        chain.push(format!(
            "{} at {}:{}",
            site.kind.label(),
            file.rel_path,
            site.line
        ));
        findings.push(Finding {
            code,
            severity,
            file: file.rel_path.clone(),
            line: site.line,
            message: format!(
                "{} reachable from trust root `{}`",
                site.kind.label(),
                model.fns[r.chain_root(site.fn_id).unwrap_or(site.fn_id) as usize].qualname
            ),
            chain,
            key: key_of(code, &file.rel_path, &f.qualname, &site.kind.label()),
        });
    }
    findings
}

impl Reachability {
    /// The root of the BFS tree containing `id`.
    fn chain_root(&self, mut id: u32) -> Option<u32> {
        loop {
            let &(p, _, _) = self.parent.get(&id)?;
            if p == id {
                return Some(id);
            }
            id = p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph;

    fn roots(name: &'static str) -> Vec<TrustRoot> {
        vec![TrustRoot {
            crate_name: "demo",
            type_name: None,
            fn_name: name,
            why: "test",
        }]
    }

    fn audit(src: &str, root: &'static str) -> Vec<Finding> {
        let mut m = Model::default();
        m.add_file("demo", "crates/demo/src/lib.rs", src);
        let g = graph::build(&m);
        run(&m, &g, &roots(root))
    }

    #[test]
    fn transitive_unwrap_is_found_with_witness() {
        let f = audit(
            r#"
            pub fn root(x: Option<u32>) -> u32 { middle(x) }
            fn middle(x: Option<u32>) -> u32 { leaf(x) }
            fn leaf(x: Option<u32>) -> u32 { x.unwrap() }
            "#,
            "root",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "MMIO-L001");
        assert_eq!(
            f[0].chain.len(),
            4,
            "root, middle, leaf, site: {:?}",
            f[0].chain
        );
        assert!(f[0].chain[0].contains("demo::root"));
        assert!(f[0].chain[3].contains("unwrap"));
    }

    #[test]
    fn unreachable_panics_are_not_reported() {
        let f = audit(
            r#"
            pub fn root() -> u32 { 0 }
            pub fn elsewhere(x: Option<u32>) -> u32 { x.unwrap() }
            "#,
            "root",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn catch_unwind_discharges_the_subtree() {
        let f = audit(
            r#"
            pub fn root() {
                let _ = catch_unwind(AssertUnwindSafe(|| engine()));
            }
            fn engine() { panic!("compute exploded"); }
            "#,
            "root",
        );
        assert!(f.is_empty(), "isolated subtree must not be reported: {f:?}");
    }

    #[test]
    fn arithmetic_is_a_warning_not_an_error() {
        let f = audit("pub fn root(a: u32, b: u32) -> u32 { a + b }", "root");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "MMIO-L004");
        assert_eq!(f[0].severity, Severity::Warning);
    }

    #[test]
    fn unresolved_root_is_loud() {
        let f = audit("pub fn other() {}", "root");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "MMIO-L002");
        assert!(f[0].message.contains("did not resolve"));
    }
}
