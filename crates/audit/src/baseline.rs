//! Baseline support: `mmio audit --baseline FILE` suppresses known
//! findings so CI enforces "no *new* findings" while the backlog burns
//! down.
//!
//! Baseline entries are the findings' line-independent keys — moving
//! code around does not churn the file; only genuinely new findings
//! (or fixes) change the diff. Keys present in the baseline that no
//! longer match anything are reported as `fixed` so the file can be
//! pruned (CI surfaces them; it does not fail on them).

use crate::finding::Finding;
use serde::Value;

/// A parsed baseline file.
#[derive(Debug, Default)]
pub struct Baseline {
    /// Suppressed finding keys, in file order.
    pub keys: Vec<String>,
}

/// The result of applying a baseline.
#[derive(Debug)]
pub struct Applied {
    /// Findings not covered by the baseline — these gate CI.
    pub new: Vec<Finding>,
    /// Findings matched (and silenced) by a baseline key.
    pub suppressed: Vec<Finding>,
    /// Baseline keys that matched nothing — fixed; prune them.
    pub fixed: Vec<String>,
}

impl Baseline {
    /// Parses the JSON baseline format:
    /// `{ "version": 1, "entries": [ { "key": "...", "note": "..." } ] }`.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let v: Value =
            serde_json::from_str(text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
        match v.get("version") {
            Some(Value::Int(1)) | Some(Value::UInt(1)) => {}
            other => {
                return Err(format!(
                    "baseline version must be 1, found {:?}",
                    other.map(Value::kind)
                ))
            }
        }
        let entries = match v.get("entries") {
            Some(Value::Array(a)) => a,
            _ => return Err("baseline has no `entries` array".to_string()),
        };
        let mut keys = Vec::new();
        for e in entries {
            match e.get("key") {
                Some(Value::Str(k)) => keys.push(k.clone()),
                _ => return Err("baseline entry lacks a string `key`".to_string()),
            }
        }
        Ok(Baseline { keys })
    }

    /// Splits findings into new / suppressed and reports fixed keys.
    /// A baseline key suppresses *every* finding with that key (a key
    /// is intentionally not unique: one justification-worthy pattern
    /// can surface at several lines of the same fn).
    pub fn apply(&self, findings: Vec<Finding>) -> Applied {
        let mut used = vec![false; self.keys.len()];
        let mut new = Vec::new();
        let mut suppressed = Vec::new();
        for f in findings {
            match self.keys.iter().position(|k| *k == f.key) {
                Some(i) => {
                    used[i] = true;
                    suppressed.push(f);
                }
                None => new.push(f),
            }
        }
        let fixed = self
            .keys
            .iter()
            .zip(&used)
            .filter(|(_, u)| !**u)
            .map(|(k, _)| k.clone())
            .collect();
        Applied {
            new,
            suppressed,
            fixed,
        }
    }
}

/// Renders findings as a fresh baseline file (used to bootstrap or
/// regenerate `AUDIT_BASELINE.json` after an accepted change).
pub fn render(findings: &[Finding]) -> String {
    let mut keys: Vec<&str> = findings.iter().map(|f| f.key.as_str()).collect();
    keys.sort_unstable();
    keys.dedup();
    let entries: Vec<Value> = keys
        .into_iter()
        .map(|k| Value::Object(vec![("key".to_string(), Value::Str(k.to_string()))]))
        .collect();
    let doc = Value::Object(vec![
        ("version".to_string(), Value::Int(1)),
        ("entries".to_string(), Value::Array(entries)),
    ]);
    serde_json::to_string_pretty(&doc).unwrap_or_else(|_| "{}".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_analyze::Severity;

    fn finding(key: &str) -> Finding {
        Finding {
            code: "MMIO-L001",
            severity: Severity::Error,
            file: "crates/x/src/lib.rs".to_string(),
            line: 3,
            message: "m".to_string(),
            chain: Vec::new(),
            key: key.to_string(),
        }
    }

    #[test]
    fn parse_apply_roundtrip() {
        let b =
            Baseline::parse(r#"{ "version": 1, "entries": [ {"key": "a"}, {"key": "gone"} ] }"#)
                .unwrap();
        let applied = b.apply(vec![finding("a"), finding("b")]);
        assert_eq!(applied.new.len(), 1);
        assert_eq!(applied.new[0].key, "b");
        assert_eq!(applied.suppressed.len(), 1);
        assert_eq!(applied.fixed, vec!["gone".to_string()]);
    }

    #[test]
    fn bad_baselines_are_rejected() {
        assert!(Baseline::parse("not json").is_err());
        assert!(Baseline::parse(r#"{"version": 2, "entries": []}"#).is_err());
        assert!(Baseline::parse(r#"{"version": 1}"#).is_err());
        assert!(Baseline::parse(r#"{"version": 1, "entries": [{}]}"#).is_err());
    }

    #[test]
    fn render_is_sorted_and_deduped() {
        let text = render(&[finding("z"), finding("a"), finding("z")]);
        let b = Baseline::parse(&text).unwrap();
        assert_eq!(b.keys, vec!["a".to_string(), "z".to_string()]);
    }
}
