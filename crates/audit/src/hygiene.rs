//! Pass 3: determinism and hygiene lints.
//!
//! - `MMIO-L020` (error): `HashMap`/`HashSet` iteration inside a fn
//!   reachable from a render/serialize root — iteration order would
//!   leak into rendered output.
//! - `MMIO-L021` (error): `SystemTime::now` / `Instant::now` inside a
//!   fn reachable from a certificate/memo-key payload root.
//! - `MMIO-L022` (error): a crate root missing `#![forbid(unsafe_code)]`.
//! - `MMIO-L023` (error): an audited feature-gated item reachable from
//!   ungated non-test code (mutation/trace hooks must stay out of
//!   default builds).
//!
//! Reachability for L020/L021 follows the call graph *downward* from
//! the configured roots. Method-name edges are followed only within the
//! same crate — cross-crate bare-name method resolution is too
//! over-approximate for these lints (the panic pass, where
//! over-approximation is sound, follows everything).

use crate::config;
use crate::finding::{key_of, Finding};
use crate::graph::CallGraph;
use crate::lex::{Spanned, Tok};
use crate::parse::{Model, NO_OWNER};
use mmio_analyze::codes;
use mmio_analyze::Severity;
use std::collections::{HashSet, VecDeque};

/// Runs all hygiene lints.
pub fn run(model: &Model, graph: &CallGraph) -> Vec<Finding> {
    let mut findings = Vec::new();
    forbid_unsafe(model, &mut findings);
    let render = reach_from(model, graph, config::RENDER_ROOTS);
    hash_iteration(model, &render, &mut findings);
    let payload = reach_from(model, graph, config::PAYLOAD_ROOTS);
    wallclock(model, &payload, &mut findings);
    feature_leaks(model, graph, &mut findings);
    findings
}

/// L022: every crate root must carry `#![forbid(unsafe_code)]` — the
/// workspace-level Cargo lint is necessary but invisible at the source
/// level; the attribute makes the guarantee local and grep-able.
fn forbid_unsafe(model: &Model, findings: &mut Vec<Finding>) {
    for file in &model.files {
        if file.is_crate_root && !file.has_forbid_unsafe {
            findings.push(Finding {
                code: codes::AUDIT_MISSING_FORBID_UNSAFE,
                severity: Severity::Error,
                file: file.rel_path.clone(),
                line: 1,
                message: format!(
                    "crate root of `{}` lacks #![forbid(unsafe_code)]",
                    file.crate_name
                ),
                chain: Vec::new(),
                key: key_of(
                    codes::AUDIT_MISSING_FORBID_UNSAFE,
                    &file.rel_path,
                    &file.crate_name,
                    "forbid-unsafe",
                ),
            });
        }
    }
}

/// Downward BFS over the graph from named roots (crate, fn name).
fn reach_from(model: &Model, graph: &CallGraph, roots: &[(&str, &str)]) -> HashSet<u32> {
    let mut reached = HashSet::new();
    let mut q = VecDeque::new();
    for f in &model.fns {
        let crate_name = &model.files[f.file as usize].crate_name;
        if roots.iter().any(|(c, n)| c == crate_name && *n == f.name) && !f.is_test {
            reached.insert(f.id);
            q.push_back(f.id);
        }
    }
    while let Some(cur) = q.pop_front() {
        let cur_crate = &model.files[model.fns[cur as usize].file as usize].crate_name;
        for &ei in &graph.adj[cur as usize] {
            let e = &graph.edges[ei as usize];
            let to_crate = &model.files[model.fns[e.to as usize].file as usize].crate_name;
            if e.methodish && cur_crate != to_crate {
                continue; // damp cross-crate bare-name method edges
            }
            if reached.insert(e.to) {
                q.push_back(e.to);
            }
        }
    }
    reached
}

/// L020: hash-keyed iteration in render-reachable fns.
fn hash_iteration(model: &Model, render: &HashSet<u32>, findings: &mut Vec<Finding>) {
    for file in &model.files {
        let toks = &file.toks;
        // Names bound to HashMap/HashSet per owning fn.
        let mut bound: Vec<(u32, String)> = Vec::new();
        for (i, st) in toks.iter().enumerate() {
            if file.in_test[i] || file.owner[i] == NO_OWNER {
                continue;
            }
            if st.is_ident("HashMap") || st.is_ident("HashSet") {
                if let Some(name) = binding_name(toks, i) {
                    bound.push((file.owner[i], name));
                }
            }
        }
        if bound.is_empty() {
            continue;
        }
        for (i, st) in toks.iter().enumerate() {
            let owner = file.owner[i];
            if file.in_test[i] || owner == NO_OWNER || !render.contains(&owner) {
                continue;
            }
            let Some(name) = st.ident() else { continue };
            if !bound.iter().any(|(o, n)| *o == owner && n == name) {
                continue;
            }
            let iterated =
                // `for k in map` / `for k in &map`
                (i > 0 && (toks[i - 1].is_ident("in")
                    || (toks[i - 1].is_punct("&") && i > 1 && toks[i - 2].is_ident("in"))))
                // `map.iter()`, `.keys()`, `.values()`, …
                || (toks.get(i + 1).is_some_and(|t| t.is_punct("."))
                    && toks.get(i + 2).and_then(|t| t.ident()).is_some_and(|n| {
                        matches!(
                            n,
                            "iter" | "iter_mut" | "keys" | "values" | "values_mut"
                                | "into_iter" | "into_keys" | "into_values" | "drain"
                        )
                    }));
            if iterated {
                let f = &model.fns[owner as usize];
                findings.push(Finding {
                    code: codes::AUDIT_HASH_ITERATION,
                    severity: Severity::Error,
                    file: file.rel_path.clone(),
                    line: toks[i].line,
                    message: format!(
                        "iteration over hash-ordered `{name}` in `{}` feeds rendered \
                         output — order is nondeterministic",
                        f.qualname
                    ),
                    chain: Vec::new(),
                    key: key_of(
                        codes::AUDIT_HASH_ITERATION,
                        &file.rel_path,
                        &f.qualname,
                        name,
                    ),
                });
            }
        }
    }
}

/// The binding name for a `HashMap`/`HashSet` type/constructor mention:
/// `let m = HashMap::new()`, `m: HashMap<..>`, `m: &mut HashMap<..>`.
fn binding_name(toks: &[Spanned], i: usize) -> Option<String> {
    let mut j = i.checked_sub(1)?;
    // Skip reference/mutability noise between the name and the type.
    while j > 0 && (toks[j].is_punct("&") || toks[j].is_ident("mut") || toks[j].is_punct("<")) {
        j -= 1;
    }
    match &toks[j].tok {
        Tok::Punct("=") | Tok::Punct(":") => {
            let prev = j.checked_sub(1)?;
            toks[prev].ident().map(str::to_string)
        }
        _ => None,
    }
}

/// L021: wall-clock reads in payload-reachable fns.
fn wallclock(model: &Model, payload: &HashSet<u32>, findings: &mut Vec<Finding>) {
    for file in &model.files {
        let toks = &file.toks;
        for (i, st) in toks.iter().enumerate() {
            let owner = file.owner[i];
            if file.in_test[i] || owner == NO_OWNER || !payload.contains(&owner) {
                continue;
            }
            let is_clock = st.is_ident("SystemTime") || st.is_ident("Instant");
            if is_clock
                && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
                && toks.get(i + 2).is_some_and(|t| t.is_ident("now"))
            {
                let f = &model.fns[owner as usize];
                findings.push(Finding {
                    code: codes::AUDIT_TIME_IN_PAYLOAD,
                    severity: Severity::Error,
                    file: file.rel_path.clone(),
                    line: st.line,
                    message: format!(
                        "wall-clock read in `{}` flows into a certificate or memo-key \
                         payload — reproducibility breaks",
                        f.qualname
                    ),
                    chain: Vec::new(),
                    key: key_of(
                        codes::AUDIT_TIME_IN_PAYLOAD,
                        &file.rel_path,
                        &f.qualname,
                        "wallclock",
                    ),
                });
            }
        }
    }
}

/// L023: audited-feature-gated items reachable from ungated code.
/// Method-name edges are skipped outright: a real cross-gate call would
/// not compile with the feature off, so only misattributed edges land
/// here.
fn feature_leaks(model: &Model, graph: &CallGraph, findings: &mut Vec<Finding>) {
    for e in &graph.edges {
        if e.methodish {
            continue;
        }
        let from = &model.fns[e.from as usize];
        let to = &model.fns[e.to as usize];
        if from.is_test || to.is_test {
            continue;
        }
        for feat in config::AUDITED_FEATURES {
            if to.features.iter().any(|f| f == feat) && !from.features.iter().any(|f| f == feat) {
                // The gated/ungated twin-module idiom: if the same call
                // site also resolves to an *ungated* fn of the same
                // name, the default build compiles against the
                // fallback — no leak.
                let has_ungated_twin = graph.edges.iter().any(|e2| {
                    e2.from == e.from
                        && e2.file == e.file
                        && e2.line == e.line
                        && model.fns[e2.to as usize].name == to.name
                        && !model.fns[e2.to as usize].features.iter().any(|f| f == feat)
                });
                if has_ungated_twin {
                    continue;
                }
                let file = &model.files[e.file as usize];
                findings.push(Finding {
                    code: codes::AUDIT_FEATURE_LEAK,
                    severity: Severity::Error,
                    file: file.rel_path.clone(),
                    line: e.line,
                    message: format!(
                        "`{}` (gated on feature \"{feat}\") is reachable from \
                         ungated `{}` — audited features must stay out of \
                         default builds",
                        to.qualname, from.qualname
                    ),
                    chain: Vec::new(),
                    key: key_of(
                        codes::AUDIT_FEATURE_LEAK,
                        &file.rel_path,
                        &from.qualname,
                        &to.qualname,
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph;

    fn hygiene_of(files: &[(&str, &str, &str)]) -> Vec<Finding> {
        let mut m = Model::default();
        for (krate, path, src) in files {
            m.add_file(krate, path, src);
        }
        let g = graph::build(&m);
        run(&m, &g)
    }

    #[test]
    fn missing_forbid_unsafe_fires_per_crate_root() {
        let f = hygiene_of(&[
            (
                "good",
                "crates/good/src/lib.rs",
                "#![forbid(unsafe_code)]\npub fn a() {}",
            ),
            ("bad", "crates/bad/src/lib.rs", "pub fn b() {}"),
        ]);
        let l022: Vec<_> = f.iter().filter(|x| x.code == "MMIO-L022").collect();
        assert_eq!(l022.len(), 1);
        assert!(l022[0].file.contains("crates/bad"));
    }

    #[test]
    fn hash_iteration_reachable_from_render_root_fires() {
        // `to_line` in crate mmio-serve is a configured render root.
        let f = hygiene_of(&[(
            "mmio-serve",
            "crates/serve/src/lib.rs",
            r#"
            #![forbid(unsafe_code)]
            use std::collections::HashMap;
            pub fn to_line() -> String { render_stats() }
            fn render_stats() -> String {
                let m: HashMap<String, u64> = HashMap::new();
                let mut out = String::new();
                for k in m.keys() { out.push_str(k); }
                out
            }
            "#,
        )]);
        assert!(f.iter().any(|x| x.code == "MMIO-L020"), "{f:?}");
    }

    #[test]
    fn hash_iteration_off_the_render_path_is_silent() {
        let f = hygiene_of(&[(
            "mmio-serve",
            "crates/serve/src/lib.rs",
            r#"
            #![forbid(unsafe_code)]
            pub fn internal_only() {
                let m: HashMap<u32, u32> = HashMap::new();
                for _ in m.iter() {}
            }
            "#,
        )]);
        assert!(f.iter().all(|x| x.code != "MMIO-L020"), "{f:?}");
    }

    #[test]
    fn wallclock_in_payload_path_fires() {
        let f = hygiene_of(&[(
            "mmio-cert",
            "crates/cert/src/lib.rs",
            r#"
            #![forbid(unsafe_code)]
            pub fn emit_certificate() -> String { stamp() }
            fn stamp() -> String { let _t = SystemTime::now(); String::new() }
            "#,
        )]);
        assert!(f.iter().any(|x| x.code == "MMIO-L021"), "{f:?}");
    }

    #[test]
    fn feature_leak_fires_on_direct_call() {
        let f = hygiene_of(&[(
            "demo",
            "crates/demo/src/lib.rs",
            r#"
            #![forbid(unsafe_code)]
            #[cfg(feature = "mutate")]
            pub fn mutate_hook() {}
            pub fn default_path() { mutate_hook(); }
            "#,
        )]);
        assert!(f.iter().any(|x| x.code == "MMIO-L023"), "{f:?}");
    }

    #[test]
    fn gated_to_gated_is_fine() {
        let f = hygiene_of(&[(
            "demo",
            "crates/demo/src/lib.rs",
            r#"
            #![forbid(unsafe_code)]
            #[cfg(feature = "mutate")]
            pub fn mutate_hook() {}
            #[cfg(feature = "mutate")]
            pub fn mutate_driver() { mutate_hook(); }
            "#,
        )]);
        assert!(f.iter().all(|x| x.code != "MMIO-L023"), "{f:?}");
    }
}
