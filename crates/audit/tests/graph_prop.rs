//! Property tests for the call-graph builder: on arbitrary fragment
//! soup — including unbalanced braces, stray punctuation, and
//! half-finished items — the builder must never panic, must keep every
//! index in range, and must be deterministic.

use mmio_audit::graph;
use mmio_audit::parse::Model;
use mmio_audit::run::audit_model;
use proptest::prelude::*;

/// Source fragments the generator stitches together. Deliberately
/// includes malformed shapes a lexer/parser pipeline must survive.
const FRAGMENTS: &[&str] = &[
    "pub fn alpha() { beta(); }\n",
    "fn beta(x: Option<u32>) -> u32 { x.unwrap() }\n",
    "fn gamma(v: &[u32]) -> u32 { v[0] + 1 }\n",
    "struct Widget;\n",
    "impl Widget { fn spin(&self) { self.spin(); } }\n",
    "impl Widget { fn stop(&self) {} }\n",
    "fn call_method(w: Widget) { w.spin(); }\n",
    "fn turbo() { Widget::spin(); }\n",
    "#[cfg(feature = \"mutate\")]\nfn gated() {}\n",
    "#[cfg(test)]\nmod tests { fn t() { super::alpha(); } }\n",
    "// audit: safe — fragment-soup justification\n",
    "fn lit() -> &'static str { \"MMIO-Z001\" }\n",
    "macro_rules! m { () => {} }\n",
    "} } {\n",
    "fn unclosed( {\n",
    "let stray = 3; ::<>\n",
    "/* block comment with fn fake() { } inside */\n",
    "const S: &str = \"string with fn and { braces\";\n",
];

fn model_from(picks: &[usize], split: usize) -> Model {
    let mut a = String::new();
    let mut b = String::new();
    for (i, &p) in picks.iter().enumerate() {
        let frag = FRAGMENTS[p % FRAGMENTS.len()];
        if i < split {
            a.push_str(frag);
        } else {
            b.push_str(frag);
        }
    }
    let mut m = Model::default();
    m.add_crate_deps("fraga", vec!["fragb".to_string()]);
    m.add_crate_deps("fragb", Vec::new());
    m.add_file("fraga", "crates/fraga/src/lib.rs", &a);
    m.add_file("fragb", "crates/fragb/src/lib.rs", &b);
    m
}

proptest! {
    #[test]
    fn builder_never_panics_and_indices_stay_in_range(
        picks in proptest::collection::vec(0usize..64, 0..24),
        split in 0usize..24,
    ) {
        let m = model_from(&picks, split);
        let g = graph::build(&m);
        prop_assert_eq!(g.adj.len(), m.fns.len());
        for e in &g.edges {
            prop_assert!((e.from as usize) < m.fns.len());
            prop_assert!((e.to as usize) < m.fns.len());
            prop_assert!((e.file as usize) < m.files.len());
        }
        for s in &g.sites {
            prop_assert!((s.file as usize) < m.files.len());
        }
        for (from, adj) in g.adj.iter().enumerate() {
            for &ei in adj {
                prop_assert_eq!(g.edges[ei as usize].from as usize, from);
            }
        }
    }

    #[test]
    fn builder_is_deterministic(
        picks in proptest::collection::vec(0usize..64, 0..24),
        split in 0usize..24,
    ) {
        let m = model_from(&picks, split);
        let g1 = graph::build(&m);
        let g2 = graph::build(&m);
        prop_assert_eq!(g1.edges.len(), g2.edges.len());
        prop_assert_eq!(g1.sites.len(), g2.sites.len());
        for (e1, e2) in g1.edges.iter().zip(&g2.edges) {
            prop_assert_eq!((e1.from, e1.to, e1.line), (e2.from, e2.to, e2.line));
        }
    }

    #[test]
    fn full_audit_survives_fragment_soup(
        picks in proptest::collection::vec(0usize..64, 0..24),
        split in 0usize..24,
    ) {
        let m = model_from(&picks, split);
        let g = graph::build(&m);
        // No trust roots match, so panic findings are impossible; the
        // registry/hygiene passes must still run to completion.
        let out = audit_model(&m, &g, &[], &[]);
        for f in &out.findings {
            prop_assert!(f.code.starts_with("MMIO-L"), "{}", f.code);
        }
    }
}
