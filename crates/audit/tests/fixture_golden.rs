//! Golden test over the planted-violation fixture workspace: every
//! `MMIO-Lxxx` code must fire exactly once, at its planted site, and
//! nothing else may fire — the fixture is the auditor's own
//! known-answer corpus.

use mmio_analyze::Severity;
use mmio_audit::config;
use mmio_audit::graph;
use mmio_audit::run::{audit_model, load_workspace};
use std::path::Path;

/// The fixture's only panic trust root. The production
/// [`config::TRUST_ROOTS`] list names fns the fixture deliberately
/// lacks, and the panic pass reports unresolved roots as stale policy —
/// correct for the real workspace, noise here.
const FIXTURE_ROOTS: &[config::TrustRoot] = &[config::TrustRoot {
    crate_name: "mmio-cert",
    type_name: None,
    fn_name: "verify_json",
    why: "fixture verification TCB entry point",
}];

fn fixture_outcome() -> mmio_audit::AuditOutcome {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws");
    let (model, docs) = load_workspace(&root).expect("fixture workspace loads");
    let g = graph::build(&model);
    audit_model(&model, &g, &docs, FIXTURE_ROOTS)
}

#[test]
fn every_code_fires_exactly_once() {
    let out = fixture_outcome();
    let mut got: Vec<&str> = out.findings.iter().map(|f| f.code).collect();
    got.sort_unstable();
    assert_eq!(
        got,
        vec![
            "MMIO-L001",
            "MMIO-L002",
            "MMIO-L003",
            "MMIO-L004",
            "MMIO-L005",
            "MMIO-L006",
            "MMIO-L010",
            "MMIO-L011",
            "MMIO-L012",
            "MMIO-L013",
            "MMIO-L014",
            "MMIO-L020",
            "MMIO-L021",
            "MMIO-L022",
            "MMIO-L023",
        ],
        "fixture findings drifted: {:#?}",
        out.findings
    );
    assert!(out.has_errors());
}

#[test]
fn findings_land_at_the_planted_sites() {
    let out = fixture_outcome();
    let file_of = |code: &str| -> &str {
        &out.findings
            .iter()
            .find(|f| f.code == code)
            .unwrap_or_else(|| panic!("{code} missing"))
            .file
    };
    // Panic family + justification lints + wall-clock: the cert fixture.
    for code in [
        "MMIO-L001",
        "MMIO-L002",
        "MMIO-L003",
        "MMIO-L004",
        "MMIO-L005",
        "MMIO-L006",
        "MMIO-L021",
    ] {
        assert_eq!(file_of(code), "crates/cert/src/lib.rs", "{code}");
    }
    // Render-path hash iteration + feature leak: the serve fixture. The
    // duplicate emitter is reported at the *second* crate's site, which
    // is also serve.
    for code in ["MMIO-L020", "MMIO-L023", "MMIO-L014"] {
        assert_eq!(file_of(code), "crates/serve/src/lib.rs", "{code}");
    }
    // Registry lifecycle + missing forbid: the extra fixture.
    assert_eq!(file_of("MMIO-L010"), "crates/extra/src/lib.rs");
    assert_eq!(file_of("MMIO-L011"), "crates/extra/src/codes.rs");
    assert_eq!(file_of("MMIO-L012"), "crates/extra/src/lib.rs");
    assert_eq!(file_of("MMIO-L013"), "crates/extra/src/lib.rs");
    assert_eq!(file_of("MMIO-L022"), "crates/extra/src/lib.rs");
}

#[test]
fn severities_match_the_registered_table() {
    let out = fixture_outcome();
    for f in &out.findings {
        let expected = match f.code {
            "MMIO-L004" | "MMIO-L011" | "MMIO-L013" => Severity::Warning,
            _ => Severity::Error,
        };
        assert_eq!(f.severity, expected, "{}: {}", f.code, f.message);
    }
}

#[test]
fn panic_findings_carry_witness_chains() {
    let out = fixture_outcome();
    for code in ["MMIO-L001", "MMIO-L002", "MMIO-L003", "MMIO-L004"] {
        let f = out
            .findings
            .iter()
            .find(|f| f.code == code)
            .unwrap_or_else(|| panic!("{code} missing"));
        assert!(
            f.chain.iter().any(|link| link.contains("verify_json")),
            "{code} chain must start at the trust root: {:?}",
            f.chain
        );
    }
}
