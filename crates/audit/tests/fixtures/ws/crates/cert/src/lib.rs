#![forbid(unsafe_code)]
//! Fixture: panic sites reachable from the `verify_json` trust root
//! (MMIO-L001..L004), justification lints (L005/L006), and a wall-clock
//! read on the certificate-payload path (L021).

use std::time::SystemTime;

pub fn verify_json(input: &str) -> u32 {
    let parsed = parse_step(input);
    let digit = first_digit(input);
    let total = add_counts(parsed, digit);
    ensure_nonempty(input);
    total
}

fn parse_step(input: &str) -> u32 {
    input.len().try_into().unwrap()
}

fn first_digit(input: &str) -> u8 {
    let bytes = input.as_bytes();
    bytes[0]
}

fn add_counts(a: u32, b: u8) -> u32 {
    a + u32::from(b)
}

fn ensure_nonempty(input: &str) {
    if input.is_empty() {
        panic!("empty certificate");
    }
}

// audit: safe — there is no panic site anywhere near this comment
pub fn decoy() {}

pub fn unreached_helper(x: Option<u32>) -> u32 {
    // audit: safe — this helper fell off the trust path long ago
    x.unwrap()
}

pub fn emit_certificate() -> String {
    stamp()
}

fn stamp() -> String {
    let _t = SystemTime::now();
    String::new()
}
