#![forbid(unsafe_code)]
//! Fixture: hash-order iteration on the render path (MMIO-L020), a
//! feature-gated hook leaking into the default build (L023), and a
//! second emitter of `MMIO-X014` (L014, with crates/extra).

use std::collections::HashMap;

pub fn to_line() -> String {
    let m: HashMap<String, u64> = HashMap::new();
    let mut out = String::new();
    for k in m.keys() {
        out.push_str(k);
    }
    out
}

#[cfg(feature = "mutate")]
pub fn mutate_hook() {}

pub fn default_path() {
    mutate_hook();
}

pub fn emit_shared_again() -> &'static str {
    "MMIO-X014"
}
