//! Fixture: registry-lifecycle violations (MMIO-L010..L014) and a crate
//! root deliberately missing `#![forbid(unsafe_code)]` (L022).

pub mod codes;

pub fn emit_good() -> &'static str {
    codes::GOOD
}

pub fn emit_unregistered() -> &'static str {
    "MMIO-X009"
}

pub fn emit_undocumented() -> &'static str {
    codes::UNDOC
}

pub fn emit_untested() -> &'static str {
    codes::UNTESTED
}

pub fn emit_shared() -> &'static str {
    codes::SHARED
}
