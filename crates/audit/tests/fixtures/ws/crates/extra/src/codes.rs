//! Fixture code registry.

pub const GOOD: &str = "MMIO-X001";
pub const DEAD: &str = "MMIO-X003";
pub const UNDOC: &str = "MMIO-X012";
pub const UNTESTED: &str = "MMIO-X013";
pub const SHARED: &str = "MMIO-X014";
