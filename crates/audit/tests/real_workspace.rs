//! The zero-false-positive contract: the real workspace must audit
//! clean (no errors), and the model/graph sizes are snapshot-pinned so
//! a silent resolution regression (dropped files, collapsed edges)
//! cannot hide behind a still-green finding list.

use mmio_analyze::Severity;
use mmio_audit::{audit_workspace, find_workspace_root, AuditOptions};
use std::path::Path;

fn outcome() -> mmio_audit::AuditOutcome {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/audit");
    audit_workspace(&root, &AuditOptions::default()).expect("workspace audits")
}

#[test]
fn real_workspace_has_zero_errors() {
    let out = outcome();
    let errors: Vec<_> = out
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .collect();
    assert!(
        errors.is_empty(),
        "the real workspace must audit clean; new errors need a fix or a \
         reviewed `// audit: safe` justification:\n{errors:#?}"
    );
}

#[test]
fn model_size_snapshot() {
    // Update these pins deliberately when the workspace grows — a drop
    // means the auditor stopped seeing part of the codebase.
    let s = outcome().stats;
    assert_eq!(
        (s.files, s.fns, s.edges, s.sites),
        (187, 1914, 5361, 2908),
        "model/graph size drifted: files={}, fns={}, edges={}, sites={}",
        s.files,
        s.fns,
        s.edges,
        s.sites
    );
}
