//! Golden corrupted-snapshot corpus for the serve disk cache: committed
//! snapshot files whose exact recovery-scan verdicts (`MMIO-Fxxx` codes)
//! are pinned in `tests/corpus/manifest.json` — the disk-tier analogue of
//! `crates/cert/tests/corpus/`. Any cache change that starts accepting a
//! corrupt snapshot, drops a quarantine, or shifts a diagnostic code
//! fails here before it ships.
//!
//! Each corpus file is installed (under its manifest-specified on-disk
//! name — the filename itself is part of the validated surface) into a
//! fresh cache root, and `DiskCache::open`'s recovery scan must produce
//! exactly the pinned verdict: valid, or quarantined with exactly one
//! diagnostic carrying the pinned code.
//!
//! Regenerate (after an *intentional* snapshot-format change) with:
//! `cargo test -p mmio-serve --test corpus -- --ignored regenerate_corpus`

use mmio_serve::cache::{CacheKey, DiskCache};
use mmio_serve::faults::NoFaults;
use serde::Value;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmio_serve_corpus_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// One manifest entry: the committed corpus file, the name it must carry
/// inside a shard directory (the filename is validated, so it is part of
/// the scenario), and the expected recovery verdict — `None` for valid,
/// `Some(code)` for quarantined-with-exactly-this-code.
struct Entry {
    file: String,
    install_as: String,
    code: Option<String>,
}

fn load_manifest() -> Vec<Entry> {
    let text = fs::read_to_string(corpus_dir().join("manifest.json"))
        .expect("corpus manifest missing — run the ignored `regenerate_corpus` test");
    let v: Value = serde_json::from_str(&text).expect("manifest decodes");
    let Value::Array(items) = v else {
        panic!("manifest is not an array")
    };
    items
        .iter()
        .map(|item| {
            let get = |k: &str| match item.get(k) {
                Some(Value::Str(s)) => Some(s.clone()),
                Some(Value::Null) | None => None,
                other => panic!("manifest field {k}: {other:?}"),
            };
            Entry {
                file: get("file").expect("file"),
                install_as: get("install_as").expect("install_as"),
                code: get("code"),
            }
        })
        .collect()
}

#[test]
fn golden_snapshot_corpus_recovery_verdicts_are_exact() {
    let manifest = load_manifest();
    assert!(
        manifest.len() >= 8,
        "corpus suspiciously small ({} entries)",
        manifest.len()
    );
    let mut corrupted = 0usize;
    for entry in &manifest {
        let bytes = fs::read(corpus_dir().join(&entry.file))
            .unwrap_or_else(|e| panic!("{}: {e}", entry.file));
        // Fresh root per entry: the report then describes exactly this file.
        let root = tmp_root(entry.file.trim_end_matches(".json"));
        fs::create_dir_all(root.join("shard00")).unwrap();
        fs::write(root.join("shard00").join(&entry.install_as), &bytes).unwrap();
        let (_, report) = DiskCache::open(&root, Arc::new(NoFaults)).unwrap();
        match &entry.code {
            None => {
                assert_eq!(report.valid, 1, "{}: must scan as valid", entry.file);
                assert!(
                    report.quarantined.is_empty(),
                    "{}: spuriously quarantined: {:?}",
                    entry.file,
                    report.quarantined
                );
            }
            Some(code) => {
                corrupted += 1;
                assert_eq!(
                    report.valid, 0,
                    "{}: corrupt file scanned as valid",
                    entry.file
                );
                assert_eq!(
                    report.quarantined.len(),
                    1,
                    "{}: expected exactly one quarantine: {:?}",
                    entry.file,
                    report.quarantined
                );
                assert_eq!(
                    report.quarantined[0].code, code,
                    "{}: diagnostic code drifted ({})",
                    entry.file, report.quarantined[0]
                );
                assert!(
                    !root.join("shard00").join(&entry.install_as).exists(),
                    "{}: corrupt file left in the shard",
                    entry.file
                );
                assert!(
                    root.join("quarantine").join(&entry.install_as).exists(),
                    "{}: corrupt file not preserved in quarantine/",
                    entry.file
                );
            }
        }
        let _ = fs::remove_dir_all(&root);
    }
    assert!(corrupted >= 6, "only {corrupted} corrupted entries");
}

/// The fixed identity every corpus snapshot is derived from.
fn base_key() -> CacheKey {
    CacheKey {
        kind: "certify",
        algo: "strassen".to_string(),
        k: 2,
        extra: "m=49".to_string(),
    }
}

const BASE_PAYLOAD: &str = "n = 9, M = 49: 1 complete segments, certified I/O \u{2265} 49\n\
     (k = 1, feasible = true, disjoint subcomputations = 7 \u{2265} target 7)\n";

/// Writes one pristine snapshot via the real persist path and returns its
/// bytes plus its canonical on-disk name.
fn pristine_snapshot() -> (Vec<u8>, String) {
    let root = tmp_root("regen");
    let (cache, _) = DiskCache::open(&root, Arc::new(NoFaults)).unwrap();
    let key = base_key();
    cache.put(&key, BASE_PAYLOAD);
    let name = key.file_name();
    let bytes = fs::read(root.join(format!("shard{:02}", key.shard())).join(&name)).unwrap();
    let _ = fs::remove_dir_all(&root);
    (bytes, name)
}

#[test]
#[ignore = "regenerates the committed corpus; run after intentional format changes"]
fn regenerate_corpus() {
    let dir = corpus_dir();
    fs::create_dir_all(&dir).unwrap();
    let (clean, canonical_name) = pristine_snapshot();
    let text = String::from_utf8(clean.clone()).unwrap();

    let mut manifest: Vec<(String, String, Option<String>)> = Vec::new();
    let mut emit = |file: &str, install_as: &str, code: Option<&str>, bytes: &[u8]| {
        fs::write(dir.join(file), bytes).unwrap();
        manifest.push((
            file.to_string(),
            install_as.to_string(),
            code.map(str::to_string),
        ));
    };

    // Valid snapshot under its canonical name.
    emit("clean__certify.json", &canonical_name, None, &clean);

    // Truncated mid-entry: a torn final write. Not valid JSON → F001.
    emit(
        "truncated__mid-entry.json",
        &canonical_name,
        Some("MMIO-F001"),
        &clean[..clean.len() / 3],
    );

    // Not JSON at all → F001.
    emit(
        "garbage__not-json.json",
        &canonical_name,
        Some("MMIO-F001"),
        b"this was never a snapshot\n",
    );

    // Missing payload field → F001.
    let no_payload = text.replace("\"payload\"", "\"not_payload\"");
    assert_ne!(no_payload, text);
    emit(
        "missingfield__no-payload.json",
        &canonical_name,
        Some("MMIO-F001"),
        no_payload.as_bytes(),
    );

    // Single bit flip inside the payload → checksum mismatch, F002.
    let mut flipped = clean.clone();
    let i = text.find("complete").expect("payload text present");
    flipped[i] ^= 0x20;
    emit(
        "bitflip__payload.json",
        &canonical_name,
        Some("MMIO-F002"),
        &flipped,
    );

    // Checksum field lies → F002.
    let checksum = text
        .split("\"checksum\":\"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .expect("checksum field");
    let lied = text.replace(checksum, "0000000000000000");
    emit(
        "badchecksum__zeroed.json",
        &canonical_name,
        Some("MMIO-F002"),
        lied.as_bytes(),
    );

    // Stale format version → F003 (version is checked before anything else,
    // so the otherwise-intact entry is still refused).
    let stale = text.replace("\"format_version\":1", "\"format_version\":0");
    assert_ne!(stale, text);
    emit(
        "staleversion__v0.json",
        &canonical_name,
        Some("MMIO-F003"),
        stale.as_bytes(),
    );

    // Future format version → F003.
    let future = text.replace("\"format_version\":1", "\"format_version\":999");
    emit(
        "staleversion__v999.json",
        &canonical_name,
        Some("MMIO-F003"),
        future.as_bytes(),
    );

    // Valid snapshot under the *wrong* filename: a cross-linked entry that
    // would shadow a different key forever → F004.
    emit(
        "wrongname__cross-linked.json",
        "certify__0000000000000000.json",
        Some("MMIO-F004"),
        &clean,
    );

    // Embedded identity tampered (algo renamed): the recorded key no longer
    // matches the re-derived content hash → F004.
    let retargeted = text.replace("\"algo\":\"strassen\"", "\"algo\":\"winograd\"");
    assert_ne!(retargeted, text);
    emit(
        "wrongkey__retargeted-algo.json",
        &canonical_name,
        Some("MMIO-F004"),
        retargeted.as_bytes(),
    );

    let manifest_json = Value::Array(
        manifest
            .into_iter()
            .map(|(file, install_as, code)| {
                Value::Object(vec![
                    ("file".to_string(), Value::Str(file)),
                    ("install_as".to_string(), Value::Str(install_as)),
                    ("code".to_string(), code.map_or(Value::Null, Value::Str)),
                ])
            })
            .collect(),
    );
    fs::write(
        dir.join("manifest.json"),
        serde_json::to_string_pretty(&manifest_json).unwrap(),
    )
    .unwrap();
}
