//! The fault-injection harness: every failure mode the serve tier claims
//! to survive is injected deterministically and the recovery asserted —
//! zero hangs, zero corrupt responses, typed codes everywhere, and
//! successful payloads byte-identical to the batch renderers at any
//! concurrency.
//!
//! (The kill-mid-persist crash/restart half lives in
//! `tests/crash_restart.rs`; it needs process re-exec.)

use mmio_parallel::Pool;
use mmio_serve::engine::{Engine, EngineConfig};
use mmio_serve::faults::{NoFaults, PersistFault, ReadFault, ScriptedFaults};
use mmio_serve::protocol::{Op, Request, Response, Status};
use mmio_serve::{codes, ops, FaultPlan};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmio_faults_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg(cache: Option<PathBuf>) -> EngineConfig {
    EngineConfig {
        workers: 2,
        queue_cap: 8,
        max_spawns: 8,
        default_deadline: Duration::from_secs(60),
        cache_dir: cache,
        pool_threads: 1,
    }
}

fn certify(id: u64, deadline_ms: Option<u64>) -> Request {
    Request {
        id,
        deadline_ms,
        op: Op::Certify {
            algo: "strassen".into(),
            r: 2,
            m: 49,
        },
    }
}

fn batch_certify_payload() -> String {
    ops::certify_text(
        &ops::resolve_registry("strassen").unwrap(),
        2,
        49,
        ops::ViewMode::Auto,
        &Pool::serial(),
    )
}

/// Every fault path must end in a typed response — never a hang. Wrap
/// submissions in a generous watchdog so a regression fails instead of
/// wedging CI.
fn submit_bounded(engine: &Arc<Engine>, req: Request) -> Response {
    let (tx, rx) = std::sync::mpsc::channel();
    let e = Arc::clone(engine);
    std::thread::spawn(move || {
        let _ = tx.send(e.submit(req));
    });
    rx.recv_timeout(Duration::from_secs(120))
        .expect("engine.submit must return (typed), not hang")
}

#[test]
fn panicking_job_is_isolated_typed_and_server_survives() {
    let hook = Arc::new(ScriptedFaults::new().script_panics([true]));
    let (engine, _) = Engine::start(cfg(None), hook).unwrap();
    let engine = Arc::new(engine);

    let poisoned = submit_bounded(&engine, certify(1, None));
    assert_eq!(poisoned.status, Status::Panicked, "{poisoned:?}");
    assert_eq!(poisoned.code, Some(codes::SERVE_JOB_PANIC));
    assert!(
        poisoned.payload.is_none(),
        "a panic must not leak a payload"
    );

    // The worker survived: the very next request succeeds with the batch
    // bytes.
    let next = submit_bounded(&engine, certify(2, None));
    assert_eq!(next.status, Status::Ok, "{next:?}");
    assert_eq!(
        next.payload.as_deref(),
        Some(batch_certify_payload().as_str())
    );
    assert_eq!(
        engine
            .counters()
            .panics
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    assert!(engine.shutdown(Duration::from_secs(10)));
}

#[test]
fn wedged_job_times_out_typed_and_worker_is_replaced() {
    // One job wedges for 30 s; its submitter has a 100 ms deadline. The
    // response must be a typed deadline error, a replacement worker must
    // keep the server serving, and the eventual un-wedge must not confuse
    // anything (the wedged worker retires on over-strength).
    let hook = Arc::new(ScriptedFaults::new().script_wedges([Some(Duration::from_secs(30))]));
    let (engine, _) = Engine::start(
        EngineConfig {
            workers: 1,
            max_spawns: 4,
            ..cfg(None)
        },
        hook,
    )
    .unwrap();
    let engine = Arc::new(engine);

    let wedged = submit_bounded(&engine, certify(1, Some(100)));
    assert_eq!(wedged.status, Status::DeadlineExceeded, "{wedged:?}");
    assert_eq!(wedged.code, Some(codes::SERVE_DEADLINE));
    assert_eq!(
        engine.worker_replacements(),
        1,
        "wedge must trigger replacement"
    );
    // The detail names the replacement's own code (MMIO-F009) so the
    // replacement is visible in the reply, not just in engine counters.
    let error = wedged.error.as_deref().unwrap_or_default();
    assert!(
        error.contains(codes::SERVE_WORKER_REPLACED),
        "deadline detail should name the replacement code: {error:?}"
    );

    // The replacement serves immediately — no waiting out the wedge.
    let next = submit_bounded(&engine, certify(2, Some(30_000)));
    assert_eq!(next.status, Status::Ok, "{next:?}");
    assert_eq!(
        next.payload.as_deref(),
        Some(batch_certify_payload().as_str())
    );
    // Don't assert full drain: the wedged worker may still be sleeping.
    engine.shutdown(Duration::from_millis(50));
}

#[test]
fn saturated_queue_sheds_with_typed_overloaded() {
    // One worker wedged 2 s, queue cap 1: the first request occupies the
    // worker, the second fills the queue, the third must shed *immediately*
    // (not block) with the typed overload code.
    let hook = Arc::new(ScriptedFaults::new().script_wedges([Some(Duration::from_secs(2))]));
    let (engine, _) = Engine::start(
        EngineConfig {
            workers: 1,
            queue_cap: 1,
            max_spawns: 2,
            ..cfg(None)
        },
        hook,
    )
    .unwrap();
    let engine = Arc::new(engine);

    // Occupy the worker (async submit; response comes after the wedge).
    let e1 = Arc::clone(&engine);
    let h1 = std::thread::spawn(move || e1.submit(certify(1, None)));
    // Give the worker a beat to pop the job so the queue is truly empty.
    std::thread::sleep(Duration::from_millis(200));
    // Fill the queue.
    let e2 = Arc::clone(&engine);
    let h2 = std::thread::spawn(move || e2.submit(certify(2, None)));
    std::thread::sleep(Duration::from_millis(200));

    // Shed: this must return typed-overloaded well before the wedge clears.
    let t0 = std::time::Instant::now();
    let shed = engine.submit(certify(3, None));
    assert!(
        t0.elapsed() < Duration::from_millis(500),
        "shedding must be immediate, took {:?}",
        t0.elapsed()
    );
    assert_eq!(shed.status, Status::Overloaded, "{shed:?}");
    assert_eq!(shed.code, Some(codes::SERVE_OVERLOADED));

    // The queued requests still complete correctly.
    let expect = batch_certify_payload();
    for h in [h1, h2] {
        let resp = h.join().unwrap();
        assert_eq!(resp.status, Status::Ok, "{resp:?}");
        assert_eq!(resp.payload.as_deref(), Some(expect.as_str()));
    }
    assert!(engine.shutdown(Duration::from_secs(10)));
}

#[test]
fn cache_corruption_mid_flight_recomputes_not_serves() {
    // Warm the cache, corrupt the snapshot on disk, request again: the
    // response must be the *recomputed* batch bytes (cached=false), with
    // the corruption quarantined under its exact code.
    let dir = tmpdir("midflight");
    let (engine, _) = Engine::start(cfg(Some(dir.clone())), Arc::new(NoFaults)).unwrap();
    let engine = Arc::new(engine);
    let expect = batch_certify_payload();

    let cold = submit_bounded(&engine, certify(1, None));
    assert_eq!(cold.payload.as_deref(), Some(expect.as_str()));

    // Corrupt the single snapshot in place.
    let mut snapshot = None;
    for shard in 0..8 {
        let dirp = dir.join(format!("shard{shard:02}"));
        for e in std::fs::read_dir(&dirp).unwrap().flatten() {
            snapshot = Some(e.path());
        }
    }
    let snapshot = snapshot.expect("cold request persisted a snapshot");
    let mut bytes = std::fs::read(&snapshot).unwrap();
    let text = String::from_utf8(bytes.clone()).unwrap();
    let i = text.find("complete").expect("payload text in snapshot");
    bytes[i] ^= 0x20;
    std::fs::write(&snapshot, &bytes).unwrap();

    let after = submit_bounded(&engine, certify(2, None));
    assert_eq!(after.status, Status::Ok, "{after:?}");
    assert!(!after.cached, "corrupt snapshot must not count as a hit");
    assert_eq!(after.payload.as_deref(), Some(expect.as_str()));
    let diags = engine.cache().unwrap().take_diags();
    assert!(
        diags
            .iter()
            .any(|d| d.code == codes::SERVE_SNAPSHOT_CHECKSUM),
        "{diags:?}"
    );
    assert!(
        dir.join("quarantine").read_dir().unwrap().next().is_some(),
        "corrupt snapshot preserved in quarantine/"
    );
    assert!(engine.shutdown(Duration::from_secs(10)));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dead_disk_degrades_to_recompute_never_fails_requests() {
    // Every cache I/O fails (reads and writes, including all retries):
    // requests must still succeed with batch-identical payloads, and the
    // degradation must be visible as typed diagnostics and counters.
    let dir = tmpdir("deaddisk");
    let hook = Arc::new(
        ScriptedFaults::new()
            .script_persists(vec![PersistFault::TransientError; 64])
            .script_reads(vec![ReadFault::TransientError; 64]),
    );
    let (engine, _) = Engine::start(cfg(Some(dir.clone())), hook).unwrap();
    let engine = Arc::new(engine);
    let expect = batch_certify_payload();

    for id in 0..3 {
        let resp = submit_bounded(&engine, certify(id, None));
        assert_eq!(resp.status, Status::Ok, "{resp:?}");
        assert!(!resp.cached, "a dead disk can never produce a hit");
        assert_eq!(resp.payload.as_deref(), Some(expect.as_str()));
    }
    let cache = engine.cache().unwrap();
    assert!(
        cache
            .counters
            .degraded
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 2,
        "degradations must be counted"
    );
    let diags = cache.take_diags();
    assert!(
        diags.iter().any(|d| d.code == codes::SERVE_CACHE_DEGRADED),
        "{diags:?}"
    );
    assert!(engine.shutdown(Duration::from_secs(10)));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seeded_campaign_responses_always_batch_identical() {
    // A randomized-but-reproducible storm of recoverable cache faults at
    // real concurrency: whatever the fault schedule does to the disk tier,
    // every successful response must carry the batch bytes, and nothing
    // may hang. Three seeds × 16 concurrent requests.
    let expect = batch_certify_payload();
    for seed in [7, 1312, 0xC0FFEE] {
        let dir = tmpdir(&format!("seed{seed}"));
        let hook = Arc::new(FaultPlan::seeded(seed, 48));
        let (engine, _) = Engine::start(
            EngineConfig {
                workers: 4,
                queue_cap: 32,
                max_spawns: 8,
                ..cfg(Some(dir.clone()))
            },
            hook,
        )
        .unwrap();
        let engine = Arc::new(engine);
        let handles: Vec<_> = (0..16)
            .map(|id| {
                let e = Arc::clone(&engine);
                std::thread::spawn(move || e.submit(certify(id, Some(60_000))))
            })
            .collect();
        for h in handles {
            let resp = h.join().unwrap();
            assert_eq!(resp.status, Status::Ok, "seed {seed}: {resp:?}");
            assert_eq!(
                resp.payload.as_deref(),
                Some(expect.as_str()),
                "seed {seed}: corrupt bytes reached a response"
            );
        }
        assert!(engine.shutdown(Duration::from_secs(10)), "seed {seed}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn restart_after_faulty_run_serves_identical_bytes() {
    // Fault-storm a cache, then reopen it cleanly: the recovery scan must
    // leave only snapshots that replay the exact batch bytes.
    let dir = tmpdir("restart");
    let expect = batch_certify_payload();
    {
        let hook = Arc::new(FaultPlan::seeded(99, 32));
        let (engine, _) = Engine::start(cfg(Some(dir.clone())), hook).unwrap();
        let engine = Arc::new(engine);
        for id in 0..6 {
            let resp = submit_bounded(&engine, certify(id, None));
            assert_eq!(resp.status, Status::Ok);
            assert_eq!(resp.payload.as_deref(), Some(expect.as_str()));
        }
        assert!(engine.shutdown(Duration::from_secs(10)));
    }
    // Clean restart over the same directory.
    let (engine, report) = Engine::start(cfg(Some(dir.clone())), Arc::new(NoFaults)).unwrap();
    let engine = Arc::new(engine);
    // Whatever the storm left behind, recovery classified it; nothing
    // invalid may survive into the serving set.
    let resp = submit_bounded(&engine, certify(100, None));
    assert_eq!(resp.status, Status::Ok, "{resp:?}");
    assert_eq!(resp.payload.as_deref(), Some(expect.as_str()));
    if resp.cached {
        assert!(report.valid >= 1, "a hit requires a recovered snapshot");
    }
    assert!(engine.shutdown(Duration::from_secs(10)));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reverify_failure_quarantines_forged_routing_cert() {
    // Forge a snapshot whose checksum is *valid* but whose payload is not
    // a real certificate: the semantic re-verification layer must refuse
    // to serve it (F010), quarantine it, and recompute a verifying one.
    let dir = tmpdir("reverify");
    let (engine, _) = Engine::start(cfg(Some(dir.clone())), Arc::new(NoFaults)).unwrap();
    let engine = Arc::new(engine);
    let key = mmio_serve::CacheKey {
        kind: "routing_cert",
        algo: "strassen".to_string(),
        k: 1,
        extra: "r=2".to_string(),
    };
    // A well-formed write of garbage: put() checksums whatever it is given.
    engine
        .cache()
        .unwrap()
        .put(&key, "{\"this is\": \"not a certificate\"}");

    let resp = submit_bounded(
        &engine,
        Request {
            id: 1,
            deadline_ms: None,
            op: Op::RoutingCert {
                algo: "strassen".into(),
                k: 1,
                r: 2,
            },
        },
    );
    assert_eq!(resp.status, Status::Ok, "{resp:?}");
    assert!(!resp.cached, "forged payload must not be served");
    let payload = resp.payload.unwrap();
    assert!(
        mmio_cert::verify_json(&payload).accepted,
        "recomputed certificate must verify"
    );
    assert_eq!(
        engine
            .counters()
            .reverify_failures
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    let diags = engine.cache().unwrap().take_diags();
    assert!(
        diags
            .iter()
            .any(|d| d.code == codes::SERVE_PAYLOAD_REVERIFY),
        "{diags:?}"
    );
    assert!(engine.shutdown(Duration::from_secs(10)));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_socket_clients_get_batch_identical_bytes() {
    // End-to-end over the wire at concurrency 8, mixed cold/warm: every
    // ok-response is byte-identical to the batch CLI rendering.
    let sock = std::env::temp_dir().join(format!("mmio_faults_sock_{}.sock", std::process::id()));
    let (engine, _) = Engine::start(
        EngineConfig {
            workers: 4,
            queue_cap: 64,
            ..cfg(None)
        },
        Arc::new(NoFaults),
    )
    .unwrap();
    let server = mmio_serve::Server::bind(&sock, Arc::new(engine)).unwrap();
    let h = std::thread::spawn(move || server.run().unwrap());

    let expect = batch_certify_payload();
    let clients: Vec<_> = (0..8)
        .map(|c| {
            let sock = sock.clone();
            let expect = expect.clone();
            std::thread::spawn(move || {
                let mut client =
                    mmio_serve::Client::connect_retry(&sock, Duration::from_secs(5)).unwrap();
                for i in 0..4u64 {
                    let resp = client.call(&certify(c * 100 + i, None)).unwrap();
                    assert_eq!(resp.status, Status::Ok, "{resp:?}");
                    assert_eq!(resp.payload.as_deref(), Some(expect.as_str()));
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }
    let mut closer = mmio_serve::Client::connect_retry(&sock, Duration::from_secs(5)).unwrap();
    let bye = closer
        .call(&Request {
            id: 0,
            deadline_ms: None,
            op: Op::Shutdown,
        })
        .unwrap();
    assert_eq!(bye.status, Status::Ok);
    h.join().unwrap();
}
