//! The kill-mid-persist crash/restart cycle, with a *real* process death:
//! the test re-execs its own binary; the child persists one snapshot
//! cleanly and then hits a scripted [`PersistFault::AbortProcess`] —
//! `std::process::abort()` mid-temp-write, no unwinding, no destructors,
//! the closest in-process stand-in for SIGKILL. The parent then restarts
//! over the same cache directory and asserts the full recovery contract:
//! the orphaned temp is swept, the published snapshot survived intact,
//! nothing was quarantined, and a fresh engine serves bytes identical to
//! the batch CLI (as a warm hit, proving the snapshot really was reread).

use mmio_parallel::Pool;
use mmio_serve::cache::{CacheKey, DiskCache};
use mmio_serve::engine::{Engine, EngineConfig};
use mmio_serve::faults::{NoFaults, PersistFault, ScriptedFaults};
use mmio_serve::protocol::{Op, Request, Status};
use mmio_serve::{codes, ops};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const CHILD_ENV: &str = "MMIO_CRASH_CHILD_DIR";

fn certify_key() -> CacheKey {
    CacheKey {
        kind: "certify",
        algo: "strassen".to_string(),
        k: 2,
        extra: "m=49".to_string(),
    }
}

fn batch_certify_payload() -> String {
    ops::certify_text(
        &ops::resolve_registry("strassen").unwrap(),
        2,
        49,
        ops::ViewMode::Auto,
        &Pool::serial(),
    )
}

/// The child half: runs only when re-exec'd by the parent test (gated on
/// the env var), publishes one snapshot, then dies mid-persist.
#[test]
#[ignore = "child half of kill_mid_persist_then_restart_recovers; spawned via re-exec"]
fn crash_child_aborts_mid_persist() {
    let Some(dir) = std::env::var_os(CHILD_ENV) else {
        // Invoked directly (e.g. `--ignored` sweep): nothing to do.
        return;
    };
    let hook = Arc::new(ScriptedFaults::new().script_persists([
        PersistFault::None,
        PersistFault::AbortProcess { keep_bytes: 37 },
    ]));
    let (cache, _) = DiskCache::open(PathBuf::from(dir), hook).unwrap();
    // First persist publishes cleanly — this snapshot must survive the
    // crash byte-for-byte.
    cache.put(&certify_key(), &batch_certify_payload());
    // Second persist aborts the process 37 bytes into the temp file.
    let doomed = CacheKey {
        kind: "analyze",
        algo: "strassen".to_string(),
        k: 2,
        extra: String::new(),
    };
    cache.put(&doomed, "this entry never gets published");
    unreachable!("AbortProcess must have killed the process");
}

#[test]
fn kill_mid_persist_then_restart_recovers() {
    let dir = std::env::temp_dir().join(format!("mmio_crash_restart_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Re-exec this test binary, running only the (ignored) child test.
    let exe = std::env::current_exe().unwrap();
    let output = std::process::Command::new(&exe)
        .args([
            "--exact",
            "crash_child_aborts_mid_persist",
            "--ignored",
            "--nocapture",
        ])
        .env(CHILD_ENV, &dir)
        .output()
        .expect("re-exec the test binary");
    assert!(
        !output.status.success(),
        "the child must die by abort, not exit cleanly: {output:?}"
    );

    // The crash site: exactly one published snapshot plus one orphaned
    // `.tmp-` from the interrupted persist.
    let key = certify_key();
    let shard = dir.join(format!("shard{:02}", key.shard()));
    assert!(
        shard.join(key.file_name()).exists(),
        "published snapshot must survive the crash"
    );
    let orphans: Vec<_> = (0..8)
        .flat_map(|s| {
            std::fs::read_dir(dir.join(format!("shard{s:02}")))
                .unwrap()
                .filter_map(|e| e.ok())
                .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
                .collect::<Vec<_>>()
        })
        .collect();
    assert_eq!(orphans.len(), 1, "exactly one torn temp at the crash site");

    // Restart: recovery sweeps the orphan, keeps the good snapshot, and
    // reports it all through typed diagnostics — never a panic.
    let (engine, report) = Engine::start(
        EngineConfig {
            cache_dir: Some(dir.clone()),
            ..EngineConfig::small()
        },
        Arc::new(NoFaults),
    )
    .unwrap();
    assert_eq!(report.valid, 1, "the published snapshot recovered");
    assert_eq!(report.orphans_swept, 1, "the torn temp swept");
    assert!(
        report.quarantined.is_empty(),
        "nothing to quarantine: {:?}",
        report.quarantined
    );
    let diags = engine.cache().unwrap().take_diags();
    assert!(
        diags.iter().any(|d| d.code == codes::SERVE_ORPHAN_TEMP),
        "{diags:?}"
    );

    // The restarted server serves the crashed-process's snapshot as a warm
    // hit, byte-identical to the batch CLI.
    let resp = engine.submit(Request {
        id: 1,
        deadline_ms: None,
        op: Op::Certify {
            algo: "strassen".into(),
            r: 2,
            m: 49,
        },
    });
    assert_eq!(resp.status, Status::Ok, "{resp:?}");
    assert!(resp.cached, "recovered snapshot must serve as a hit");
    assert_eq!(
        resp.payload.as_deref(),
        Some(batch_certify_payload().as_str())
    );
    assert!(engine.shutdown(Duration::from_secs(10)));
    let _ = std::fs::remove_dir_all(&dir);
}
