//! The NDJSON socket front end: a Unix-domain listener feeding
//! [`crate::engine::Engine`], one reader thread per connection.
//!
//! The framing contract is strict: every request line gets **exactly one**
//! response line, in request order per connection — including malformed
//! lines (typed `bad_request`), shed requests (typed `overloaded`), and
//! expired deadlines (typed `deadline_exceeded`). A client can therefore
//! pipeline requests and correlate purely by the echoed `id`.
//!
//! Shutdown is a request like any other (`{"op":"shutdown"}`): the engine
//! drains pending jobs, workers exit, the acceptor wakes and returns. A
//! stale socket file from a killed predecessor is removed at bind time —
//! the crash/restart harness leans on that.

use crate::engine::Engine;
use crate::protocol::{Op, Request, Response};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A running server: listener + engine + shutdown latch.
pub struct Server {
    listener: UnixListener,
    path: PathBuf,
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds `path` (removing any stale socket file first — a crashed
    /// predecessor must not brick the address).
    pub fn bind(path: impl Into<PathBuf>, engine: Arc<Engine>) -> std::io::Result<Server> {
        let path = path.into();
        match std::fs::remove_file(&path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let listener = UnixListener::bind(&path)?;
        Ok(Server {
            listener,
            path,
            engine,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound socket path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Accept loop; returns after a `shutdown` request has been served and
    /// the engine drained. Each connection runs on its own thread, so one
    /// slow client never blocks another — backpressure is the engine's
    /// bounded queue, not the accept loop.
    pub fn run(self) -> std::io::Result<()> {
        loop {
            let (stream, _) = self.listener.accept()?;
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let engine = Arc::clone(&self.engine);
            let stop = Arc::clone(&self.stop);
            let wake_path = self.path.clone();
            std::thread::spawn(move || {
                handle_connection(stream, &engine, &stop, &wake_path);
            });
        }
        // Drain workers; a wedged worker may outlive us (it holds nothing).
        self.engine.shutdown(Duration::from_secs(10));
        let _ = std::fs::remove_file(&self.path);
        Ok(())
    }
}

/// Serves one connection: line in, line out, until EOF or shutdown.
fn handle_connection(stream: UnixStream, engine: &Engine, stop: &AtomicBool, wake_path: &Path) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let is_shutdown = matches!(
            Request::from_line(&line),
            Ok(Request {
                op: Op::Shutdown,
                ..
            })
        );
        let resp = engine.handle_line(&line);
        if writer
            .write_all(format!("{}\n", resp.to_line()).as_bytes())
            .is_err()
        {
            return;
        }
        let _ = writer.flush();
        if is_shutdown {
            stop.store(true, Ordering::SeqCst);
            // The acceptor is blocked in accept(); poke it awake so it
            // observes the stop flag and exits.
            let _ = UnixStream::connect(wake_path);
            return;
        }
    }
}

/// A minimal blocking client (tests, the fault harness, the bench
/// load generator, and `mmio serve --request`).
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    /// Connects to a serving socket.
    pub fn connect(path: impl AsRef<Path>) -> std::io::Result<Client> {
        let stream = UnixStream::connect(path.as_ref())?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Connects, retrying until the server binds (a just-spawned server
    /// process needs a beat) or `timeout` elapses.
    pub fn connect_retry(path: impl AsRef<Path>, timeout: Duration) -> std::io::Result<Client> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match Client::connect(path.as_ref()) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    if std::time::Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
    }

    /// Sends one request and reads the matching response line.
    pub fn call(&mut self, req: &Request) -> std::io::Result<Response> {
        self.send_line(&req.to_line())?;
        self.read_response()
    }

    /// Sends a raw line (harness use: deliberately malformed requests).
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(format!("{line}\n").as_bytes())?;
        self.writer.flush()
    }

    /// Reads the next response line.
    pub fn read_response(&mut self) -> std::io::Result<Response> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::from_line(line.trim_end_matches('\n'))
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::faults::NoFaults;
    use crate::protocol::Status;

    fn spawn_server(tag: &str) -> (PathBuf, std::thread::JoinHandle<()>) {
        let sock =
            std::env::temp_dir().join(format!("mmio_serve_{tag}_{}.sock", std::process::id()));
        let (engine, _) = Engine::start(EngineConfig::small(), Arc::new(NoFaults)).unwrap();
        let server = Server::bind(&sock, Arc::new(engine)).unwrap();
        let h = std::thread::spawn(move || server.run().unwrap());
        (sock, h)
    }

    #[test]
    fn socket_roundtrip_and_graceful_shutdown() {
        let (sock, h) = spawn_server("roundtrip");
        let mut c = Client::connect_retry(&sock, Duration::from_secs(5)).unwrap();
        let resp = c
            .call(&Request {
                id: 42,
                deadline_ms: None,
                op: Op::Certify {
                    algo: "strassen".into(),
                    r: 1,
                    m: 16,
                },
            })
            .unwrap();
        assert_eq!(resp.id, 42);
        assert_eq!(resp.status, Status::Ok, "{resp:?}");
        assert!(resp.payload.unwrap().starts_with("n = "));

        // Malformed line → typed bad_request, connection stays usable.
        c.send_line("this is not json").unwrap();
        let bad = c.read_response().unwrap();
        assert_eq!(bad.status, Status::BadRequest);
        let again = c
            .call(&Request {
                id: 43,
                deadline_ms: None,
                op: Op::Stats,
            })
            .unwrap();
        assert_eq!(again.status, Status::Ok);

        let bye = c
            .call(&Request {
                id: 44,
                deadline_ms: None,
                op: Op::Shutdown,
            })
            .unwrap();
        assert_eq!(bye.status, Status::Ok);
        h.join().unwrap();
        assert!(!sock.exists(), "socket file cleaned up on shutdown");
    }
}
