//! The sharded, crash-safe disk memo tier.
//!
//! Layout under the cache root:
//!
//! ```text
//! root/
//!   shard00/ … shard07/          entries, sharded by fnv64(algo, k) % 8
//!     <kind>__<key16hex>.json    one snapshot per cached response
//!     .tmp-<key16hex>-<n>        in-flight writes (never read as entries)
//!   quarantine/                  corrupt snapshots, preserved for autopsy
//! ```
//!
//! **Crash safety.** A snapshot is published by writing the full entry to a
//! `.tmp-` file in the same directory, `sync_all`-ing it, and renaming it
//! over the final name — so a reader never observes a partially written
//! final file, and a crash at any intermediate point leaves either nothing
//! or an orphaned temp that the next [`DiskCache::open`] recovery scan
//! sweeps (diagnostic [`codes::SERVE_ORPHAN_TEMP`]).
//!
//! **Self-verification.** Every snapshot embeds a format version, its own
//! content-hash key, and an FNV-1a checksum of the payload. A read (and
//! the recovery scan) re-derives all three; any mismatch — truncation,
//! bit flips, cross-linked files, stale formats — moves the file to
//! `quarantine/` with a typed diagnostic and the caller transparently
//! recomputes. Corruption is *never* served and *never* panics.
//!
//! **Degradation.** Transient I/O errors are retried with exponential
//! backoff ([`RETRY_BACKOFF_MS`]); exhausted retries degrade the operation
//! to a cache miss (reads) or a skipped persist (writes) with diagnostic
//! [`codes::SERVE_CACHE_DEGRADED`] — the disk tier is an accelerator, not
//! a dependency, and a dead disk merely makes the server slower.

use crate::codes;
use crate::faults::{FaultHook, PersistFault, ReadFault};
use serde::Value;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Snapshot format version; bumped on any incompatible layout change.
/// Snapshots from other versions are quarantined, never reinterpreted.
pub const FORMAT_VERSION: u64 = 1;

/// Number of shard directories.
pub const SHARD_COUNT: u64 = 8;

/// Per-attempt backoff before retrying a failed cache I/O operation.
/// Three attempts total: immediate, then these two sleeps.
pub const RETRY_BACKOFF_MS: [u64; 2] = [1, 4];

/// 64-bit FNV-1a. Used for both content-hash keys and payload checksums —
/// not cryptographic, which is fine: the threat model is corruption
/// (torn writes, bit rot), not adversarial collision crafting, and the
/// semantic re-verification layer ([`codes::SERVE_PAYLOAD_REVERIFY`])
/// backstops the rest.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A typed serve-tier diagnostic: stable code plus context. The engine
/// accumulates these; `stats` requests and the fault harness read them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeDiag {
    /// Stable `MMIO-Fxxx` code.
    pub code: &'static str,
    /// Free-form context (file path, key, operation).
    pub detail: String,
}

impl std::fmt::Display for ServeDiag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.detail)
    }
}

/// The identity of one cacheable response: operation kind, algorithm,
/// depth parameter (the `(algo, k)` sharding axes), and the remaining
/// request parameters canonicalized into `extra`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheKey {
    /// Operation kind (`certify`, `analyze`, `sweep`, `routing_cert`).
    pub kind: &'static str,
    /// Registry algorithm name.
    pub algo: String,
    /// Depth parameter (`r`, or `k` for routing certificates).
    pub k: u32,
    /// Canonical rendering of every other request parameter.
    pub extra: String,
}

impl CacheKey {
    /// The shard this key lives in: `fnv64(algo, k) % SHARD_COUNT`, so one
    /// `(algo, k)` class always hits one shard directory.
    pub fn shard(&self) -> u64 {
        fnv64(format!("{}\u{1f}{}", self.algo, self.k).as_bytes()) % SHARD_COUNT
    }

    /// The content-hash key: FNV-1a over every identifying field plus the
    /// format version, so a format bump invalidates the whole tier.
    pub fn content_hash(&self) -> u64 {
        fnv64(
            format!(
                "v{FORMAT_VERSION}\u{1f}{}\u{1f}{}\u{1f}{}\u{1f}{}",
                self.kind, self.algo, self.k, self.extra
            )
            .as_bytes(),
        )
    }

    /// The snapshot's final filename.
    pub fn file_name(&self) -> String {
        format!("{}__{:016x}.json", self.kind, self.content_hash())
    }
}

/// Counters the cache exposes (monotonic; read by `stats` requests).
#[derive(Debug, Default)]
pub struct CacheCounters {
    /// Successful snapshot reads.
    pub hits: AtomicU64,
    /// Lookups that found no (valid) snapshot.
    pub misses: AtomicU64,
    /// Snapshots quarantined (recovery scan + read-time detection).
    pub quarantined: AtomicU64,
    /// I/O attempts that were retried.
    pub retries: AtomicU64,
    /// Operations that exhausted retries and degraded.
    pub degraded: AtomicU64,
}

/// The result of opening a cache directory: the cache plus the recovery
/// scan's findings.
pub struct RecoveryReport {
    /// Valid snapshots found.
    pub valid: usize,
    /// Snapshots quarantined, with the diagnostic each one triggered.
    pub quarantined: Vec<ServeDiag>,
    /// Orphaned temp files swept.
    pub orphans_swept: usize,
}

/// The sharded disk tier. All methods are `&self` and thread-safe; one
/// instance is shared by every worker.
pub struct DiskCache {
    root: PathBuf,
    hook: std::sync::Arc<dyn FaultHook>,
    /// Monotonic temp-file disambiguator (concurrent writers of the same
    /// key never collide on a temp name).
    temp_nonce: AtomicU64,
    /// Runtime diagnostics (recovery-scan findings are returned from
    /// `open` instead, so tests can assert them exactly).
    diags: Mutex<Vec<ServeDiag>>,
    /// Counters.
    pub counters: CacheCounters,
}

impl DiskCache {
    /// Opens (creating if needed) the cache rooted at `root` and runs the
    /// recovery scan: every snapshot is fully validated — parse, format
    /// version, key, checksum — and invalid ones are moved to
    /// `quarantine/`; orphaned `.tmp-` files are deleted. The scan's
    /// findings come back in the [`RecoveryReport`]; the returned cache
    /// contains only snapshots that were valid at open time.
    pub fn open(
        root: impl Into<PathBuf>,
        hook: std::sync::Arc<dyn FaultHook>,
    ) -> std::io::Result<(DiskCache, RecoveryReport)> {
        let root = root.into();
        for s in 0..SHARD_COUNT {
            std::fs::create_dir_all(root.join(format!("shard{s:02}")))?;
        }
        std::fs::create_dir_all(root.join("quarantine"))?;
        let cache = DiskCache {
            root,
            hook,
            temp_nonce: AtomicU64::new(0),
            diags: Mutex::new(Vec::new()),
            counters: CacheCounters::default(),
        };
        let report = cache.recovery_scan()?;
        Ok((cache, report))
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Drains the diagnostics accumulated since the last call.
    pub fn take_diags(&self) -> Vec<ServeDiag> {
        std::mem::take(
            &mut *self
                .diags
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    fn push_diag(&self, code: &'static str, detail: String) {
        self.diags
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(ServeDiag { code, detail });
    }

    /// Validates every snapshot on disk, quarantining failures and
    /// sweeping orphaned temp files.
    fn recovery_scan(&self) -> std::io::Result<RecoveryReport> {
        let mut report = RecoveryReport {
            valid: 0,
            quarantined: Vec::new(),
            orphans_swept: 0,
        };
        for s in 0..SHARD_COUNT {
            let dir = self.root.join(format!("shard{s:02}"));
            let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .collect();
            entries.sort();
            for path in entries {
                let name = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or_default()
                    .to_string();
                if name.starts_with(".tmp-") {
                    // An interrupted persist. The entry it belonged to was
                    // never published, so deleting the temp loses nothing.
                    let _ = std::fs::remove_file(&path);
                    self.push_diag(
                        codes::SERVE_ORPHAN_TEMP,
                        format!("swept {} (interrupted persist)", path.display()),
                    );
                    report.orphans_swept += 1;
                    continue;
                }
                match validate_snapshot_file(&path) {
                    Ok(_) => report.valid += 1,
                    Err(diag) => {
                        self.quarantine(&path, &diag);
                        report.quarantined.push(diag);
                    }
                }
            }
        }
        Ok(report)
    }

    /// Moves a failed snapshot into `quarantine/`, recording `diag`.
    /// Renames stay within one filesystem, so this cannot itself tear.
    fn quarantine(&self, path: &Path, diag: &ServeDiag) {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("unnamed");
        let dest = self.root.join("quarantine").join(name);
        // Best effort: if even the rename fails, fall back to deletion so
        // the corrupt file can never be read as an entry again.
        if std::fs::rename(path, &dest).is_err() {
            let _ = std::fs::remove_file(path);
        }
        self.counters.quarantined.fetch_add(1, Ordering::Relaxed);
        self.push_diag(diag.code, diag.detail.clone());
    }

    /// Looks up `key`, fully re-validating the snapshot (version, key,
    /// checksum). Returns the payload on a clean hit. Any corruption is
    /// quarantined (typed diagnostic, counted) and reported as a miss;
    /// transient read errors are retried with backoff and degrade to a
    /// miss. Never panics, never serves a corrupt payload.
    pub fn get(&self, key: &CacheKey) -> Option<String> {
        let path = self.entry_path(key);
        let hash = key.content_hash();
        let mut attempt = 0usize;
        let text = loop {
            let injected = self.hook.read_fault(key.kind, hash);
            let result = if injected == ReadFault::TransientError {
                Err(std::io::Error::other("injected transient read error"))
            } else {
                match std::fs::read_to_string(&path) {
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                        self.counters.misses.fetch_add(1, Ordering::Relaxed);
                        return None;
                    }
                    other => other,
                }
            };
            match result {
                Ok(text) => break text,
                Err(e) => {
                    if attempt < RETRY_BACKOFF_MS.len() {
                        self.counters.retries.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(Duration::from_millis(RETRY_BACKOFF_MS[attempt]));
                        attempt += 1;
                    } else {
                        self.counters.degraded.fetch_add(1, Ordering::Relaxed);
                        self.counters.misses.fetch_add(1, Ordering::Relaxed);
                        self.push_diag(
                            codes::SERVE_CACHE_DEGRADED,
                            format!("read {}: {e}; serving recompute", path.display()),
                        );
                        return None;
                    }
                }
            }
        };
        match validate_snapshot_text(&text, Some(key)) {
            Ok(payload) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            Err(mut diag) => {
                diag.detail = format!("{} ({})", diag.detail, path.display());
                self.quarantine(&path, &diag);
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Quarantines the *current* snapshot for `key` with `code` — used by
    /// the engine when a payload passes the checksum but fails semantic
    /// re-verification (the snapshot is well-formed yet wrong).
    pub fn quarantine_key(&self, key: &CacheKey, code: &'static str, detail: String) {
        let path = self.entry_path(key);
        self.quarantine(&path, &ServeDiag { code, detail });
    }

    /// Persists `payload` under `key`: temp write → sync → atomic rename.
    /// Transient errors retry with backoff; exhausted retries degrade (the
    /// payload is simply not cached — diagnostic, not failure). The
    /// injected fault hook can tear the temp write, skip the rename, or
    /// abort the process mid-write (see [`crate::faults`]).
    pub fn put(&self, key: &CacheKey, payload: &str) {
        let entry = snapshot_text(key, payload);
        let hash = key.content_hash();
        let final_path = self.entry_path(key);
        let mut attempt = 0usize;
        loop {
            match self.try_persist(key, &entry, &final_path, hash) {
                Ok(()) => return,
                Err(e) => {
                    if attempt < RETRY_BACKOFF_MS.len() {
                        self.counters.retries.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(Duration::from_millis(RETRY_BACKOFF_MS[attempt]));
                        attempt += 1;
                    } else {
                        self.counters.degraded.fetch_add(1, Ordering::Relaxed);
                        self.push_diag(
                            codes::SERVE_CACHE_DEGRADED,
                            format!("persist {}: {e}; entry not cached", final_path.display()),
                        );
                        return;
                    }
                }
            }
        }
    }

    /// One persist attempt, with fault injection.
    fn try_persist(
        &self,
        key: &CacheKey,
        entry: &str,
        final_path: &Path,
        hash: u64,
    ) -> std::io::Result<()> {
        let fault = self.hook.persist_fault(key.kind, hash);
        if fault == PersistFault::TransientError {
            return Err(std::io::Error::other("injected transient persist error"));
        }
        let nonce = self.temp_nonce.fetch_add(1, Ordering::Relaxed);
        let tmp = final_path
            .parent()
            .expect("entry path has a shard parent")
            .join(format!(".tmp-{hash:016x}-{nonce}"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            let bytes = entry.as_bytes();
            match fault {
                PersistFault::TornTemp { keep_bytes } => {
                    // The torn write: part of the entry reaches disk, the
                    // rename never happens, and the writer believes it
                    // succeeded. Recovery must sweep the orphan.
                    f.write_all(&bytes[..keep_bytes.min(bytes.len())])?;
                    return Ok(());
                }
                PersistFault::AbortProcess { keep_bytes } => {
                    let _ = f.write_all(&bytes[..keep_bytes.min(bytes.len())]);
                    let _ = f.sync_all();
                    // Kill-mid-persist: no unwinding, no destructors — the
                    // closest in-process stand-in for SIGKILL.
                    std::process::abort();
                }
                _ => f.write_all(bytes)?,
            }
            f.sync_all()?;
        }
        if fault == PersistFault::SkipRename {
            // Crash between write and publish: full temp, no final file.
            return Ok(());
        }
        std::fs::rename(&tmp, final_path)
    }

    fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.root
            .join(format!("shard{:02}", key.shard()))
            .join(key.file_name())
    }
}

/// Serializes a snapshot: version, identity, checksum, payload.
fn snapshot_text(key: &CacheKey, payload: &str) -> String {
    let v = Value::Object(vec![
        ("format_version".to_string(), Value::UInt(FORMAT_VERSION)),
        ("kind".to_string(), Value::Str(key.kind.to_string())),
        ("algo".to_string(), Value::Str(key.algo.clone())),
        ("k".to_string(), Value::UInt(u64::from(key.k))),
        ("extra".to_string(), Value::Str(key.extra.clone())),
        (
            "key".to_string(),
            Value::Str(format!("{:016x}", key.content_hash())),
        ),
        (
            "checksum".to_string(),
            Value::Str(format!("{:016x}", fnv64(payload.as_bytes()))),
        ),
        ("payload".to_string(), Value::Str(payload.to_string())),
    ]);
    serde_json::to_string(&v).expect("snapshot serializes")
}

/// Validates snapshot text; `expect_key` additionally pins the identity
/// (a `get` knows which key it asked for; the recovery scan re-derives it
/// from the embedded fields instead). Returns the payload.
fn validate_snapshot_text(text: &str, expect_key: Option<&CacheKey>) -> Result<String, ServeDiag> {
    let unparseable = |detail: String| ServeDiag {
        code: codes::SERVE_SNAPSHOT_UNPARSEABLE,
        detail,
    };
    let v: Value = serde_json::from_str(text)
        .map_err(|e| unparseable(format!("snapshot is not valid JSON: {e}")))?;
    let version = match v.get("format_version") {
        Some(&Value::UInt(u)) => u,
        Some(&Value::Int(i)) if i >= 0 => i as u64,
        _ => {
            return Err(ServeDiag {
                code: codes::SERVE_SNAPSHOT_VERSION,
                detail: "snapshot has no format_version".to_string(),
            })
        }
    };
    if version != FORMAT_VERSION {
        return Err(ServeDiag {
            code: codes::SERVE_SNAPSHOT_VERSION,
            detail: format!("snapshot format v{version}, this build reads v{FORMAT_VERSION}"),
        });
    }
    let field = |name: &str| -> Result<String, ServeDiag> {
        match v.get(name) {
            Some(Value::Str(s)) => Ok(s.clone()),
            _ => Err(unparseable(format!(
                "snapshot missing string field {name:?}"
            ))),
        }
    };
    let kind = field("kind")?;
    let algo = field("algo")?;
    let extra = field("extra")?;
    let k = match v.get("k") {
        Some(&Value::UInt(u)) => u32::try_from(u).ok(),
        Some(&Value::Int(i)) => u32::try_from(i).ok(),
        _ => None,
    }
    .ok_or_else(|| unparseable("snapshot field \"k\" is not a u32".to_string()))?;
    let claimed_key = field("key")?;
    let checksum = field("checksum")?;
    let payload = field("payload")?;

    // Re-derive the content hash from the embedded identity; the `kind`
    // must be one the engine actually caches for the key to be meaningful.
    let rebuilt = CacheKey {
        kind: match kind.as_str() {
            "certify" => "certify",
            "analyze" => "analyze",
            "sweep" => "sweep",
            "routing_cert" => "routing_cert",
            other => {
                return Err(unparseable(format!(
                    "snapshot kind {other:?} is not cacheable"
                )));
            }
        },
        algo,
        k,
        extra,
    };
    if let Some(expect) = expect_key {
        if *expect != rebuilt {
            return Err(ServeDiag {
                code: codes::SERVE_SNAPSHOT_KEY,
                detail: format!(
                    "snapshot identity ({} {} k={}) is not the requested ({} {} k={})",
                    rebuilt.kind, rebuilt.algo, rebuilt.k, expect.kind, expect.algo, expect.k
                ),
            });
        }
    }
    let derived = format!("{:016x}", rebuilt.content_hash());
    if claimed_key != derived {
        return Err(ServeDiag {
            code: codes::SERVE_SNAPSHOT_KEY,
            detail: format!("snapshot key {claimed_key} ≠ derived {derived}"),
        });
    }
    let actual = format!("{:016x}", fnv64(payload.as_bytes()));
    if checksum != actual {
        return Err(ServeDiag {
            code: codes::SERVE_SNAPSHOT_CHECKSUM,
            detail: format!("payload checksum {actual} ≠ recorded {checksum}"),
        });
    }
    Ok(payload)
}

/// Validates one snapshot file (recovery scan). The filename's embedded
/// key must also match the content — a cross-linked file (right content,
/// wrong name) would otherwise shadow a different entry forever.
fn validate_snapshot_file(path: &Path) -> Result<String, ServeDiag> {
    let text = std::fs::read_to_string(path).map_err(|e| ServeDiag {
        code: codes::SERVE_SNAPSHOT_UNPARSEABLE,
        detail: format!("read {}: {e}", path.display()),
    })?;
    let payload = validate_snapshot_text(&text, None).map_err(|mut d| {
        d.detail = format!("{} ({})", d.detail, path.display());
        d
    })?;
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or_default();
    let v: Value = serde_json::from_str(&text).expect("validated above");
    let claimed = match v.get("key") {
        Some(Value::Str(s)) => s.clone(),
        _ => unreachable!("validated above"),
    };
    let expected_suffix = format!("__{claimed}.json");
    if !name.ends_with(&expected_suffix) {
        return Err(ServeDiag {
            code: codes::SERVE_SNAPSHOT_KEY,
            detail: format!(
                "filename {name} does not carry key {claimed} ({})",
                path.display()
            ),
        });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{NoFaults, ScriptedFaults};
    use std::sync::Arc;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mmio_serve_cache_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn key(algo: &str, k: u32) -> CacheKey {
        CacheKey {
            kind: "certify",
            algo: algo.to_string(),
            k,
            extra: "m=64".to_string(),
        }
    }

    #[test]
    fn put_get_roundtrip_and_restart() {
        let dir = tmpdir("roundtrip");
        let (cache, rep) = DiskCache::open(&dir, Arc::new(NoFaults)).unwrap();
        assert_eq!(rep.valid, 0);
        assert!(cache.get(&key("strassen", 2)).is_none());
        cache.put(&key("strassen", 2), "payload-a\n");
        assert_eq!(
            cache.get(&key("strassen", 2)).as_deref(),
            Some("payload-a\n")
        );
        // A different key misses.
        assert!(cache.get(&key("strassen", 3)).is_none());
        // Restart: a fresh cache over the same dir sees the snapshot.
        let (cache2, rep2) = DiskCache::open(&dir, Arc::new(NoFaults)).unwrap();
        assert_eq!(rep2.valid, 1);
        assert!(rep2.quarantined.is_empty());
        assert_eq!(
            cache2.get(&key("strassen", 2)).as_deref(),
            Some("payload-a\n")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_is_quarantined_not_served() {
        let dir = tmpdir("bitflip");
        let (cache, _) = DiskCache::open(&dir, Arc::new(NoFaults)).unwrap();
        let k = key("winograd", 2);
        cache.put(&k, "the true payload");
        // Flip a byte inside the payload region of the snapshot on disk.
        let path = cache.entry_path(&k);
        let mut bytes = std::fs::read(&path).unwrap();
        let text = String::from_utf8(bytes.clone()).unwrap();
        let i = text.find("true").unwrap();
        bytes[i] = b'x';
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(cache.get(&k), None, "corrupt snapshot must not be served");
        let diags = cache.take_diags();
        assert!(
            diags
                .iter()
                .any(|d| d.code == codes::SERVE_SNAPSHOT_CHECKSUM),
            "{diags:?}"
        );
        assert!(
            !path.exists(),
            "corrupt file must be moved out of the shard"
        );
        assert!(
            dir.join("quarantine").join(k.file_name()).exists(),
            "quarantined file preserved for autopsy"
        );
        // The slot now recomputes and re-persists cleanly.
        cache.put(&k, "the true payload");
        assert_eq!(cache.get(&k).as_deref(), Some("the true payload"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_temp_is_invisible_and_swept_on_restart() {
        let dir = tmpdir("torn");
        let hook = Arc::new(
            ScriptedFaults::new().script_persists([PersistFault::TornTemp { keep_bytes: 10 }]),
        );
        let (cache, _) = DiskCache::open(&dir, hook).unwrap();
        let k = key("strassen", 1);
        cache.put(&k, "payload");
        // The torn write published nothing.
        assert_eq!(cache.get(&k), None);
        // …but left an orphaned temp that the next open sweeps.
        let (_, rep) = DiskCache::open(&dir, Arc::new(NoFaults)).unwrap();
        assert_eq!(rep.orphans_swept, 1);
        assert_eq!(rep.valid, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_errors_retry_then_degrade() {
        let dir = tmpdir("transient");
        // Two transient failures then success: the retry loop absorbs them.
        let hook = Arc::new(
            ScriptedFaults::new()
                .script_persists([PersistFault::TransientError, PersistFault::TransientError]),
        );
        let (cache, _) = DiskCache::open(&dir, hook).unwrap();
        let k = key("laderman", 1);
        cache.put(&k, "v");
        assert_eq!(cache.get(&k).as_deref(), Some("v"), "retries must succeed");
        assert_eq!(cache.counters.retries.load(Ordering::Relaxed), 2);
        assert_eq!(cache.counters.degraded.load(Ordering::Relaxed), 0);

        // Three in a row exhaust the attempts: degrade, don't cache, don't fail.
        let hook = Arc::new(ScriptedFaults::new().script_persists([
            PersistFault::TransientError,
            PersistFault::TransientError,
            PersistFault::TransientError,
        ]));
        let (cache, _) = DiskCache::open(tmpdir("transient2"), hook).unwrap();
        cache.put(&k, "v");
        assert_eq!(cache.counters.degraded.load(Ordering::Relaxed), 1);
        let diags = cache.take_diags();
        assert!(
            diags.iter().any(|d| d.code == codes::SERVE_CACHE_DEGRADED),
            "{diags:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharding_is_stable_and_within_bounds() {
        for (algo, k) in [("strassen", 1), ("winograd", 7), ("laderman", 0)] {
            let a = key(algo, k).shard();
            let b = key(algo, k).shard();
            assert_eq!(a, b);
            assert!(a < SHARD_COUNT);
        }
        // extra does not move the shard (sharding is by (algo, k) only).
        let mut k1 = key("strassen", 2);
        k1.extra = "m=128".to_string();
        assert_eq!(k1.shard(), key("strassen", 2).shard());
        // …but it does change the content hash.
        assert_ne!(k1.content_hash(), key("strassen", 2).content_hash());
    }
}
