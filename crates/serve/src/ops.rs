//! The operations the server executes, factored so the **batch CLI and
//! the serve tier render through the same functions** — byte-identical
//! responses are a structural property, not a test-enforced coincidence.
//!
//! `mmio certify` prints [`certify_text`]; a serve `certify` response *is*
//! [`certify_text`]. `mmio analyze <algo> <r> --json` prints
//! [`analyze_json`]; a serve `analyze` response *is* [`analyze_json`].
//! The fault harness and `exp_perf_serve` then enforce the equality
//! end-to-end (cold, warm, restarted, at 1/2/8 threads), which pins the
//! cache layer too: a snapshot that survived a crash must still replay
//! the exact batch bytes.
//!
//! The view policy (`--view explicit|implicit|auto`) lives here for the
//! same reason: the server must pick the same `G_r` representation the
//! CLI would, or outputs could diverge at the auto threshold.

use mmio_algos::registry::all_base_graphs;
use mmio_cdag::build::build_cdag;
use mmio_cdag::view::count_vertices;
use mmio_cdag::{BaseGraph, IndexView};
use mmio_core::theorem1::{certify_pooled, certify_pooled_view, CertifyParams};
use mmio_core::theorem2::InOutRouting;
use mmio_core::transport::RoutingClass;
use mmio_parallel::Pool;
use mmio_pebble::orders::recursive_order;
use mmio_pebble::policy::Belady;
use mmio_pebble::sweep::{sweep, PolicySpec};
use mmio_pebble::AutoScheduler;

/// Which `G_r` representation the engines run on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ViewMode {
    /// Materialize the full graph (`build_cdag`).
    Explicit,
    /// Run on the closed-form [`IndexView`] — memory independent of `b^r`.
    Implicit,
    /// Explicit below [`AUTO_VERTEX_BUDGET`] vertices, implicit above.
    Auto,
}

/// The `auto` policy's switch-over point: `G_r` with more vertices than
/// this runs implicit. 2²² (≈4.2M) keeps every default-depth workload on
/// the explicit path (byte-identical output to previous releases) while
/// routing `r ≥ 8` Strassen-scale graphs to the implicit one.
pub const AUTO_VERTEX_BUDGET: u64 = 1 << 22;

/// Resolves the view policy for one `(base, r)` workload. `auto` compares
/// the closed-form vertex count against [`AUTO_VERTEX_BUDGET`] (overflow
/// counts as "too big").
pub fn use_implicit(mode: ViewMode, base: &BaseGraph, r: u32) -> bool {
    // The degenerate G_0 (n = 1) has no closed-form view (`IndexView`
    // requires r ≥ 1); its explicit graph is a handful of vertices.
    if r == 0 {
        return false;
    }
    match mode {
        ViewMode::Explicit => false,
        ViewMode::Implicit => true,
        ViewMode::Auto => match count_vertices(base.a() as u64, base.b() as u64, r) {
            Some(n) => n > AUTO_VERTEX_BUDGET,
            None => true,
        },
    }
}

/// Looks up a *registry* algorithm by name. The serve tier resolves
/// through this only — a network request never names a filesystem path.
pub fn resolve_registry(name: &str) -> Option<BaseGraph> {
    all_base_graphs().into_iter().find(|g| g.name() == name)
}

/// The exact text `mmio certify <algo> <r> <M>` prints (two lines,
/// trailing newline included).
pub fn certify_text(base: &BaseGraph, r: u32, m: u64, view: ViewMode, pool: &Pool) -> String {
    let cert = if use_implicit(view, base, r) {
        let v = IndexView::from_base(base, r);
        let order = recursive_order(&v);
        certify_pooled_view(base, &v, m, &order, CertifyParams::SMALL, pool)
    } else {
        let g = build_cdag(base, r);
        let order = recursive_order(&g);
        certify_pooled(&g, m, &order, CertifyParams::SMALL, pool)
    };
    format!(
        "n = {}, M = {m}: {} complete segments, certified I/O ≥ {}\n\
         (k = {}, feasible = {}, disjoint subcomputations = {} ≥ target {})\n",
        cert.n,
        cert.analysis.complete_segments,
        cert.analysis.certified_io,
        cert.k,
        cert.k_feasible,
        cert.disjoint_subcomputations,
        cert.lemma1_target
    )
}

/// One target of `mmio analyze`: an algorithm analyzed at recursion depth
/// `r`, with the schedule and routing audits run at (possibly capped)
/// depths chosen to keep path enumeration tractable.
pub fn analyze_target(base: &BaseGraph, r: u32) -> (mmio_analyze::Report, serde_json::Value) {
    let mut report = mmio_analyze::analyze_base_at(base, r);

    // Schedule legality: audit an auto-generated recursive schedule.
    let sched_r = if base.b() > 30 { r.min(2) } else { r };
    let g = build_cdag(base, sched_r);
    let m = (3 * base.a()).max(8);
    let order = recursive_order(&g);
    let (_, sched) = AutoScheduler::new(&g, m).run_recorded(&order, &mut Belady);
    let audit = mmio_analyze::audit_schedule(&g, &sched, m, &mut report);

    // Routing certificate: enumerate the Theorem 2 paths explicitly and
    // re-verify them. Path count is 2a^{2k}, so cap k for wide encoders.
    let routing_k = r.min(if base.a() >= 16 { 1 } else { 2 });
    let gk = build_cdag(base, routing_k);
    let routing_audit = match InOutRouting::new(&gk) {
        None => {
            mmio_analyze::report_routing_infeasible(&mut report);
            None
        }
        Some(routing) => {
            // Audit straight from the flat path arena (same enumeration
            // order as the old explicit Vec<Vec<_>> certificate, without
            // one heap block per path).
            let arena = routing.collect_paths();
            Some((
                mmio_analyze::audit_routing_paths(
                    &gk,
                    routing.theorem2_bound(),
                    Some(routing.n_paths()),
                    arena.iter(),
                    &mut report,
                ),
                routing.theorem2_bound(),
            ))
        }
    };

    let mut summary = vec![
        (
            "algorithm".to_string(),
            serde::Value::Str(base.name().to_string()),
        ),
        ("r".to_string(), serde::Value::Int(i64::from(r))),
        (
            "schedule_io".to_string(),
            serde::Value::Int(audit.io() as i64),
        ),
        (
            "schedule_peak_occupancy".to_string(),
            serde::Value::Int(audit.peak_occupancy as i64),
        ),
    ];
    if let Some((ra, bound)) = routing_audit {
        summary.push((
            "routing_paths".to_string(),
            serde::Value::Int(ra.paths as i64),
        ));
        summary.push((
            "routing_max_hits".to_string(),
            serde::Value::Int(ra.max_vertex_hits.max(ra.max_meta_hits) as i64),
        ));
        summary.push(("routing_bound".to_string(), serde::Value::Int(bound as i64)));
    }
    summary.push(("report".to_string(), serde::Serialize::to_value(&report)));
    (report, serde::Value::Object(summary))
}

/// The exact text `mmio analyze <algo> <r> --json` prints (a pretty JSON
/// array of one summary, trailing newline included), plus the analysis's
/// error count (the CLI's exit status input).
pub fn analyze_json(base: &BaseGraph, r: u32) -> (String, usize) {
    let (report, summary) = analyze_target(base, r);
    let text = format!(
        "{}\n",
        serde_json::to_string_pretty(&serde::Value::Array(vec![summary])).expect("serializable")
    );
    (text, report.error_count())
}

/// An LRU sweep of the auto-scheduler over the `ms` grid at depth `r`,
/// rendered as pretty JSON (one object per grid point, grid order,
/// trailing newline). Infeasible points carry their typed `SweepError`
/// in-band — a serve request for a too-small `M` is an answer, not a
/// failure.
pub fn sweep_json(base: &BaseGraph, r: u32, ms: &[usize], pool: &Pool) -> String {
    let g = build_cdag(base, r);
    let order = recursive_order(&g);
    let points = sweep(&g, &[&order], &[PolicySpec::Lru], ms, pool);
    format!(
        "{}\n",
        serde_json::to_string_pretty(&serde::Serialize::to_value(&points)).expect("serializable")
    )
}

/// The routing certificate JSON `mmio cert emit` writes for `(algo, k)`
/// transported into `G_r` (trailing newline not added — `Certificate::
/// to_json` is the on-disk format already). `None` when the base graph
/// admits no `n₀`-capacity Hall matching.
pub fn routing_cert_json(base: &BaseGraph, k: u32, r: u32, pool: &Pool) -> Option<String> {
    let class = RoutingClass::build(base, k, pool)?;
    Some(mmio_core::transport::emit_certificate(&class, r).to_json())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_algos::strassen::strassen;

    #[test]
    fn registry_resolution_is_name_exact() {
        assert!(resolve_registry("strassen").is_some());
        assert!(resolve_registry("strassen ").is_none());
        assert!(resolve_registry("no-such-algo").is_none());
        assert!(resolve_registry("../../etc/passwd").is_none());
    }

    #[test]
    fn certify_text_is_thread_count_invariant() {
        let base = strassen();
        let serial = certify_text(&base, 2, 49, ViewMode::Auto, &Pool::serial());
        assert!(serial.starts_with("n = "), "{serial}");
        assert!(serial.ends_with('\n'));
        for threads in [2, 8] {
            let par = certify_text(&base, 2, 49, ViewMode::Auto, &Pool::new(threads));
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn sweep_json_reports_infeasible_points_in_band() {
        let base = strassen();
        let text = sweep_json(&base, 1, &[2, 64], &Pool::serial());
        assert!(text.contains("cache_too_small"), "{text}");
        assert!(text.contains("stats") || text.contains("loads"), "{text}");
    }

    #[test]
    fn routing_cert_json_verifies_standalone() {
        let base = strassen();
        let json = routing_cert_json(&base, 1, 2, &Pool::serial()).unwrap();
        let verdict = mmio_cert::verify_json(&json);
        assert!(verdict.accepted, "{verdict:?}");
    }
}
