//! The certification engine: a bounded job queue in front of panic-isolated
//! workers, with the sharded disk memo tier in the hot path.
//!
//! One request flows: [`Engine::submit`] → admission (typed
//! [`crate::codes::SERVE_OVERLOADED`] shed when the queue is full) → a
//! worker pops it, checks the memo tier, recomputes on a miss, persists,
//! replies → the submitter, which has been waiting with a deadline,
//! returns the response. Every failure mode along that path — malformed
//! request, panicking job, expired deadline, wedged worker, corrupt or
//! unwritable cache — comes back as a *typed response with a stable
//! `MMIO-Fxxx` code*; the engine itself never panics and never hangs.
//!
//! Cached `routing_cert` payloads get one extra layer beyond the checksum:
//! they are re-verified through the standalone `mmio-cert` verifier before
//! being served ([`crate::codes::SERVE_PAYLOAD_REVERIFY`] quarantine on
//! failure). A snapshot that is well-formed but *wrong* — the checksum
//! matches bytes that never came from this engine — is still never served.

use crate::cache::{CacheKey, DiskCache, RecoveryReport};
use crate::codes;
use crate::faults::FaultHook;
use crate::ops;
use crate::protocol::{Op, Request, Response, Status};
use crate::queue::{JobQueue, JobToken, PushError, WorkerSet};
use mmio_parallel::Pool;
use serde::Value;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Engine tuning knobs.
pub struct EngineConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Bounded queue capacity; pushes beyond it shed with
    /// [`codes::SERVE_OVERLOADED`].
    pub queue_cap: usize,
    /// Hard ceiling on worker spawns (initial + wedge replacements).
    pub max_spawns: usize,
    /// Deadline applied when a request carries none.
    pub default_deadline: Duration,
    /// Memo tier root; `None` runs memo-less (every request recomputes).
    pub cache_dir: Option<PathBuf>,
    /// Threads for the compute pool each job runs on.
    pub pool_threads: usize,
}

impl EngineConfig {
    /// Conservative defaults: 2 workers, queue of 32, serial compute pool,
    /// 30 s deadline, memo-less.
    pub fn small() -> EngineConfig {
        EngineConfig {
            workers: 2,
            queue_cap: 32,
            max_spawns: 8,
            default_deadline: Duration::from_secs(30),
            cache_dir: None,
            pool_threads: 1,
        }
    }
}

/// One queued job: the parsed request plus the submitter's reply channel
/// and the shared lifecycle token.
struct Job {
    req: Request,
    token: Arc<JobToken>,
    reply: mpsc::Sender<Response>,
}

/// Monotonic engine counters, surfaced by `stats` requests.
#[derive(Debug, Default)]
pub struct EngineCounters {
    /// Requests admitted and completed with any status.
    pub completed: AtomicU64,
    /// Requests shed because the queue was full.
    pub shed: AtomicU64,
    /// Jobs that panicked (isolated, typed response).
    pub panics: AtomicU64,
    /// Requests whose deadline expired.
    pub deadlines: AtomicU64,
    /// Cached payloads that failed semantic re-verification.
    pub reverify_failures: AtomicU64,
}

/// The engine. All methods are `&self`; one instance serves every
/// connection.
pub struct Engine {
    queue: Arc<JobQueue<Job>>,
    workers: WorkerSet<Job>,
    shared: Arc<Shared>,
    default_deadline: Duration,
}

/// State shared between the submitter side and the worker side.
struct Shared {
    cache: Option<DiskCache>,
    pool: Pool,
    hook: Arc<dyn FaultHook>,
    counters: EngineCounters,
}

impl Engine {
    /// Starts the engine: opens (and recovery-scans) the memo tier if
    /// configured, then spawns the workers. The [`RecoveryReport`] is
    /// empty when running memo-less.
    pub fn start(
        cfg: EngineConfig,
        hook: Arc<dyn FaultHook>,
    ) -> std::io::Result<(Engine, RecoveryReport)> {
        let (cache, report) = match &cfg.cache_dir {
            Some(dir) => {
                let (c, r) = DiskCache::open(dir.clone(), Arc::clone(&hook))?;
                (Some(c), r)
            }
            None => (
                None,
                RecoveryReport {
                    valid: 0,
                    quarantined: Vec::new(),
                    orphans_swept: 0,
                },
            ),
        };
        let shared = Arc::new(Shared {
            cache,
            pool: Pool::new(cfg.pool_threads),
            hook,
            counters: EngineCounters::default(),
        });
        let queue = Arc::new(JobQueue::new(cfg.queue_cap));
        let worker_shared = Arc::clone(&shared);
        let workers = WorkerSet::start(
            Arc::clone(&queue),
            cfg.workers,
            cfg.max_spawns,
            move |job: Job| run_job(&worker_shared, job),
        );
        Ok((
            Engine {
                queue,
                workers,
                shared,
                default_deadline: cfg.default_deadline,
            },
            report,
        ))
    }

    /// Handles one raw request line end-to-end: parse, admit, wait.
    /// Always returns exactly one response — the NDJSON contract.
    pub fn handle_line(&self, line: &str) -> Response {
        match Request::from_line(line) {
            Ok(req) => self.submit(req),
            Err(e) => Response::fail(
                0,
                Status::BadRequest,
                codes::SERVE_BAD_REQUEST,
                e.to_string(),
            ),
        }
    }

    /// Submits a parsed request and waits (bounded by its deadline) for
    /// the response.
    pub fn submit(&self, req: Request) -> Response {
        let id = req.id;
        // Stats is answered inline: it must work even when the queue is
        // saturated — that is precisely when an operator needs it.
        if req.op == Op::Stats {
            return Response::ok(id, false, self.stats_payload());
        }
        let deadline = req
            .deadline_ms
            .map(Duration::from_millis)
            .unwrap_or(self.default_deadline);
        let token = Arc::new(JobToken::default());
        let (tx, rx) = mpsc::channel();
        let job = Job {
            req,
            token: Arc::clone(&token),
            reply: tx,
        };
        if let Err(err) = self.queue.try_push(job) {
            self.shared.counters.shed.fetch_add(1, Ordering::Relaxed);
            let detail = match err {
                PushError::Full(_) => format!("queue full (cap {})", self.queue.cap()),
                PushError::Closed(_) => "server is shutting down".to_string(),
            };
            return Response::fail(id, Status::Overloaded, codes::SERVE_OVERLOADED, detail);
        }
        match rx.recv_timeout(deadline) {
            Ok(resp) => {
                self.shared
                    .counters
                    .completed
                    .fetch_add(1, Ordering::Relaxed);
                resp
            }
            Err(_) => {
                // Deadline expired (or the worker died mid-job, which
                // disconnects the channel — same contract: typed reply).
                token.abandoned.store(true, Ordering::SeqCst);
                self.shared
                    .counters
                    .deadlines
                    .fetch_add(1, Ordering::Relaxed);
                let started = token.started.load(Ordering::SeqCst);
                let done = token.done.load(Ordering::SeqCst);
                let mut detail = format!(
                    "no result within {} ms (job {})",
                    deadline.as_millis(),
                    if !started {
                        "still queued"
                    } else if done {
                        "finished just too late"
                    } else {
                        "wedged"
                    }
                );
                if started && !done && self.workers.replace_wedged() {
                    // Name the replacement's own diagnostic code so log
                    // scrapers can count replacements separately from
                    // plain deadline misses.
                    detail.push_str("; wedged worker replaced (");
                    detail.push_str(codes::SERVE_WORKER_REPLACED);
                    detail.push(')');
                }
                Response::fail(id, Status::DeadlineExceeded, codes::SERVE_DEADLINE, detail)
            }
        }
    }

    /// The `stats` payload: engine + cache counters and drained cache
    /// diagnostics, as pretty JSON.
    fn stats_payload(&self) -> String {
        let c = &self.shared.counters;
        let mut fields = vec![
            (
                "completed".to_string(),
                Value::UInt(c.completed.load(Ordering::Relaxed)),
            ),
            (
                "shed".to_string(),
                Value::UInt(c.shed.load(Ordering::Relaxed)),
            ),
            (
                "panics".to_string(),
                Value::UInt(c.panics.load(Ordering::Relaxed)),
            ),
            (
                "deadlines".to_string(),
                Value::UInt(c.deadlines.load(Ordering::Relaxed)),
            ),
            (
                "reverify_failures".to_string(),
                Value::UInt(c.reverify_failures.load(Ordering::Relaxed)),
            ),
            (
                "workers_live".to_string(),
                Value::UInt(self.workers.live() as u64),
            ),
            (
                "workers_spawned".to_string(),
                Value::UInt(self.workers.total_spawned() as u64),
            ),
            (
                "worker_replacements".to_string(),
                Value::UInt(self.workers.replacements.load(Ordering::Relaxed)),
            ),
            (
                "queue_depth".to_string(),
                Value::UInt(self.queue.len() as u64),
            ),
        ];
        if let Some(cache) = &self.shared.cache {
            let cc = &cache.counters;
            for (name, v) in [
                ("cache_hits", cc.hits.load(Ordering::Relaxed)),
                ("cache_misses", cc.misses.load(Ordering::Relaxed)),
                ("cache_quarantined", cc.quarantined.load(Ordering::Relaxed)),
                ("cache_retries", cc.retries.load(Ordering::Relaxed)),
                ("cache_degraded", cc.degraded.load(Ordering::Relaxed)),
            ] {
                fields.push((name.to_string(), Value::UInt(v)));
            }
            let diags: Vec<Value> = cache
                .take_diags()
                .into_iter()
                .map(|d| {
                    Value::Object(vec![
                        ("code".to_string(), Value::Str(d.code.to_string())),
                        ("detail".to_string(), Value::Str(d.detail)),
                    ])
                })
                .collect();
            fields.push(("cache_diags".to_string(), Value::Array(diags)));
        }
        let body = serde_json::to_string_pretty(&Value::Object(fields)).unwrap_or_else(|e| {
            // Stats are advisory; a render failure degrades to a typed
            // error object rather than panicking the request path.
            format!(
                "{{\"error\":\"stats render failed: {}\"}}",
                e.to_string().replace(['"', '\\'], "?")
            )
        });
        format!("{body}\n")
    }

    /// Engine counters (tests and the harness read these directly).
    pub fn counters(&self) -> &EngineCounters {
        &self.shared.counters
    }

    /// The memo tier, if one is configured.
    pub fn cache(&self) -> Option<&DiskCache> {
        self.shared.cache.as_ref()
    }

    /// Wedge replacements performed so far.
    pub fn worker_replacements(&self) -> u64 {
        self.workers.replacements.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: close the queue (pending jobs still drain) and
    /// wait up to `grace` for workers to exit. Returns whether the set
    /// fully drained — `false` means a wedged worker is still out there
    /// (it holds no locks anyone waits on, so exiting anyway is safe).
    pub fn shutdown(&self, grace: Duration) -> bool {
        self.queue.close();
        let deadline = Instant::now() + grace;
        while self.workers.live() != 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        self.workers.live() == 0
    }
}

/// The cache identity of a cacheable op. `Stats`/`Shutdown` are `None`.
fn cache_key(op: &Op) -> Option<CacheKey> {
    match op {
        Op::Certify { algo, r, m } => Some(CacheKey {
            kind: "certify",
            algo: algo.clone(),
            k: *r,
            extra: format!("m={m}"),
        }),
        Op::Analyze { algo, r } => Some(CacheKey {
            kind: "analyze",
            algo: algo.clone(),
            k: *r,
            extra: String::new(),
        }),
        Op::Sweep { algo, r, ms } => Some(CacheKey {
            kind: "sweep",
            algo: algo.clone(),
            k: *r,
            extra: format!(
                "ms={}",
                ms.iter()
                    .map(|m| m.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        }),
        Op::RoutingCert { algo, k, r } => Some(CacheKey {
            kind: "routing_cert",
            algo: algo.clone(),
            k: *k,
            extra: format!("r={r}"),
        }),
        Op::Stats | Op::Shutdown => None,
    }
}

/// Executes one job on a worker thread. Panic isolation, wedge simulation,
/// memo lookup, recompute, persist, reply — all here.
fn run_job(shared: &Shared, job: Job) {
    // The submitter already gave up: executing would be wasted work and
    // the reply would go nowhere.
    if job.token.abandoned.load(Ordering::SeqCst) {
        return;
    }
    job.token.started.store(true, Ordering::SeqCst);
    // Injected wedge: the fault harness uses this to exercise the
    // deadline + worker-replacement path deterministically.
    if let Some(dur) = shared.hook.wedge(job.req.op.kind()) {
        std::thread::sleep(dur);
    }
    let id = job.req.id;
    let op = job.req.op.clone();
    let inject_panic = shared.hook.panic_job(op.kind());
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if inject_panic {
            panic!("injected job panic ({})", op.kind());
        }
        execute(shared, id, &op)
    }));
    job.token.done.store(true, Ordering::SeqCst);
    let resp = outcome.unwrap_or_else(|payload| {
        shared.counters.panics.fetch_add(1, Ordering::Relaxed);
        let msg = panic_message(payload.as_ref());
        Response::fail(
            id,
            Status::Panicked,
            codes::SERVE_JOB_PANIC,
            format!("job panicked: {msg}"),
        )
    });
    // A disconnected receiver just means the submitter timed out; the
    // typed deadline response already went out.
    let _ = job.reply.send(resp);
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Computes one op, consulting and feeding the memo tier.
fn execute(shared: &Shared, id: u64, op: &Op) -> Response {
    if *op == Op::Shutdown {
        return Response::ok(id, false, "shutting down\n".to_string());
    }
    let key = cache_key(op).expect("stats handled inline, shutdown above");
    if let Some(cache) = &shared.cache {
        if let Some(payload) = cache.get(&key) {
            // Defense in depth for proof-carrying payloads: the checksum
            // says "these bytes are what was written"; the verifier says
            // "these bytes are a valid certificate". Both must hold.
            if key.kind == "routing_cert" && !mmio_cert::verify_json(&payload).accepted {
                shared
                    .counters
                    .reverify_failures
                    .fetch_add(1, Ordering::Relaxed);
                cache.quarantine_key(
                    &key,
                    codes::SERVE_PAYLOAD_REVERIFY,
                    format!(
                        "cached routing certificate for ({}, k={}) failed re-verification",
                        key.algo, key.k
                    ),
                );
            } else {
                return Response::ok(id, true, payload);
            }
        }
    }
    let payload = match compute(shared, op) {
        Ok(p) => p,
        Err(resp) => return respond_err(id, resp),
    };
    if let Some(cache) = &shared.cache {
        cache.put(&key, &payload);
    }
    Response::ok(id, false, payload)
}

/// A typed compute failure: status, code, detail.
struct ComputeError {
    status: Status,
    code: &'static str,
    detail: String,
}

fn respond_err(id: u64, e: ComputeError) -> Response {
    Response::fail(id, e.status, e.code, e.detail)
}

/// Runs the actual operation through [`crate::ops`] — the same functions
/// the batch CLI prints, so payloads are byte-identical by construction.
fn compute(shared: &Shared, op: &Op) -> Result<String, ComputeError> {
    let bad = |detail: String| ComputeError {
        status: Status::BadRequest,
        code: codes::SERVE_BAD_REQUEST,
        detail,
    };
    let resolve = |algo: &str| {
        ops::resolve_registry(algo)
            .ok_or_else(|| bad(format!("unknown algorithm {algo:?} (registry names only)")))
    };
    match op {
        Op::Certify { algo, r, m } => {
            let base = resolve(algo)?;
            Ok(ops::certify_text(
                &base,
                *r,
                *m,
                ops::ViewMode::Auto,
                &shared.pool,
            ))
        }
        Op::Analyze { algo, r } => {
            let base = resolve(algo)?;
            Ok(ops::analyze_json(&base, *r).0)
        }
        Op::Sweep { algo, r, ms } => {
            let base = resolve(algo)?;
            Ok(ops::sweep_json(&base, *r, ms, &shared.pool))
        }
        Op::RoutingCert { algo, k, r } => {
            let base = resolve(algo)?;
            ops::routing_cert_json(&base, *k, *r, &shared.pool).ok_or_else(|| ComputeError {
                status: Status::Error,
                code: codes::SERVE_BAD_REQUEST,
                detail: format!(
                    "{algo} admits no n₀-capacity Hall matching (Routing Theorem hypotheses fail)"
                ),
            })
        }
        Op::Stats | Op::Shutdown => unreachable!("handled before compute"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::NoFaults;

    fn engine(cache_dir: Option<PathBuf>) -> Engine {
        let cfg = EngineConfig {
            cache_dir,
            ..EngineConfig::small()
        };
        Engine::start(cfg, Arc::new(NoFaults)).unwrap().0
    }

    fn certify_req(id: u64) -> Request {
        Request {
            id,
            deadline_ms: None,
            op: Op::Certify {
                algo: "strassen".into(),
                r: 2,
                m: 49,
            },
        }
    }

    #[test]
    fn memoless_engine_serves_batch_identical_payloads() {
        let e = engine(None);
        let resp = e.submit(certify_req(1));
        assert_eq!(resp.status, Status::Ok, "{resp:?}");
        assert!(!resp.cached);
        let expect = ops::certify_text(
            &ops::resolve_registry("strassen").unwrap(),
            2,
            49,
            ops::ViewMode::Auto,
            &Pool::serial(),
        );
        assert_eq!(resp.payload.as_deref(), Some(expect.as_str()));
        assert!(e.shutdown(Duration::from_secs(5)));
    }

    #[test]
    fn warm_hits_are_byte_identical_and_marked_cached() {
        let dir = std::env::temp_dir().join(format!("mmio_engine_warm_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let e = engine(Some(dir.clone()));
        let cold = e.submit(certify_req(1));
        let warm = e.submit(certify_req(2));
        assert_eq!(cold.status, Status::Ok);
        assert_eq!(warm.status, Status::Ok);
        assert!(!cold.cached && warm.cached, "{cold:?} / {warm:?}");
        assert_eq!(cold.payload, warm.payload);
        assert!(e.shutdown(Duration::from_secs(5)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_algorithm_is_bad_request_not_panic() {
        let e = engine(None);
        let resp = e.submit(Request {
            id: 9,
            deadline_ms: None,
            op: Op::Analyze {
                algo: "no-such".into(),
                r: 1,
            },
        });
        assert_eq!(resp.status, Status::BadRequest);
        assert_eq!(resp.code, Some(codes::SERVE_BAD_REQUEST));
        assert!(e.shutdown(Duration::from_secs(5)));
    }

    #[test]
    fn malformed_line_is_typed_bad_request() {
        let e = engine(None);
        let resp = e.handle_line("{\"id\":,}");
        assert_eq!(resp.status, Status::BadRequest);
        assert_eq!(resp.code, Some(codes::SERVE_BAD_REQUEST));
        assert!(e.shutdown(Duration::from_secs(5)));
    }

    #[test]
    fn stats_always_answers_inline() {
        let e = engine(None);
        let resp = e.submit(Request {
            id: 1,
            deadline_ms: Some(1),
            op: Op::Stats,
        });
        assert_eq!(resp.status, Status::Ok);
        assert!(resp.payload.unwrap().contains("\"completed\""));
        assert!(e.shutdown(Duration::from_secs(5)));
    }
}
