//! `mmio-serve` — the fault-tolerant certification service.
//!
//! The batch CLI answers one question per process. This crate keeps the
//! answers: a newline-delimited-JSON service over a Unix socket
//! ([`server`]) in front of a bounded job queue with panic-isolated
//! workers ([`engine`], [`queue`]), backed by a process-wide memo tier
//! sharded by `(algo, k)` with content-hash keys and crash-safe disk
//! persistence ([`cache`]).
//!
//! The contract, in one sentence: **a successful response is byte-identical
//! to the batch CLI at any concurrency, and every failure — malformed
//! request, panicking job, expired deadline, wedged worker, saturated
//! queue, corrupt or dying disk — is a typed response with a stable
//! `MMIO-Fxxx` code, never a hang, never a crash, never a wrong answer.**
//!
//! The first half of the contract is structural: the CLI and the server
//! render through the same [`ops`] functions. The second half is *proved*,
//! not hoped: the deterministic fault-injection layer ([`faults`]) tears
//! writes, flips bits, kills the process mid-persist, wedges workers, and
//! saturates the queue, and the harness in `tests/` plus the
//! `serve_faults` report binary assert zero hangs, zero corrupt responses,
//! and exact diagnostic codes under every one of those insults.
//!
//! Diagnostic codes live in the workspace registry
//! (`mmio-analyze::codes`, the `MMIO-Fxxx` family) and are re-exported
//! from [`codes`].

#![forbid(unsafe_code)]

pub mod cache;
pub mod codes;
pub mod engine;
pub mod faults;
pub mod ops;
pub mod protocol;
pub mod queue;
pub mod server;

pub use cache::{CacheKey, DiskCache, RecoveryReport, ServeDiag};
pub use engine::{Engine, EngineConfig};
pub use faults::{FaultHook, FaultPlan, NoFaults, PersistFault, ReadFault, ScriptedFaults};
pub use protocol::{Op, ParseError, Request, Response, Status};
pub use server::{Client, Server};
