//! Bounded job queue, panic-isolated workers, and the wedge-recovery
//! supervisor.
//!
//! Admission control is explicit: [`JobQueue::try_push`] either enqueues
//! or reports [`PushError::Full`] immediately — a saturated server sheds
//! load with a typed `overloaded` response, it never blocks a connection
//! handler or grows an unbounded backlog.
//!
//! Workers drain the queue in a loop. Every job body runs under
//! `std::panic::catch_unwind`, so a panicking request is returned to its
//! submitter as a typed outcome and the worker survives. A job whose
//! submitter has already given up (deadline expired while queued) is
//! dropped without being executed.
//!
//! The wedge state machine: a submitter whose deadline expires checks the
//! job's [`JobToken`] — if the job *started* but never finished, its
//! worker is presumed wedged and [`WorkerSet::replace_wedged`] spawns a
//! replacement (bounded by [`WorkerSet::max_spawns`], so a pathological
//! workload cannot fork-bomb the host). The wedged worker, whenever it
//! eventually finishes, notices the surplus and retires instead of
//! double-serving. Every transition is counted, surfaced as a
//! [`crate::codes::SERVE_WORKER_REPLACED`] diagnostic, and drilled by the
//! fault harness.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Shared visibility into one job's lifecycle, used for deadline and
/// wedge decisions after the submitter stops waiting.
#[derive(Debug, Default)]
pub struct JobToken {
    /// Set by the worker when it picks the job up.
    pub started: AtomicBool,
    /// Set by the worker when the job body returned (or panicked).
    pub done: AtomicBool,
    /// Set by the submitter when it stops waiting (deadline expired);
    /// a not-yet-started job with this flag is skipped entirely.
    pub abandoned: AtomicBool,
}

/// Why a push was rejected.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the job is handed back.
    Full(T),
    /// The queue is shut down; the job is handed back.
    Closed(T),
}

struct QueueState<T> {
    q: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue: non-blocking bounded push, blocking pop.
pub struct JobQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    cap: usize,
}

impl<T> JobQueue<T> {
    /// A queue admitting at most `cap` pending jobs (`cap ≥ 1`).
    pub fn new(cap: usize) -> JobQueue<T> {
        JobQueue {
            state: Mutex::new(QueueState {
                q: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Pending jobs right now.
    pub fn len(&self) -> usize {
        self.lock().q.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues without blocking, or reports why it cannot.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut st = self.lock();
        if st.closed {
            return Err(PushError::Closed(item));
        }
        if st.q.len() >= self.cap {
            return Err(PushError::Full(item));
        }
        st.q.push_back(item);
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a job is available or the queue closes. `None` means
    /// closed-and-drained: the worker should exit.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.lock();
        loop {
            if let Some(item) = st.q.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: pending jobs still drain, new pushes fail, and
    /// blocked workers wake to exit.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }
}

/// A fixed-target set of worker threads over a [`JobQueue`], with bounded
/// wedge replacement.
pub struct WorkerSet<T: Send + 'static> {
    queue: Arc<JobQueue<T>>,
    /// Workers currently live (running jobs or blocked on the queue).
    live: Arc<AtomicUsize>,
    /// Steady-state worker count.
    target: usize,
    /// Total workers ever spawned (initial + replacements).
    spawned: AtomicUsize,
    /// Hard ceiling on total spawns.
    max_spawns: usize,
    /// Replacements performed (== wedge events acted on).
    pub replacements: AtomicU64,
    run: Arc<dyn Fn(T) + Send + Sync>,
}

impl<T: Send + 'static> WorkerSet<T> {
    /// Spawns `target` workers, each executing `run` per job. `run` is
    /// responsible for its own panic isolation; a panic that escapes it
    /// kills that worker (and only that worker) — the wedge supervisor
    /// will replace it if a submitter notices.
    pub fn start(
        queue: Arc<JobQueue<T>>,
        target: usize,
        max_spawns: usize,
        run: impl Fn(T) + Send + Sync + 'static,
    ) -> WorkerSet<T> {
        let set = WorkerSet {
            queue,
            live: Arc::new(AtomicUsize::new(0)),
            target: target.max(1),
            spawned: AtomicUsize::new(0),
            max_spawns: max_spawns.max(target.max(1)),
            replacements: AtomicU64::new(0),
            run: Arc::new(run),
        };
        for _ in 0..set.target {
            set.spawn_worker();
        }
        set
    }

    fn spawn_worker(&self) -> bool {
        if self.spawned.fetch_add(1, Ordering::Relaxed) >= self.max_spawns {
            self.spawned.fetch_sub(1, Ordering::Relaxed);
            return false;
        }
        self.live.fetch_add(1, Ordering::Relaxed);
        let queue = Arc::clone(&self.queue);
        let live = Arc::clone(&self.live);
        let run = Arc::clone(&self.run);
        let target = self.target;
        std::thread::spawn(move || {
            while let Some(job) = queue.pop() {
                run(job);
                // A formerly wedged worker that just un-wedged may find the
                // set over strength (a replacement took its seat): retire.
                let n = live.load(Ordering::Relaxed);
                if n > target
                    && live
                        .compare_exchange(n, n - 1, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                {
                    return;
                }
            }
            live.fetch_sub(1, Ordering::Relaxed);
        });
        true
    }

    /// Called by a submitter whose deadline expired on a started-but-not-
    /// finished job: spawns one replacement worker (if the spawn budget
    /// allows) so throughput survives the wedged one. Returns whether a
    /// replacement was actually spawned.
    pub fn replace_wedged(&self) -> bool {
        if self.spawn_worker() {
            self.replacements.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Workers currently live.
    pub fn live(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Total workers ever spawned.
    pub fn total_spawned(&self) -> usize {
        self.spawned.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn bounded_push_sheds_at_capacity() {
        let q: JobQueue<u32> = JobQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(4), Ok(()));
        q.close();
        assert_eq!(q.try_push(5), Err(PushError::Closed(5)));
        // Pending jobs drain even after close…
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(4));
        // …then pop reports closed.
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn workers_drain_jobs_and_exit_on_close() {
        let q = Arc::new(JobQueue::new(64));
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let set = WorkerSet::start(Arc::clone(&q), 3, 8, move |n: usize| {
            h.fetch_add(n, Ordering::Relaxed);
        });
        for i in 0..10 {
            q.try_push(i).unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while hits.load(Ordering::Relaxed) != 45 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(hits.load(Ordering::Relaxed), 45);
        q.close();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while set.live() != 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(set.live(), 0, "workers must exit after close");
    }

    #[test]
    fn replacement_is_bounded_by_spawn_budget() {
        let q: Arc<JobQueue<u32>> = Arc::new(JobQueue::new(4));
        let set = WorkerSet::start(Arc::clone(&q), 2, 4, |_n| {});
        assert!(set.replace_wedged(), "budget 4 allows 2 initial + 1");
        assert!(set.replace_wedged(), "…and one more");
        assert!(!set.replace_wedged(), "budget exhausted");
        assert_eq!(set.total_spawned(), 4);
        q.close();
    }
}
