//! Deterministic fault injection for the serve tier.
//!
//! Every failure mode the server claims to survive is *injected* here and
//! proven recovered in `tests/fault_suite.rs`, the `serve_faults` report
//! binary, and CI's blocking `serve-faults` job — the same philosophy as
//! `mmio-cert`'s mutation harness: a recovery path that has never fired is
//! assumed broken.
//!
//! The injection point is the [`FaultHook`] trait, consulted by
//! [`crate::cache::DiskCache`] at every persist attempt and read attempt,
//! and by the job workers before running a request. The production hook is
//! [`NoFaults`] (every method compiles to a constant); tests install a
//! [`ScriptedFaults`] whose directives are consumed in call order, so a
//! fault schedule is replayable byte-for-byte. [`FaultPlan::seeded`]
//! generates scripts from a seed for randomized-but-reproducible campaigns.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Duration;

/// What a persist attempt should do instead of completing normally.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PersistFault {
    /// Persist normally.
    None,
    /// Write only the first `keep_bytes` of the temp file, skip the rename,
    /// and report success — a torn write: the entry is silently missing and
    /// the orphaned temp must be swept by the next recovery scan.
    TornTemp {
        /// Bytes of the serialized entry actually written.
        keep_bytes: usize,
    },
    /// Write the whole temp file but never rename it — a crash between
    /// write and publish.
    SkipRename,
    /// Write `keep_bytes` of the temp file and abort the process — the
    /// kill-mid-persist half of a crash/restart cycle (only the
    /// `serve_faults` child process ever runs this).
    AbortProcess {
        /// Bytes written before the simulated kill.
        keep_bytes: usize,
    },
    /// Fail this attempt with a transient `io::Error` (the retry loop will
    /// consult the hook again on the next attempt).
    TransientError,
}

/// What a read attempt should do instead of completing normally.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadFault {
    /// Read normally.
    None,
    /// Fail this attempt with a transient `io::Error`.
    TransientError,
}

/// Injection points consulted by the cache and the workers. The default
/// implementation of every method is the no-fault behavior, so production
/// code pays one dynamic call per I/O operation and nothing else.
pub trait FaultHook: Send + Sync {
    /// Consulted once per persist *attempt* (so retries re-consult).
    fn persist_fault(&self, _kind: &str, _key: u64) -> PersistFault {
        PersistFault::None
    }

    /// Consulted once per read *attempt*.
    fn read_fault(&self, _kind: &str, _key: u64) -> ReadFault {
        ReadFault::None
    }

    /// Extra latency injected into a job before it executes (a slow or
    /// wedged task). `None` means run immediately.
    fn wedge(&self, _op: &str) -> Option<Duration> {
        None
    }

    /// Whether this job should panic instead of executing — drills the
    /// per-job panic isolation ([`crate::codes::SERVE_JOB_PANIC`]).
    fn panic_job(&self, _op: &str) -> bool {
        false
    }
}

/// The production hook: no faults, ever.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFaults;

impl FaultHook for NoFaults {}

/// A fully deterministic hook: three scripts (persist, read, wedge) whose
/// directives are consumed strictly in call order; an exhausted script
/// behaves like [`NoFaults`]. Tests assert afterwards that every directive
/// fired via [`ScriptedFaults::remaining`].
#[derive(Debug, Default)]
pub struct ScriptedFaults {
    persist: Mutex<VecDeque<PersistFault>>,
    read: Mutex<VecDeque<ReadFault>>,
    wedge: Mutex<VecDeque<Option<Duration>>>,
    panic_jobs: Mutex<VecDeque<bool>>,
}

impl ScriptedFaults {
    /// An empty script (equivalent to [`NoFaults`] until extended).
    pub fn new() -> ScriptedFaults {
        ScriptedFaults::default()
    }

    /// Appends persist directives, consumed in order by successive persist
    /// attempts.
    pub fn script_persists(self, faults: impl IntoIterator<Item = PersistFault>) -> Self {
        self.persist
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .extend(faults);
        self
    }

    /// Appends read directives, consumed in order by successive read
    /// attempts.
    pub fn script_reads(self, faults: impl IntoIterator<Item = ReadFault>) -> Self {
        self.read
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .extend(faults);
        self
    }

    /// Appends wedge directives, consumed in order by successive jobs.
    pub fn script_wedges(self, wedges: impl IntoIterator<Item = Option<Duration>>) -> Self {
        self.wedge
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .extend(wedges);
        self
    }

    /// Appends panic directives, consumed in order by successive jobs.
    pub fn script_panics(self, panics: impl IntoIterator<Item = bool>) -> Self {
        self.panic_jobs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .extend(panics);
        self
    }

    /// `(persist, read, wedge)` directives not yet consumed — all zero
    /// after a harness run that exercised its whole script.
    pub fn remaining(&self) -> (usize, usize, usize) {
        let p = self
            .persist
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len();
        let r = self
            .read
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len();
        let w = self
            .wedge
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len();
        (p, r, w)
    }
}

impl FaultHook for ScriptedFaults {
    fn persist_fault(&self, _kind: &str, _key: u64) -> PersistFault {
        self.persist
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop_front()
            .unwrap_or(PersistFault::None)
    }

    fn read_fault(&self, _kind: &str, _key: u64) -> ReadFault {
        self.read
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop_front()
            .unwrap_or(ReadFault::None)
    }

    fn wedge(&self, _op: &str) -> Option<Duration> {
        self.wedge
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop_front()
            .unwrap_or(None)
    }

    fn panic_job(&self, _op: &str) -> bool {
        self.panic_jobs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop_front()
            .unwrap_or(false)
    }
}

/// A seeded campaign generator: expands a seed into a [`ScriptedFaults`]
/// script of `ops` persist directives and `ops` read directives drawn
/// uniformly from the *recoverable* fault classes (torn temps, skipped
/// renames, transient errors — never `AbortProcess`). The same seed always
/// produces the same script, so a failing campaign is replayable from its
/// seed alone.
pub struct FaultPlan;

impl FaultPlan {
    /// The deterministic script for `seed`.
    pub fn seeded(seed: u64, ops: usize) -> ScriptedFaults {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut persists = Vec::with_capacity(ops);
        let mut reads = Vec::with_capacity(ops);
        for _ in 0..ops {
            persists.push(match rng.gen_range(0..4u32) {
                0 => PersistFault::None,
                1 => PersistFault::TornTemp {
                    keep_bytes: rng.gen_range(0..64usize),
                },
                2 => PersistFault::SkipRename,
                _ => PersistFault::TransientError,
            });
            reads.push(if rng.gen_bool(0.25) {
                ReadFault::TransientError
            } else {
                ReadFault::None
            });
        }
        ScriptedFaults::new()
            .script_persists(persists)
            .script_reads(reads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_consume_in_order_then_default() {
        let s = ScriptedFaults::new()
            .script_persists([PersistFault::SkipRename, PersistFault::TransientError])
            .script_reads([ReadFault::TransientError]);
        assert_eq!(s.persist_fault("x", 0), PersistFault::SkipRename);
        assert_eq!(s.persist_fault("x", 0), PersistFault::TransientError);
        assert_eq!(s.persist_fault("x", 0), PersistFault::None);
        assert_eq!(s.read_fault("x", 0), ReadFault::TransientError);
        assert_eq!(s.read_fault("x", 0), ReadFault::None);
        assert_eq!(s.remaining(), (0, 0, 0));
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::seeded(42, 32);
        let b = FaultPlan::seeded(42, 32);
        for _ in 0..32 {
            assert_eq!(a.persist_fault("k", 1), b.persist_fault("k", 1));
            assert_eq!(a.read_fault("k", 1), b.read_fault("k", 1));
        }
        // A different seed diverges somewhere in 32 draws.
        let a = FaultPlan::seeded(42, 32);
        let c = FaultPlan::seeded(43, 32);
        let mut diverged = false;
        for _ in 0..32 {
            diverged |= a.persist_fault("k", 1) != c.persist_fault("k", 1);
        }
        assert!(diverged, "seeds 42 and 43 produced identical scripts");
    }
}
