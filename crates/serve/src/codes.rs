//! Serve-tier diagnostic codes, re-exported from the workspace registry
//! (`mmio-analyze::codes`, the single source of truth for every
//! `MMIO-xxxx` code) plus the [`ALL`] slice the wire protocol validates
//! against.

pub use mmio_analyze::codes::{
    SERVE_BAD_REQUEST, SERVE_CACHE_DEGRADED, SERVE_DEADLINE, SERVE_JOB_PANIC, SERVE_ORPHAN_TEMP,
    SERVE_OVERLOADED, SERVE_PAYLOAD_REVERIFY, SERVE_SNAPSHOT_CHECKSUM, SERVE_SNAPSHOT_KEY,
    SERVE_SNAPSHOT_UNPARSEABLE, SERVE_SNAPSHOT_VERSION, SERVE_WORKER_REPLACED,
};

/// Every code a serve response may carry.
pub const ALL: &[&str] = &[
    SERVE_BAD_REQUEST,
    SERVE_SNAPSHOT_UNPARSEABLE,
    SERVE_SNAPSHOT_CHECKSUM,
    SERVE_SNAPSHOT_VERSION,
    SERVE_SNAPSHOT_KEY,
    SERVE_CACHE_DEGRADED,
    SERVE_JOB_PANIC,
    SERVE_DEADLINE,
    SERVE_OVERLOADED,
    SERVE_WORKER_REPLACED,
    SERVE_PAYLOAD_REVERIFY,
    SERVE_ORPHAN_TEMP,
];
