//! The NDJSON wire protocol: one request object per line in, one response
//! object per line out.
//!
//! Requests name a registry algorithm (never a filesystem path — the
//! server does not open client-controlled files) and an operation:
//!
//! ```text
//! {"id":1,"op":"certify","algo":"strassen","r":3,"m":64}
//! {"id":2,"op":"analyze","algo":"strassen","r":2,"deadline_ms":2000}
//! {"id":3,"op":"sweep","algo":"strassen","r":2,"ms":[8,16,32]}
//! {"id":4,"op":"routing_cert","algo":"strassen","k":1,"r":3}
//! {"id":5,"op":"stats"}
//! {"id":6,"op":"shutdown"}
//! ```
//!
//! Responses carry a status, the payload on success, and a stable
//! `MMIO-Fxxx` diagnostic code on every typed failure:
//!
//! ```text
//! {"id":1,"status":"ok","cached":false,"payload":"..."}
//! {"id":1,"status":"overloaded","code":"MMIO-F008","error":"..."}
//! ```
//!
//! The `payload` of a successful `certify`/`analyze`/`routing_cert`
//! response is **byte-identical** to the corresponding batch CLI output
//! (`mmio certify`, `mmio analyze <algo> <r> --json`, the `cert emit`
//! routing certificate) — both sides render through [`crate::ops`], and
//! the fault harness plus `exp_perf_serve` enforce the equality at every
//! concurrency. Parsing never panics on malformed input: every defect is
//! a [`ParseError`] that the server turns into a `bad_request` response.

use serde::Value;

/// A parsed request line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Per-request deadline override in milliseconds.
    pub deadline_ms: Option<u64>,
    /// The operation.
    pub op: Op,
}

/// The operations the service executes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Theorem 1 certification — payload is the batch `mmio certify` text.
    Certify {
        /// Registry algorithm name.
        algo: String,
        /// Recursion depth.
        r: u32,
        /// Cache size.
        m: u64,
    },
    /// Static analysis — payload is the batch `mmio analyze <algo> <r>
    /// --json` text.
    Analyze {
        /// Registry algorithm name.
        algo: String,
        /// Recursion depth.
        r: u32,
    },
    /// Pebble-scheduler sweep over an `M` grid — payload is the sweep's
    /// JSON table.
    Sweep {
        /// Registry algorithm name.
        algo: String,
        /// Recursion depth.
        r: u32,
        /// Cache sizes to sweep.
        ms: Vec<usize>,
    },
    /// Proof-carrying routing certificate (Theorem 2 + Fact-1 transport)
    /// — payload is the certificate JSON `mmio cert emit` writes.
    RoutingCert {
        /// Registry algorithm name.
        algo: String,
        /// Class depth.
        k: u32,
        /// Transport depth (`k ≤ r`).
        r: u32,
    },
    /// Server counters (never cached).
    Stats,
    /// Graceful shutdown.
    Shutdown,
}

impl Op {
    /// Short operation name (cache entry `kind`, wedge-hook tag).
    pub fn kind(&self) -> &'static str {
        match self {
            Op::Certify { .. } => "certify",
            Op::Analyze { .. } => "analyze",
            Op::Sweep { .. } => "sweep",
            Op::RoutingCert { .. } => "routing_cert",
            Op::Stats => "stats",
            Op::Shutdown => "shutdown",
        }
    }
}

/// A response line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// The request's correlation id (0 when the line was too malformed to
    /// carry one).
    pub id: u64,
    /// Outcome.
    pub status: Status,
    /// Whether the payload came from the memo tier.
    pub cached: bool,
    /// Operation output (present iff `status == Ok`).
    pub payload: Option<String>,
    /// Stable diagnostic code for typed failures.
    pub code: Option<&'static str>,
    /// Human-readable failure detail.
    pub error: Option<String>,
}

/// Response status.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Success; `payload` holds the result.
    Ok,
    /// The request line failed to parse or validate.
    BadRequest,
    /// The bounded queue was full; the request was shed, not executed.
    Overloaded,
    /// The per-request deadline expired before a result was produced.
    DeadlineExceeded,
    /// The job panicked; the panic was isolated to the job.
    Panicked,
    /// Any other typed failure.
    Error,
}

impl Status {
    /// Wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::BadRequest => "bad_request",
            Status::Overloaded => "overloaded",
            Status::DeadlineExceeded => "deadline_exceeded",
            Status::Panicked => "panicked",
            Status::Error => "error",
        }
    }
}

impl Response {
    /// A success response.
    pub fn ok(id: u64, cached: bool, payload: String) -> Response {
        Response {
            id,
            status: Status::Ok,
            cached,
            payload: Some(payload),
            code: None,
            error: None,
        }
    }

    /// A typed failure response.
    pub fn fail(id: u64, status: Status, code: &'static str, error: String) -> Response {
        Response {
            id,
            status,
            cached: false,
            payload: None,
            code: Some(code),
            error: Some(error),
        }
    }

    /// Renders the response as one NDJSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut fields = vec![
            ("id".to_string(), Value::UInt(self.id)),
            (
                "status".to_string(),
                Value::Str(self.status.as_str().to_string()),
            ),
            ("cached".to_string(), Value::Bool(self.cached)),
        ];
        if let Some(p) = &self.payload {
            fields.push(("payload".to_string(), Value::Str(p.clone())));
        }
        if let Some(c) = self.code {
            fields.push(("code".to_string(), Value::Str(c.to_string())));
        }
        if let Some(e) = &self.error {
            fields.push(("error".to_string(), Value::Str(e.clone())));
        }
        serde_json::to_string(&Value::Object(fields)).unwrap_or_else(|e| {
            // A response that cannot render must still answer: degrade
            // to a minimal hand-built error line instead of panicking
            // the protocol layer.
            format!(
                "{{\"id\":{},\"status\":\"error\",\"error\":\"response render failed: {}\"}}",
                self.id,
                e.to_string().replace(['"', '\\'], "?")
            )
        })
    }

    /// Parses a response line (used by clients and the harness).
    pub fn from_line(line: &str) -> Result<Response, ParseError> {
        let v: Value = serde_json::from_str(line).map_err(|e| ParseError(e.to_string()))?;
        let id = get_u64(&v, "id")?;
        let status = match get_str(&v, "status")?.as_str() {
            "ok" => Status::Ok,
            "bad_request" => Status::BadRequest,
            "overloaded" => Status::Overloaded,
            "deadline_exceeded" => Status::DeadlineExceeded,
            "panicked" => Status::Panicked,
            "error" => Status::Error,
            other => return Err(ParseError(format!("unknown status {other:?}"))),
        };
        let cached = matches!(v.get("cached"), Some(&Value::Bool(true)));
        let payload = opt_str(&v, "payload")?;
        let code = match opt_str(&v, "code")? {
            None => None,
            Some(c) => Some(
                crate::codes::ALL
                    .iter()
                    .copied()
                    .find(|k| *k == c)
                    .ok_or_else(|| ParseError(format!("unknown code {c:?}")))?,
            ),
        };
        let error = opt_str(&v, "error")?;
        Ok(Response {
            id,
            status,
            cached,
            payload,
            code,
            error,
        })
    }
}

/// Why a request line was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

fn get_u64(v: &Value, key: &str) -> Result<u64, ParseError> {
    match v.get(key) {
        Some(&Value::UInt(u)) => Ok(u),
        Some(&Value::Int(i)) if i >= 0 => Ok(i as u64),
        Some(other) => Err(ParseError(format!(
            "field {key:?}: expected non-negative integer, got {}",
            other.kind()
        ))),
        None => Err(ParseError(format!("missing field {key:?}"))),
    }
}

fn get_u32(v: &Value, key: &str) -> Result<u32, ParseError> {
    let u = get_u64(v, key)?;
    u32::try_from(u).map_err(|_| ParseError(format!("field {key:?}: {u} exceeds u32")))
}

fn get_str(v: &Value, key: &str) -> Result<String, ParseError> {
    match v.get(key) {
        Some(Value::Str(s)) => Ok(s.clone()),
        Some(other) => Err(ParseError(format!(
            "field {key:?}: expected string, got {}",
            other.kind()
        ))),
        None => Err(ParseError(format!("missing field {key:?}"))),
    }
}

fn opt_str(v: &Value, key: &str) -> Result<Option<String>, ParseError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(other) => Err(ParseError(format!(
            "field {key:?}: expected string, got {}",
            other.kind()
        ))),
    }
}

fn opt_u64(v: &Value, key: &str) -> Result<Option<u64>, ParseError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(_) => get_u64(v, key).map(Some),
    }
}

impl Request {
    /// Parses one request line. Never panics: every malformed shape —
    /// non-JSON, wrong field types, unknown ops, oversized numbers —
    /// is a [`ParseError`].
    pub fn from_line(line: &str) -> Result<Request, ParseError> {
        let v: Value = serde_json::from_str(line).map_err(|e| ParseError(e.to_string()))?;
        if !matches!(v, Value::Object(_)) {
            return Err(ParseError(format!(
                "request must be an object, got {}",
                v.kind()
            )));
        }
        let id = get_u64(&v, "id")?;
        let deadline_ms = opt_u64(&v, "deadline_ms")?;
        let op = match get_str(&v, "op")?.as_str() {
            "certify" => Op::Certify {
                algo: get_str(&v, "algo")?,
                r: get_u32(&v, "r")?,
                m: get_u64(&v, "m")?,
            },
            "analyze" => Op::Analyze {
                algo: get_str(&v, "algo")?,
                r: get_u32(&v, "r")?,
            },
            "sweep" => {
                let ms = match v.get("ms") {
                    Some(Value::Array(items)) => {
                        let mut out = Vec::with_capacity(items.len());
                        for item in items {
                            match item {
                                &Value::UInt(u) => out.push(u as usize),
                                &Value::Int(i) if i >= 0 => out.push(i as usize),
                                other => {
                                    return Err(ParseError(format!(
                                        "field \"ms\": expected non-negative integers, got {}",
                                        other.kind()
                                    )))
                                }
                            }
                        }
                        out
                    }
                    Some(other) => {
                        return Err(ParseError(format!(
                            "field \"ms\": expected array, got {}",
                            other.kind()
                        )))
                    }
                    None => return Err(ParseError("missing field \"ms\"".to_string())),
                };
                if ms.is_empty() || ms.len() > MAX_SWEEP_POINTS {
                    return Err(ParseError(format!(
                        "field \"ms\": between 1 and {MAX_SWEEP_POINTS} grid points required"
                    )));
                }
                Op::Sweep {
                    algo: get_str(&v, "algo")?,
                    r: get_u32(&v, "r")?,
                    ms,
                }
            }
            "routing_cert" => {
                let k = get_u32(&v, "k")?;
                let r = get_u32(&v, "r")?;
                if k > r {
                    return Err(ParseError(format!(
                        "routing_cert requires k ≤ r ({k} > {r})"
                    )));
                }
                Op::RoutingCert {
                    algo: get_str(&v, "algo")?,
                    k,
                    r,
                }
            }
            "stats" => Op::Stats,
            "shutdown" => Op::Shutdown,
            other => return Err(ParseError(format!("unknown op {other:?}"))),
        };
        Ok(Request {
            id,
            deadline_ms,
            op,
        })
    }

    /// Renders the request as one NDJSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut fields = vec![("id".to_string(), Value::UInt(self.id))];
        if let Some(d) = self.deadline_ms {
            fields.push(("deadline_ms".to_string(), Value::UInt(d)));
        }
        fields.push(("op".to_string(), Value::Str(self.op.kind().to_string())));
        match &self.op {
            Op::Certify { algo, r, m } => {
                fields.push(("algo".to_string(), Value::Str(algo.clone())));
                fields.push(("r".to_string(), Value::UInt(u64::from(*r))));
                fields.push(("m".to_string(), Value::UInt(*m)));
            }
            Op::Analyze { algo, r } => {
                fields.push(("algo".to_string(), Value::Str(algo.clone())));
                fields.push(("r".to_string(), Value::UInt(u64::from(*r))));
            }
            Op::Sweep { algo, r, ms } => {
                fields.push(("algo".to_string(), Value::Str(algo.clone())));
                fields.push(("r".to_string(), Value::UInt(u64::from(*r))));
                fields.push((
                    "ms".to_string(),
                    Value::Array(ms.iter().map(|&m| Value::UInt(m as u64)).collect()),
                ));
            }
            Op::RoutingCert { algo, k, r } => {
                fields.push(("algo".to_string(), Value::Str(algo.clone())));
                fields.push(("k".to_string(), Value::UInt(u64::from(*k))));
                fields.push(("r".to_string(), Value::UInt(u64::from(*r))));
            }
            Op::Stats | Op::Shutdown => {}
        }
        serde_json::to_string(&Value::Object(fields)).expect("request serializes")
    }
}

/// DoS ceiling on sweep grids accepted over the wire.
pub const MAX_SWEEP_POINTS: usize = 64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let cases = [
            Request {
                id: 1,
                deadline_ms: Some(250),
                op: Op::Certify {
                    algo: "strassen".into(),
                    r: 3,
                    m: 64,
                },
            },
            Request {
                id: 2,
                deadline_ms: None,
                op: Op::Analyze {
                    algo: "winograd".into(),
                    r: 2,
                },
            },
            Request {
                id: 3,
                deadline_ms: None,
                op: Op::Sweep {
                    algo: "strassen".into(),
                    r: 2,
                    ms: vec![8, 16],
                },
            },
            Request {
                id: 4,
                deadline_ms: None,
                op: Op::RoutingCert {
                    algo: "laderman".into(),
                    k: 1,
                    r: 2,
                },
            },
            Request {
                id: 5,
                deadline_ms: None,
                op: Op::Stats,
            },
        ];
        for req in cases {
            let line = req.to_line();
            assert_eq!(Request::from_line(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn malformed_requests_are_typed_errors_not_panics() {
        for bad in [
            "",
            "not json",
            "[]",
            "{}",
            r#"{"id":"x","op":"stats"}"#,
            r#"{"id":1}"#,
            r#"{"id":1,"op":"frobnicate"}"#,
            r#"{"id":1,"op":"certify","algo":"strassen","r":-1,"m":4}"#,
            r#"{"id":1,"op":"certify","algo":"strassen","r":99999999999,"m":4}"#,
            r#"{"id":1,"op":"sweep","algo":"strassen","r":1,"ms":[]}"#,
            r#"{"id":1,"op":"sweep","algo":"strassen","r":1,"ms":"all"}"#,
            r#"{"id":1,"op":"routing_cert","algo":"strassen","k":3,"r":1}"#,
        ] {
            assert!(Request::from_line(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn response_roundtrip() {
        let ok = Response::ok(7, true, "payload\nline2\n".to_string());
        assert_eq!(Response::from_line(&ok.to_line()).unwrap(), ok);
        let fail = Response::fail(
            8,
            Status::Overloaded,
            crate::codes::SERVE_OVERLOADED,
            "queue full (cap 4)".to_string(),
        );
        assert_eq!(Response::from_line(&fail.to_line()).unwrap(), fail);
    }

    #[test]
    fn response_lines_are_single_line() {
        let ok = Response::ok(1, false, "a\nb\nc\n".to_string());
        assert!(
            !ok.to_line().contains('\n'),
            "payload newlines must be escaped"
        );
    }

    #[test]
    fn hostile_strings_still_render_one_parseable_line() {
        // The wire-encode trust path must answer for any content the
        // ops layer hands it — quotes, backslashes, control bytes, and
        // invalid-UTF-16 escapes included.
        for hostile in [
            "quote \" backslash \\ done",
            "control \u{0000}\u{0001}\u{001f} bytes",
            "unicode \u{2014} and emoji \u{1F980}",
            "{\"looks\":\"like json\"}",
        ] {
            let resp = Response::fail(
                9,
                Status::Error,
                crate::codes::SERVE_JOB_PANIC,
                hostile.to_string(),
            );
            let line = resp.to_line();
            assert!(!line.contains('\n'), "{hostile:?} leaked a newline");
            let back = Response::from_line(&line)
                .unwrap_or_else(|e| panic!("{hostile:?}: line unparseable: {e}"));
            assert_eq!(back.error.as_deref(), Some(hostile));
        }
    }
}
