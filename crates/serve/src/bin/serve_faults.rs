//! The serve-tier fault campaign, as a reporting binary: every scenario
//! from the fault-injection harness (`tests/fault_suite.rs` and
//! `tests/crash_restart.rs`) re-run end-to-end, with a machine-readable
//! JSON report for CI's `serve-faults` job to upload as an artifact.
//!
//! Exits nonzero if *any* scenario fails — the report is evidence, the
//! exit code is the gate. Output path: `--out <path>` (default
//! `serve_faults_report.json` in the working directory).
//!
//! The kill-mid-persist scenario re-execs this binary; the child half is
//! gated on the `MMIO_SERVE_FAULTS_CHILD` environment variable (the cache
//! directory to crash into) and dies by `std::process::abort()` mid-write.

use mmio_parallel::Pool;
use mmio_serve::cache::{CacheKey, DiskCache};
use mmio_serve::engine::{Engine, EngineConfig};
use mmio_serve::faults::{NoFaults, PersistFault, ReadFault, ScriptedFaults};
use mmio_serve::protocol::{Op, Request, Status};
use mmio_serve::{codes, ops, FaultPlan};
use serde::Value;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

const CHILD_ENV: &str = "MMIO_SERVE_FAULTS_CHILD";

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmio_serve_faults_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg(cache: Option<PathBuf>) -> EngineConfig {
    EngineConfig {
        workers: 2,
        queue_cap: 16,
        max_spawns: 8,
        default_deadline: Duration::from_secs(60),
        cache_dir: cache,
        pool_threads: 1,
    }
}

fn certify(id: u64, deadline_ms: Option<u64>) -> Request {
    Request {
        id,
        deadline_ms,
        op: Op::Certify {
            algo: "strassen".into(),
            r: 2,
            m: 49,
        },
    }
}

fn certify_key() -> CacheKey {
    CacheKey {
        kind: "certify",
        algo: "strassen".to_string(),
        k: 2,
        extra: "m=49".to_string(),
    }
}

fn batch_payload() -> String {
    ops::certify_text(
        &ops::resolve_registry("strassen").unwrap(),
        2,
        49,
        ops::ViewMode::Auto,
        &Pool::serial(),
    )
}

/// One scenario: `Ok(evidence)` or `Err(what went wrong)`.
type Outcome = Result<String, String>;

fn check(cond: bool, detail: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(detail.to_string())
    }
}

fn scenario_panic_isolation() -> Outcome {
    let hook = Arc::new(ScriptedFaults::new().script_panics([true]));
    let (engine, _) = Engine::start(cfg(None), hook).map_err(|e| e.to_string())?;
    let poisoned = engine.submit(certify(1, None));
    check(
        poisoned.status == Status::Panicked && poisoned.code == Some(codes::SERVE_JOB_PANIC),
        &format!("expected typed panic response, got {poisoned:?}"),
    )?;
    let next = engine.submit(certify(2, None));
    check(
        next.status == Status::Ok && next.payload.as_deref() == Some(batch_payload().as_str()),
        &format!("server did not survive the panic: {next:?}"),
    )?;
    check(
        engine.shutdown(Duration::from_secs(10)),
        "workers failed to drain",
    )?;
    Ok("injected panic → typed MMIO-F006, next request batch-identical".to_string())
}

fn scenario_wedge_deadline() -> Outcome {
    let hook = Arc::new(ScriptedFaults::new().script_wedges([Some(Duration::from_secs(30))]));
    let (engine, _) = Engine::start(
        EngineConfig {
            workers: 1,
            max_spawns: 4,
            ..cfg(None)
        },
        hook,
    )
    .map_err(|e| e.to_string())?;
    let wedged = engine.submit(certify(1, Some(100)));
    check(
        wedged.status == Status::DeadlineExceeded && wedged.code == Some(codes::SERVE_DEADLINE),
        &format!("expected typed deadline, got {wedged:?}"),
    )?;
    check(
        engine.worker_replacements() == 1,
        "wedged worker was not replaced",
    )?;
    let next = engine.submit(certify(2, Some(30_000)));
    check(
        next.status == Status::Ok && next.payload.as_deref() == Some(batch_payload().as_str()),
        &format!("replacement worker did not serve: {next:?}"),
    )?;
    engine.shutdown(Duration::from_millis(50));
    Ok("30 s wedge → MMIO-F007 in 100 ms, worker replaced, service restored".to_string())
}

fn scenario_saturation_shed() -> Outcome {
    let hook = Arc::new(ScriptedFaults::new().script_wedges([Some(Duration::from_secs(2))]));
    let (engine, _) = Engine::start(
        EngineConfig {
            workers: 1,
            queue_cap: 1,
            max_spawns: 2,
            ..cfg(None)
        },
        hook,
    )
    .map_err(|e| e.to_string())?;
    let engine = Arc::new(engine);
    let e1 = Arc::clone(&engine);
    let h1 = std::thread::spawn(move || e1.submit(certify(1, None)));
    std::thread::sleep(Duration::from_millis(200));
    let e2 = Arc::clone(&engine);
    let h2 = std::thread::spawn(move || e2.submit(certify(2, None)));
    std::thread::sleep(Duration::from_millis(200));
    let t0 = std::time::Instant::now();
    let shed = engine.submit(certify(3, None));
    check(
        t0.elapsed() < Duration::from_millis(500),
        &format!("shedding blocked for {:?}", t0.elapsed()),
    )?;
    check(
        shed.status == Status::Overloaded && shed.code == Some(codes::SERVE_OVERLOADED),
        &format!("expected typed overload, got {shed:?}"),
    )?;
    let expect = batch_payload();
    for h in [h1, h2] {
        let resp = h.join().map_err(|_| "submitter thread panicked")?;
        check(
            resp.status == Status::Ok && resp.payload.as_deref() == Some(expect.as_str()),
            &format!("queued request corrupted: {resp:?}"),
        )?;
    }
    check(
        engine.shutdown(Duration::from_secs(10)),
        "workers failed to drain",
    )?;
    Ok("cap-1 queue under a wedge → immediate typed MMIO-F008, queued work intact".to_string())
}

fn scenario_dead_disk_degrade() -> Outcome {
    let dir = tmpdir("deaddisk");
    let hook = Arc::new(
        ScriptedFaults::new()
            .script_persists(vec![PersistFault::TransientError; 64])
            .script_reads(vec![ReadFault::TransientError; 64]),
    );
    let (engine, _) = Engine::start(cfg(Some(dir.clone())), hook).map_err(|e| e.to_string())?;
    let expect = batch_payload();
    for id in 0..3 {
        let resp = engine.submit(certify(id, None));
        check(
            resp.status == Status::Ok && !resp.cached,
            &format!("dead disk failed a request: {resp:?}"),
        )?;
        check(
            resp.payload.as_deref() == Some(expect.as_str()),
            "dead-disk recompute diverged from batch",
        )?;
    }
    let cache = engine.cache().expect("cache configured");
    let degraded = cache.counters.degraded.load(Ordering::Relaxed);
    check(degraded >= 2, "degradations not counted")?;
    let diags = cache.take_diags();
    check(
        diags.iter().any(|d| d.code == codes::SERVE_CACHE_DEGRADED),
        "no MMIO-F005 diagnostic emitted",
    )?;
    engine.shutdown(Duration::from_secs(10));
    let _ = std::fs::remove_dir_all(&dir);
    Ok(format!(
        "every cache I/O failing → {degraded} typed MMIO-F005 degradations, zero failed requests"
    ))
}

fn scenario_corruption_quarantine() -> Outcome {
    let dir = tmpdir("corrupt");
    let (engine, _) =
        Engine::start(cfg(Some(dir.clone())), Arc::new(NoFaults)).map_err(|e| e.to_string())?;
    let expect = batch_payload();
    engine.submit(certify(1, None));
    let key = certify_key();
    let path = dir
        .join(format!("shard{:02}", key.shard()))
        .join(key.file_name());
    let mut bytes = std::fs::read(&path).map_err(|e| e.to_string())?;
    let text = String::from_utf8(bytes.clone()).map_err(|e| e.to_string())?;
    let i = text.find("complete").ok_or("payload text missing")?;
    bytes[i] ^= 0x20;
    std::fs::write(&path, &bytes).map_err(|e| e.to_string())?;
    let after = engine.submit(certify(2, None));
    check(
        after.status == Status::Ok && !after.cached,
        &format!("corrupt snapshot served or failed: {after:?}"),
    )?;
    check(
        after.payload.as_deref() == Some(expect.as_str()),
        "recompute after corruption diverged from batch",
    )?;
    let diags = engine.cache().expect("cache").take_diags();
    check(
        diags
            .iter()
            .any(|d| d.code == codes::SERVE_SNAPSHOT_CHECKSUM),
        "no MMIO-F002 diagnostic emitted",
    )?;
    check(
        dir.join("quarantine")
            .read_dir()
            .map_err(|e| e.to_string())?
            .next()
            .is_some(),
        "corrupt file not preserved in quarantine/",
    )?;
    engine.shutdown(Duration::from_secs(10));
    let _ = std::fs::remove_dir_all(&dir);
    Ok("bit flip → MMIO-F002, quarantined, recompute batch-identical".to_string())
}

fn scenario_seeded_campaigns() -> Outcome {
    let expect = batch_payload();
    let seeds = [7u64, 1312, 0xC0FFEE, 0xDEAD];
    for &seed in &seeds {
        let dir = tmpdir(&format!("seed{seed}"));
        let hook = Arc::new(FaultPlan::seeded(seed, 48));
        let (engine, _) = Engine::start(
            EngineConfig {
                workers: 4,
                queue_cap: 32,
                ..cfg(Some(dir.clone()))
            },
            hook,
        )
        .map_err(|e| e.to_string())?;
        let engine = Arc::new(engine);
        let handles: Vec<_> = (0..16)
            .map(|id| {
                let e = Arc::clone(&engine);
                std::thread::spawn(move || e.submit(certify(id, Some(60_000))))
            })
            .collect();
        for h in handles {
            let resp = h.join().map_err(|_| "submitter thread panicked")?;
            check(
                resp.status == Status::Ok,
                &format!("seed {seed}: request failed: {resp:?}"),
            )?;
            check(
                resp.payload.as_deref() == Some(expect.as_str()),
                &format!("seed {seed}: corrupt bytes reached a response"),
            )?;
        }
        check(
            engine.shutdown(Duration::from_secs(10)),
            &format!("seed {seed}: workers failed to drain"),
        )?;
        let _ = std::fs::remove_dir_all(&dir);
    }
    Ok(format!(
        "{} seeded campaigns × 16 concurrent requests: every response batch-identical",
        seeds.len()
    ))
}

fn scenario_crash_restart() -> Outcome {
    let dir = tmpdir("crash");
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let output = std::process::Command::new(&exe)
        .env(CHILD_ENV, &dir)
        .output()
        .map_err(|e| e.to_string())?;
    check(
        !output.status.success(),
        "child exited cleanly instead of aborting mid-persist",
    )?;
    let (engine, report) = Engine::start(cfg(Some(dir.clone())), Arc::new(NoFaults))
        .map_err(|e| format!("restart over crash site failed: {e}"))?;
    check(report.valid == 1, "published snapshot lost in the crash")?;
    check(report.orphans_swept == 1, "torn temp not swept on restart")?;
    check(
        report.quarantined.is_empty(),
        &format!("spurious quarantine: {:?}", report.quarantined),
    )?;
    let resp = engine.submit(certify(1, None));
    check(
        resp.status == Status::Ok && resp.cached,
        &format!("recovered snapshot not served as a hit: {resp:?}"),
    )?;
    check(
        resp.payload.as_deref() == Some(batch_payload().as_str()),
        "recovered snapshot diverged from batch",
    )?;
    engine.shutdown(Duration::from_secs(10));
    let _ = std::fs::remove_dir_all(&dir);
    Ok(
        "abort() mid-persist → restart sweeps 1 orphan, keeps 1 snapshot, warm hit identical"
            .to_string(),
    )
}

fn scenario_socket_concurrency() -> Outcome {
    let sock = std::env::temp_dir().join(format!("mmio_serve_faults_{}.sock", std::process::id()));
    let (engine, _) = Engine::start(
        EngineConfig {
            workers: 4,
            queue_cap: 64,
            ..cfg(None)
        },
        Arc::new(NoFaults),
    )
    .map_err(|e| e.to_string())?;
    let server = mmio_serve::Server::bind(&sock, Arc::new(engine)).map_err(|e| e.to_string())?;
    let h = std::thread::spawn(move || server.run());
    let expect = batch_payload();
    let clients: Vec<_> = (0..8)
        .map(|c| {
            let sock = sock.clone();
            let expect = expect.clone();
            std::thread::spawn(move || -> Result<(), String> {
                let mut client = mmio_serve::Client::connect_retry(&sock, Duration::from_secs(5))
                    .map_err(|e| e.to_string())?;
                for i in 0..4u64 {
                    let resp = client
                        .call(&certify(c * 100 + i, None))
                        .map_err(|e| e.to_string())?;
                    check(
                        resp.status == Status::Ok
                            && resp.payload.as_deref() == Some(expect.as_str()),
                        &format!("socket response diverged: {resp:?}"),
                    )?;
                }
                Ok(())
            })
        })
        .collect();
    for c in clients {
        c.join().map_err(|_| "client thread panicked")??;
    }
    let mut closer = mmio_serve::Client::connect_retry(&sock, Duration::from_secs(5))
        .map_err(|e| e.to_string())?;
    closer
        .call(&Request {
            id: 0,
            deadline_ms: None,
            op: Op::Shutdown,
        })
        .map_err(|e| e.to_string())?;
    h.join()
        .map_err(|_| "server thread panicked")?
        .map_err(|e| e.to_string())?;
    Ok("8 clients × 4 requests over the socket: every payload batch-identical".to_string())
}

/// The crash child: publish one snapshot, then die mid-persist.
fn run_child(dir: PathBuf) -> ! {
    let hook = Arc::new(ScriptedFaults::new().script_persists([
        PersistFault::None,
        PersistFault::AbortProcess { keep_bytes: 37 },
    ]));
    let (cache, _) = DiskCache::open(dir, hook).expect("child opens cache");
    cache.put(&certify_key(), &batch_payload());
    let doomed = CacheKey {
        kind: "analyze",
        algo: "strassen".to_string(),
        k: 2,
        extra: String::new(),
    };
    cache.put(&doomed, "this entry never gets published");
    unreachable!("AbortProcess must have killed the process");
}

fn main() -> ExitCode {
    if let Some(dir) = std::env::var_os(CHILD_ENV) {
        run_child(PathBuf::from(dir));
    }
    let out = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "serve_faults_report.json".to_string())
    };

    type Scenario = (&'static str, fn() -> Outcome);
    let scenarios: Vec<Scenario> = vec![
        ("panic_isolation", scenario_panic_isolation),
        ("wedge_deadline", scenario_wedge_deadline),
        ("saturation_shed", scenario_saturation_shed),
        ("dead_disk_degrade", scenario_dead_disk_degrade),
        ("corruption_quarantine", scenario_corruption_quarantine),
        ("seeded_campaigns", scenario_seeded_campaigns),
        ("crash_restart", scenario_crash_restart),
        ("socket_concurrency", scenario_socket_concurrency),
    ];

    println!("serve fault campaign ({} scenarios)\n", scenarios.len());
    let mut rows = Vec::new();
    let mut failed = 0usize;
    for (name, run) in scenarios {
        let outcome = run();
        let (passed, detail) = match &outcome {
            Ok(d) => (true, d.clone()),
            Err(d) => {
                failed += 1;
                (false, d.clone())
            }
        };
        println!(
            "  {} {:<24} {}",
            if passed { "PASS" } else { "FAIL" },
            name,
            detail
        );
        rows.push(Value::Object(vec![
            ("scenario".to_string(), Value::Str(name.to_string())),
            ("passed".to_string(), Value::Bool(passed)),
            ("detail".to_string(), Value::Str(detail)),
        ]));
    }

    let report = Value::Object(vec![
        (
            "campaign".to_string(),
            Value::Str("serve_faults".to_string()),
        ),
        ("scenarios".to_string(), Value::Array(rows)),
        ("failed".to_string(), Value::UInt(failed as u64)),
    ]);
    match std::fs::write(
        &out,
        format!(
            "{}\n",
            serde_json::to_string_pretty(&report).expect("serializable")
        ),
    ) {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => {
            eprintln!("error: writing {out}: {e}");
            return ExitCode::from(1);
        }
    }
    if failed > 0 {
        eprintln!("\n{failed} scenario(s) FAILED");
        return ExitCode::from(1);
    }
    println!("all scenarios passed");
    ExitCode::SUCCESS
}
