//! A registry of every base graph in the library, for sweep-style tests,
//! experiments, and benches.

use crate::classical::classical;
use crate::laderman::laderman;
use crate::strassen::{strassen, winograd};
use crate::synthetic::{with_dummy_product, without_copying};
use mmio_cdag::BaseGraph;

/// Strassen ⊗ Strassen: the ⟨4,4,4;49⟩ tensor square — same ω₀ as Strassen,
/// a genuinely different (larger, denser) base graph.
pub fn strassen_squared() -> BaseGraph {
    strassen().tensor(&strassen())
}

/// Strassen ⊗ Winograd: a ⟨4,4,4;49⟩ hybrid.
pub fn strassen_winograd() -> BaseGraph {
    strassen().tensor(&winograd())
}

/// Every *fast* base graph (`ω₀ < 3`) in the library.
pub fn fast_base_graphs() -> Vec<BaseGraph> {
    vec![
        strassen(),
        winograd(),
        laderman(),
        strassen_squared(),
        strassen_winograd(),
        without_copying(&strassen()),
    ]
}

/// Every base graph in the library, fast or not, including the synthetic
/// structural variants.
pub fn all_base_graphs() -> Vec<BaseGraph> {
    let mut v = fast_base_graphs();
    v.push(classical(2));
    v.push(classical(3));
    v.push(with_dummy_product(&strassen()));
    v
}

/// Larger constructions excluded from the default sweeps for cost:
/// the Hopcroft–Kerr-family square ⟨12,12,12;1331⟩.
pub fn extended_base_graphs() -> Vec<BaseGraph> {
    vec![crate::rect::hopcroft_kerr_square()]
}

/// Base graphs satisfying all of the main theorem's hypotheses (single-use
/// assumption and the Lemma 1 condition) — the ones the full lower-bound
/// pipeline runs on.
pub fn theorem1_base_graphs() -> Vec<BaseGraph> {
    all_base_graphs()
        .into_iter()
        .filter(|g| g.single_use_assumption_holds() && g.lemma1_condition_holds())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_graph_is_correct() {
        for g in all_base_graphs() {
            assert_eq!(g.verify_correctness(), Ok(()), "{}", g.name());
        }
    }

    #[test]
    fn fast_graphs_are_fast() {
        for g in fast_base_graphs() {
            assert!(g.is_fast(), "{} should have ω₀ < 3", g.name());
        }
    }

    #[test]
    fn tensor_square_parameters() {
        let g = strassen_squared();
        assert_eq!((g.n0(), g.a(), g.b()), (4, 16, 49));
        // Same exponent as Strassen.
        assert!((g.omega0() - 7f64.log2()).abs() < 1e-12);
    }

    #[test]
    fn theorem1_graphs_satisfy_hypotheses() {
        let graphs = theorem1_base_graphs();
        assert!(graphs.len() >= 5, "got {}", graphs.len());
        for g in &graphs {
            assert!(g.single_use_assumption_holds());
            assert!(g.lemma1_condition_holds());
        }
        // Classical is excluded: it has no nontrivial combinations.
        assert!(graphs.iter().all(|g| !g.name().starts_with("classical")));
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<String> = all_base_graphs()
            .iter()
            .map(|g| g.name().to_string())
            .collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
