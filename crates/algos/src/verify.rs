//! Randomized correctness verification of bilinear algorithms, for shapes
//! where the exhaustive tensor check is out of reach.
//!
//! Evaluates the bilinear form `Σ_μ dec[·][μ]·⟨enc_a[μ], A⟩·⟨enc_b[μ], B⟩`
//! on random small-integer matrices over exact rationals and compares it
//! entrywise with the classical product. By polynomial-identity testing, a
//! wrong coefficient survives a sample with probability at most
//! `degree/|value range|`, so a handful of samples gives overwhelming
//! confidence (and the arithmetic is exact — no tolerance games).

use mmio_cdag::BaseGraph;
use mmio_matrix::classical::multiply_naive;
use mmio_matrix::{Matrix, Rational};
use rand::Rng;

/// Randomized verification of a general `⟨m,k,n⟩` coefficient triple.
pub fn verify_bilinear_randomized<R: Rng>(
    (m, k, n): (usize, usize, usize),
    enc_a: &Matrix<Rational>,
    enc_b: &Matrix<Rational>,
    dec: &Matrix<Rational>,
    samples: usize,
    rng: &mut R,
) -> bool {
    let b = enc_a.rows();
    for _ in 0..samples {
        let a = Matrix::from_fn(m, k, |_, _| Rational::integer(rng.gen_range(-4i64..=4)));
        let bm = Matrix::from_fn(k, n, |_, _| Rational::integer(rng.gen_range(-4i64..=4)));
        let want = multiply_naive(&a, &bm);
        // Products of the encoded scalars.
        let mut prods = Vec::with_capacity(b);
        for mu in 0..b {
            let sa: Rational = (0..m * k).map(|x| enc_a[(mu, x)] * a[(x / k, x % k)]).sum();
            let sb: Rational = (0..k * n)
                .map(|z| enc_b[(mu, z)] * bm[(z / n, z % n)])
                .sum();
            prods.push(sa * sb);
        }
        for i in 0..m {
            for j in 0..n {
                let got: Rational = (0..b).map(|mu| dec[(i * n + j, mu)] * prods[mu]).sum();
                if got != want[(i, j)] {
                    return false;
                }
            }
        }
    }
    true
}

/// Randomized verification of a square base graph.
pub fn verify_base_graph_randomized<R: Rng>(base: &BaseGraph, samples: usize, rng: &mut R) -> bool {
    use mmio_cdag::base::Side;
    let n0 = base.n0();
    verify_bilinear_randomized(
        (n0, n0, n0),
        base.enc(Side::A),
        base.enc(Side::B),
        base.dec(),
        samples,
        rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strassen::strassen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn accepts_correct_algorithms() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(verify_base_graph_randomized(&strassen(), 10, &mut rng));
    }

    #[test]
    fn rejects_corrupted_algorithms() {
        use mmio_cdag::base::Side;
        let base = strassen();
        // Corrupt one decoder coefficient.
        let mut dec = base.dec().clone();
        dec[(0, 0)] += Rational::ONE;
        let bad = BaseGraph::new(
            "bad",
            2,
            base.enc(Side::A).clone(),
            base.enc(Side::B).clone(),
            dec,
        );
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!verify_base_graph_randomized(&bad, 10, &mut rng));
    }
}
