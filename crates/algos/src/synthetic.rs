//! Synthetic base-graph variants exercising the structural generality of
//! the path-routing technique: disconnected decoding graphs, suppressed
//! copying, violated single-use assumption.
//!
//! These transformations preserve correctness (each is tested against the
//! tensor) while changing exactly the structural property named, so the
//! lower-bound machinery can be exercised on every case the paper's
//! Section 6 enumerates.

use mmio_cdag::base::Side;
use mmio_cdag::BaseGraph;
use mmio_matrix::{Matrix, Rational};

/// Adds a dummy product `(a·x)·(b·z)` whose decoding coefficients are all
/// zero. The algorithm stays correct, `b` grows by one, and the decoding
/// graph acquires an isolated vertex — i.e. it becomes *disconnected*,
/// the first failure case of the edge-expansion technique.
pub fn with_dummy_product(base: &BaseGraph) -> BaseGraph {
    let (a, b) = (base.a(), base.b());
    let grow = |m: &Matrix<Rational>| {
        Matrix::from_fn(b + 1, a, |row, col| {
            if row < b {
                m[(row, col)]
            } else if col == 0 {
                // Nontrivial combination (coefficient 2) so the dummy row
                // does not add copying and cannot collide with a real row.
                Rational::integer(2)
            } else {
                Rational::ZERO
            }
        })
    };
    let dec = Matrix::from_fn(a, b + 1, |row, col| {
        if col < b {
            base.dec()[(row, col)]
        } else {
            Rational::ZERO
        }
    });
    BaseGraph::new(
        format!("{}+dummy", base.name()),
        base.n0(),
        grow(base.enc(Side::A)),
        grow(base.enc(Side::B)),
        dec,
    )
}

/// Rescales every encoding row by 2 (compensated by `1/4` in the decoder).
/// Correctness is preserved, but no row is trivial anymore: the resulting
/// CDAG has **no copying at all** (every meta-vertex is a singleton).
pub fn without_copying(base: &BaseGraph) -> BaseGraph {
    let two = Rational::integer(2);
    let quarter = Rational::new(1, 4);
    BaseGraph::new(
        format!("{}-nocopy", base.name()),
        base.n0(),
        base.enc(Side::A).scale(two),
        base.enc(Side::B).scale(two),
        base.dec().scale(quarter),
    )
}

/// Duplicates product 0 and splits its decoding coefficients evenly across
/// the two copies. Correct, but the (nontrivial) combinations of product 0
/// now feed two multiplications — **violating the paper's single-use
/// assumption**. Used to test that the assumption checker catches it.
///
/// # Panics
/// Panics if row 0 of either encoding is trivial (then the duplicate would
/// be copying, not a violation).
pub fn with_duplicated_combination(base: &BaseGraph) -> BaseGraph {
    assert!(
        !base.row_is_trivial(Side::A, 0) && !base.row_is_trivial(Side::B, 0),
        "product 0 must use nontrivial combinations"
    );
    let (a, b) = (base.a(), base.b());
    // Rows 0..b copied; row b duplicates row 0.
    let grow = |m: &Matrix<Rational>| {
        Matrix::from_fn(b + 1, a, |row, col| {
            let src = if row == b { 0 } else { row };
            m[(src, col)]
        })
    };
    let half = Rational::new(1, 2);
    let dec = Matrix::from_fn(a, b + 1, |row, col| {
        if col == 0 || col == b {
            base.dec()[(row, 0)] * half
        } else {
            base.dec()[(row, col)]
        }
    });
    BaseGraph::new(
        format!("{}+dup", base.name()),
        base.n0(),
        grow(base.enc(Side::A)),
        grow(base.enc(Side::B)),
        dec,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strassen::strassen;
    use mmio_cdag::connectivity::classify;

    #[test]
    fn dummy_product_stays_correct() {
        let g = with_dummy_product(&strassen());
        assert_eq!(g.verify_correctness(), Ok(()));
        assert_eq!(g.b(), 8);
    }

    #[test]
    fn dummy_product_disconnects_decoding() {
        let p = classify(&with_dummy_product(&strassen()));
        assert_eq!(p.dec_components, 2, "isolated product vertex");
        assert!(!p.edge_expansion_applies);
        // The routing machinery's preconditions still hold.
        assert!(p.single_use_assumption);
        assert!(p.lemma1_condition);
    }

    #[test]
    fn without_copying_stays_correct() {
        let g = without_copying(&strassen());
        assert_eq!(g.verify_correctness(), Ok(()));
        assert!(!g.has_multiple_copying());
        // No trivial rows at all.
        for m in 0..g.b() {
            assert!(!g.row_is_trivial(Side::A, m));
            assert!(!g.row_is_trivial(Side::B, m));
        }
    }

    #[test]
    fn duplicated_combination_violates_single_use() {
        let g = with_duplicated_combination(&strassen());
        assert_eq!(g.verify_correctness(), Ok(()));
        assert!(!g.single_use_assumption_holds());
        assert_eq!(g.b(), 8);
    }

    #[test]
    fn dummy_preserves_fastness_flag() {
        // b = 8 = n0³: no longer fast by the strict definition.
        let g = with_dummy_product(&strassen());
        assert!(!g.is_fast());
    }
}
