//! Laderman's ⟨3,3,3;23⟩ algorithm (1976), `ω₀ = 2·log₉ 23 ≈ 2.854`.
//!
//! The 23 products are transcribed from Laderman's listing; the decoding
//! matrix is **derived**, not transcribed: for each output entry we solve
//! the exact linear system
//! `Σ_m d_y[m] · enc_a[m] ⊗ enc_b[m] = T_y` over the rationals, where `T_y`
//! is the matmul tensor's output slice. A solution exists iff the products
//! span what matrix multiplication needs, so successful construction is
//! itself a correctness certificate (and `verify_correctness` re-checks it
//! independently).
//!
//! Two of the 23 combinations (the `B`-side factors of `m3 = a22·(…)` and
//! `m11 = a32·(…)`) were likewise *derived by exact completion*: with the
//! other 21 products fixed, the system of tensor equations on the seven
//! `(x,z)`-rows not touched by `a22`/`a32` determines the decoder uniquely
//! (rank 21, empty nullspace), and the residuals on the two remaining rows
//! are rank-1 — pinning both combinations up to scale. The result is a
//! verified ⟨3,3,3;23⟩ algorithm in the Laderman family; its exact
//! coefficient listing may differ from the 1976 publication by an
//! equivalence transformation, but its structure (products of single
//! entries `a22`/`a32` with dense `B`-combinations, `ω₀ = 2·log₉ 23`) is
//! the same.

use mmio_cdag::BaseGraph;
use mmio_matrix::solve::solve_matrix;
use mmio_matrix::{Matrix, Rational};

/// One product's two linear combinations, as `(entry index ∈ [9], coeff)`
/// sparse rows. Entry index of `a_{ij}`/`b_{ij}` (1-based subscripts) is
/// `(i-1)*3 + (j-1)`.
type SparseRow = Vec<(usize, i64)>;

// 0-based flattened entry of x_{ij} with 1-based (i, j).
const fn e(i: usize, j: usize) -> usize {
    (i - 1) * 3 + (j - 1)
}

/// Laderman's 23 products: `(A combination, B combination)`.
fn products() -> Vec<(SparseRow, SparseRow)> {
    vec![
        // m1 = (a11+a12+a13-a21-a22-a32-a33) · b22
        (
            vec![
                (e(1, 1), 1),
                (e(1, 2), 1),
                (e(1, 3), 1),
                (e(2, 1), -1),
                (e(2, 2), -1),
                (e(3, 2), -1),
                (e(3, 3), -1),
            ],
            vec![(e(2, 2), 1)],
        ),
        // m2 = (a11-a21) · (-b12+b22)
        (
            vec![(e(1, 1), 1), (e(2, 1), -1)],
            vec![(e(1, 2), -1), (e(2, 2), 1)],
        ),
        // m3 = a22 · (-b11+b12+b21-b22-b23-b31+b33)
        // This combination is *derived*, not transcribed: with the other 21
        // products fixed, the exact completion of the matmul tensor
        // determines it uniquely (up to scale). See the module docs.
        (
            vec![(e(2, 2), 1)],
            vec![
                (e(1, 1), -1),
                (e(1, 2), 1),
                (e(2, 1), 1),
                (e(2, 2), -1),
                (e(2, 3), -1),
                (e(3, 1), -1),
                (e(3, 3), 1),
            ],
        ),
        // m4 = (-a11+a21+a22) · (b11-b12+b22)
        (
            vec![(e(1, 1), -1), (e(2, 1), 1), (e(2, 2), 1)],
            vec![(e(1, 1), 1), (e(1, 2), -1), (e(2, 2), 1)],
        ),
        // m5 = (a21+a22) · (-b11+b12)
        (
            vec![(e(2, 1), 1), (e(2, 2), 1)],
            vec![(e(1, 1), -1), (e(1, 2), 1)],
        ),
        // m6 = a11 · b11
        (vec![(e(1, 1), 1)], vec![(e(1, 1), 1)]),
        // m7 = (-a11+a31+a32) · (b11-b13+b23)
        (
            vec![(e(1, 1), -1), (e(3, 1), 1), (e(3, 2), 1)],
            vec![(e(1, 1), 1), (e(1, 3), -1), (e(2, 3), 1)],
        ),
        // m8 = (-a11+a31) · (b13-b23)
        (
            vec![(e(1, 1), -1), (e(3, 1), 1)],
            vec![(e(1, 3), 1), (e(2, 3), -1)],
        ),
        // m9 = (a31+a32) · (-b11+b13)
        (
            vec![(e(3, 1), 1), (e(3, 2), 1)],
            vec![(e(1, 1), -1), (e(1, 3), 1)],
        ),
        // m10 = (a11+a12+a13-a22-a23-a31-a32) · b23
        (
            vec![
                (e(1, 1), 1),
                (e(1, 2), 1),
                (e(1, 3), 1),
                (e(2, 2), -1),
                (e(2, 3), -1),
                (e(3, 1), -1),
                (e(3, 2), -1),
            ],
            vec![(e(2, 3), 1)],
        ),
        // m11 = a32 · (-b11+b13+b21-b22-b23-b31+b32)
        // Derived by exact completion, like m3 (its 2↔3-symmetric image).
        (
            vec![(e(3, 2), 1)],
            vec![
                (e(1, 1), -1),
                (e(1, 3), 1),
                (e(2, 1), 1),
                (e(2, 2), -1),
                (e(2, 3), -1),
                (e(3, 1), -1),
                (e(3, 2), 1),
            ],
        ),
        // m12 = (-a13+a32+a33) · (b22+b31-b32)
        (
            vec![(e(1, 3), -1), (e(3, 2), 1), (e(3, 3), 1)],
            vec![(e(2, 2), 1), (e(3, 1), 1), (e(3, 2), -1)],
        ),
        // m13 = (a13-a33) · (b22-b32)
        (
            vec![(e(1, 3), 1), (e(3, 3), -1)],
            vec![(e(2, 2), 1), (e(3, 2), -1)],
        ),
        // m14 = a13 · b31
        (vec![(e(1, 3), 1)], vec![(e(3, 1), 1)]),
        // m15 = (a32+a33) · (-b31+b32)
        (
            vec![(e(3, 2), 1), (e(3, 3), 1)],
            vec![(e(3, 1), -1), (e(3, 2), 1)],
        ),
        // m16 = (-a13+a22+a23) · (b23+b31-b33)
        (
            vec![(e(1, 3), -1), (e(2, 2), 1), (e(2, 3), 1)],
            vec![(e(2, 3), 1), (e(3, 1), 1), (e(3, 3), -1)],
        ),
        // m17 = (a13-a23) · (b23-b33)
        (
            vec![(e(1, 3), 1), (e(2, 3), -1)],
            vec![(e(2, 3), 1), (e(3, 3), -1)],
        ),
        // m18 = (a22+a23) · (-b31+b33)
        (
            vec![(e(2, 2), 1), (e(2, 3), 1)],
            vec![(e(3, 1), -1), (e(3, 3), 1)],
        ),
        // m19 = a12 · b21
        (vec![(e(1, 2), 1)], vec![(e(2, 1), 1)]),
        // m20 = a23 · b32
        (vec![(e(2, 3), 1)], vec![(e(3, 2), 1)]),
        // m21 = a21 · b13
        (vec![(e(2, 1), 1)], vec![(e(1, 3), 1)]),
        // m22 = a31 · b12
        (vec![(e(3, 1), 1)], vec![(e(1, 2), 1)]),
        // m23 = a33 · b33
        (vec![(e(3, 3), 1)], vec![(e(3, 3), 1)]),
    ]
}

/// Derives the decoding matrix for a given set of products against the
/// `n₀×n₀` matrix-multiplication tensor. Returns `None` when the products
/// cannot express matrix multiplication (i.e. the listing is wrong).
pub fn solve_decoder(
    n0: usize,
    enc_a: &Matrix<Rational>,
    enc_b: &Matrix<Rational>,
) -> Option<Matrix<Rational>> {
    let a = n0 * n0;
    let b = enc_a.rows();
    // System matrix: rows indexed by (x, z) ∈ [a]², columns by products;
    // entry = enc_a[m][x]·enc_b[m][z]. One rhs column per output y.
    let sys = Matrix::from_fn(a * a, b, |row, m| {
        let (x, z) = (row / a, row % a);
        enc_a[(m, x)] * enc_b[(m, z)]
    });
    let rhs = Matrix::from_fn(a * a, a, |row, y| {
        let (x, z) = (row / a, row % a);
        // x = a_{ik}, z = b_{k'j}, y = c_{i'j'}: tensor entry is 1 iff
        // i==i', j==j', k==k'.
        let (i, k) = (x / n0, x % n0);
        let (k2, j) = (z / n0, z % n0);
        let (i2, j2) = (y / n0, y % n0);
        if i == i2 && j == j2 && k == k2 {
            Rational::ONE
        } else {
            Rational::ZERO
        }
    });
    // solve_matrix returns X with A·X = B; decoder rows are outputs, so the
    // decoder is Xᵀ… shaped (a × b): X is (b × a), transpose it.
    solve_matrix(&sys, &rhs).map(|x| x.transpose())
}

/// Laderman's ⟨3,3,3;23⟩ base graph, with a decoding matrix derived by
/// exact solving.
///
/// # Panics
/// Panics if the transcribed products cannot express 3×3 matrix
/// multiplication (which would mean the listing is wrong — covered by
/// tests).
pub fn laderman() -> BaseGraph {
    let prods = products();
    let b = prods.len();
    let mut enc_a = Matrix::zeros(b, 9);
    let mut enc_b = Matrix::zeros(b, 9);
    for (m, (ra, rb)) in prods.iter().enumerate() {
        for &(x, c) in ra {
            enc_a[(m, x)] = Rational::integer(c);
        }
        for &(z, c) in rb {
            enc_b[(m, z)] = Rational::integer(c);
        }
    }
    let dec = solve_decoder(3, &enc_a, &enc_b)
        .expect("Laderman products must span the 3x3 matmul tensor");
    BaseGraph::new("laderman", 3, enc_a, enc_b, dec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laderman_is_correct() {
        assert_eq!(laderman().verify_correctness(), Ok(()));
    }

    #[test]
    fn laderman_parameters() {
        let g = laderman();
        assert_eq!((g.n0(), g.a(), g.b()), (3, 9, 23));
        assert!(g.is_fast());
        let expected = 2.0 * (23f64).ln() / (9f64).ln();
        assert!((g.omega0() - expected).abs() < 1e-12);
        assert!(g.omega0() < 2.86);
    }

    #[test]
    fn laderman_satisfies_paper_assumptions() {
        let g = laderman();
        assert!(g.single_use_assumption_holds());
        assert!(g.lemma1_condition_holds());
    }

    #[test]
    fn decoder_is_integral() {
        // Laderman's published decoder is ±1-integral; the solved one should
        // be integral too (the system is unisolvent on these products).
        let g = laderman();
        for (_, _, c) in g.dec().nonzeros() {
            assert!(c.is_integer(), "non-integral decoder coefficient {c}");
        }
    }

    #[test]
    fn solve_decoder_rejects_insufficient_products() {
        // Only 3 products cannot express 2×2 matmul (needs ≥ 7).
        let enc_a = Matrix::from_fn(3, 4, |m, x| {
            if m == x {
                Rational::ONE
            } else {
                Rational::ZERO
            }
        });
        let enc_b = enc_a.clone();
        assert!(solve_decoder(2, &enc_a, &enc_b).is_none());
    }

    #[test]
    fn solve_decoder_recovers_strassen() {
        let s = crate::strassen::strassen();
        let dec = solve_decoder(
            2,
            s.enc(mmio_cdag::base::Side::A),
            s.enc(mmio_cdag::base::Side::B),
        )
        .expect("Strassen products span the tensor");
        // The derived decoder must itself be correct (it may differ from the
        // published one only if the system were underdetermined, which it
        // is not for 7 products).
        let rebuilt = BaseGraph::new(
            "strassen-solved",
            2,
            s.enc(mmio_cdag::base::Side::A).clone(),
            s.enc(mmio_cdag::base::Side::B).clone(),
            dec,
        );
        assert_eq!(rebuilt.verify_correctness(), Ok(()));
    }
}
