//! Equivalence transformations of base graphs.
//!
//! The symmetry group of the matrix-multiplication tensor acts on
//! Strassen-like algorithms: permuting products, rescaling a product's
//! factors (compensated in the decoder), and the transpose duality
//! `C = A·B ⟺ Cᵀ = Bᵀ·Aᵀ` all map correct algorithms to correct
//! algorithms with different base graphs. The paper's results are
//! invariant under these actions; the transformations give cheap families
//! of structurally distinct, verified test subjects.

use mmio_cdag::base::Side;
use mmio_cdag::BaseGraph;
use mmio_matrix::{Matrix, Rational};

/// Permutes the products of `base` by `perm` (product `m` of the result is
/// product `perm[m]` of the input).
///
/// # Panics
/// Panics if `perm` is not a permutation of `0..b`.
pub fn permute_products(base: &BaseGraph, perm: &[usize]) -> BaseGraph {
    let b = base.b();
    assert_eq!(perm.len(), b, "permutation length must equal b");
    let mut seen = vec![false; b];
    for &p in perm {
        assert!(p < b && !seen[p], "not a permutation");
        seen[p] = true;
    }
    let remap_rows =
        |m: &Matrix<Rational>| Matrix::from_fn(b, base.a(), |row, col| m[(perm[row], col)]);
    let dec = Matrix::from_fn(base.a(), b, |row, col| base.dec()[(row, perm[col])]);
    BaseGraph::new(
        format!("{}-perm", base.name()),
        base.n0(),
        remap_rows(base.enc(Side::A)),
        remap_rows(base.enc(Side::B)),
        dec,
    )
}

/// Rescales product `m` by `s` on the `A` side and `1/s` in the decoder
/// (the bilinear form is unchanged). Breaks triviality of row `m` if
/// `s ≠ 1`.
///
/// # Panics
/// Panics if `s` is zero or `m ≥ b`.
pub fn rescale_product(base: &BaseGraph, m: usize, s: Rational) -> BaseGraph {
    assert!(!s.is_zero(), "scale must be nonzero");
    assert!(m < base.b(), "product index out of range");
    let enc_a = Matrix::from_fn(base.b(), base.a(), |row, col| {
        let c = base.enc(Side::A)[(row, col)];
        if row == m {
            c * s
        } else {
            c
        }
    });
    let dec = Matrix::from_fn(base.a(), base.b(), |row, col| {
        let c = base.dec()[(row, col)];
        if col == m {
            c * s.recip()
        } else {
            c
        }
    });
    BaseGraph::new(
        format!("{}-scaled", base.name()),
        base.n0(),
        enc_a,
        base.enc(Side::B).clone(),
        dec,
    )
}

/// The transpose-dual algorithm: computes `C = A·B` via
/// `Cᵀ = Bᵀ·Aᵀ` — swap the encodings (transposing their entry indexing)
/// and transpose the decoder's output indexing.
pub fn transpose_dual(base: &BaseGraph) -> BaseGraph {
    let n0 = base.n0();
    let t = |x: usize| (x % n0) * n0 + x / n0; // entry transposition
                                               // New A-encoding: old B-encoding applied to Aᵀ's entries. The new
                                               // product m multiplies (enc_b(Bᵀ-pattern) on A) and vice versa.
    let enc_a = Matrix::from_fn(base.b(), base.a(), |m, x| base.enc(Side::B)[(m, t(x))]);
    let enc_b = Matrix::from_fn(base.b(), base.a(), |m, x| base.enc(Side::A)[(m, t(x))]);
    let dec = Matrix::from_fn(base.a(), base.b(), |y, m| base.dec()[(t(y), m)]);
    BaseGraph::new(format!("{}ᵀ", base.name()), n0, enc_a, enc_b, dec)
}

/// A deterministic family of transformed variants of `base`, all verified
/// correct by construction (and re-verified in tests): useful as sweep
/// subjects.
pub fn variant_family(base: &BaseGraph) -> Vec<BaseGraph> {
    let b = base.b();
    let rotate: Vec<usize> = (0..b).map(|i| (i + 1) % b).collect();
    let reverse: Vec<usize> = (0..b).rev().collect();
    vec![
        permute_products(base, &rotate),
        permute_products(base, &reverse),
        rescale_product(base, 0, Rational::integer(2)),
        rescale_product(base, b - 1, Rational::new(-1, 2)),
        transpose_dual(base),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laderman::laderman;
    use crate::strassen::{strassen, winograd};

    #[test]
    fn all_variants_stay_correct() {
        for base in [strassen(), winograd(), laderman()] {
            for variant in variant_family(&base) {
                assert_eq!(
                    variant.verify_correctness(),
                    Ok(()),
                    "{} variant of {}",
                    variant.name(),
                    base.name()
                );
            }
        }
    }

    #[test]
    fn permutation_preserves_parameters() {
        let base = strassen();
        let perm: Vec<usize> = vec![6, 5, 4, 3, 2, 1, 0];
        let p = permute_products(&base, &perm);
        assert_eq!((p.n0(), p.a(), p.b()), (2, 4, 7));
        assert!((p.omega0() - base.omega0()).abs() < 1e-12);
    }

    #[test]
    fn rescaling_kills_triviality() {
        // Strassen's M3 has trivial A-row (a11); scaling it by 2 makes it
        // nontrivial while preserving correctness.
        let base = strassen();
        assert!(base.row_is_trivial(Side::A, 2));
        let scaled = rescale_product(&base, 2, Rational::integer(2));
        assert!(!scaled.row_is_trivial(Side::A, 2));
        assert_eq!(scaled.verify_correctness(), Ok(()));
    }

    #[test]
    fn transpose_dual_differs_but_matches_parameters() {
        let base = strassen();
        let dual = transpose_dual(&base);
        assert_eq!(dual.verify_correctness(), Ok(()));
        assert_eq!(dual.b(), base.b());
        assert!(!dual.enc(Side::A).exactly_equals(base.enc(Side::A)));
    }

    #[test]
    fn transpose_dual_is_involutive_on_the_bilinear_form() {
        // Applying the duality twice gives back the original coefficients.
        let base = strassen();
        let twice = transpose_dual(&transpose_dual(&base));
        assert!(twice.enc(Side::A).exactly_equals(base.enc(Side::A)));
        assert!(twice.enc(Side::B).exactly_equals(base.enc(Side::B)));
        assert!(twice.dec().exactly_equals(base.dec()));
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn bad_permutation_rejected() {
        let _ = permute_products(&strassen(), &[0, 0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn executor_runs_variants() {
        use mmio_matrix::classical::multiply_naive;
        use mmio_matrix::random::random_i64_matrix;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(31);
        let a = random_i64_matrix(4, 4, &mut rng);
        let b = random_i64_matrix(4, 4, &mut rng);
        let want = multiply_naive(&a, &b).map(mmio_matrix::Rational::integer);
        let ar = a.map(mmio_matrix::Rational::integer);
        let br = b.map(mmio_matrix::Rational::integer);
        for variant in variant_family(&strassen()) {
            let got = crate::Executor::new(variant.clone(), 1).multiply(&ar, &br);
            assert!(got.exactly_equals(&want), "{}", variant.name());
        }
    }
}
