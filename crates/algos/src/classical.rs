//! The classical ⟨n₀,n₀,n₀;n₀³⟩ algorithm as a base graph.
//!
//! Not fast (`ω₀ = 3`), but structurally the extreme case the paper's
//! generality is about: every encoding row is trivial (all inputs are
//! multiply copied, paper Figure 2) and the decoding graph splits into `n₀²`
//! components (one star per output) — both of which defeat the
//! edge-expansion technique of [6] while the path-routing machinery applies
//! unchanged.

use mmio_cdag::BaseGraph;
use mmio_matrix::{Matrix, Rational};

/// The classical base graph for block side `n₀`: product `(i,j,k)` computes
/// `a_{ik}·b_{kj}`, output `c_{ij} = Σ_k`. Products are ordered
/// lexicographically by `(i, j, k)`.
///
/// # Panics
/// Panics if `n0 == 0`.
pub fn classical(n0: usize) -> BaseGraph {
    assert!(n0 >= 1, "n0 must be positive");
    let a = n0 * n0;
    let b = n0 * n0 * n0;
    let mut enc_a = Matrix::zeros(b, a);
    let mut enc_b = Matrix::zeros(b, a);
    let mut dec = Matrix::zeros(a, b);
    let mut m = 0;
    for i in 0..n0 {
        for j in 0..n0 {
            for k in 0..n0 {
                enc_a[(m, i * n0 + k)] = Rational::ONE;
                enc_b[(m, k * n0 + j)] = Rational::ONE;
                dec[(i * n0 + j, m)] = Rational::ONE;
                m += 1;
            }
        }
    }
    BaseGraph::new(format!("classical{n0}"), n0, enc_a, enc_b, dec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_cdag::connectivity::classify;

    #[test]
    fn correct_for_small_n0() {
        for n0 in 1..=4 {
            assert_eq!(classical(n0).verify_correctness(), Ok(()), "n0={n0}");
        }
    }

    #[test]
    fn parameters() {
        let g = classical(3);
        assert_eq!((g.n0(), g.a(), g.b()), (3, 9, 27));
        assert!(!g.is_fast());
        assert!((g.omega0() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn structure_is_the_hard_case() {
        let p = classify(&classical(3));
        assert_eq!(p.dec_components, 9); // one star per output
        assert!(p.multiple_copying); // every input feeds n0 products bare
        assert!(!p.edge_expansion_applies);
        assert!(!p.lemma1_condition); // no nontrivial combination at all
    }

    #[test]
    fn n0_1_is_trivial_algorithm() {
        let g = classical(1);
        assert_eq!(g.b(), 1);
        assert!(g.verify_correctness().is_ok());
    }
}
