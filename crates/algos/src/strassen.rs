//! Strassen's algorithm and Winograd's 7-multiplication variant as base
//! graphs.

use mmio_cdag::BaseGraph;
use mmio_matrix::{Matrix, Rational};

fn r(n: i64) -> Rational {
    Rational::integer(n)
}

/// Builds a `b × 4` encoding matrix from rows given as `[c11, c12, c21, c22]`
/// coefficient quadruples (2×2 entry order `(0,0),(0,1),(1,0),(1,1)`).
fn enc(rows: &[[i64; 4]]) -> Matrix<Rational> {
    Matrix::from_fn(rows.len(), 4, |m, x| r(rows[m][x]))
}

/// Strassen's ⟨2,2,2;7⟩ base graph (1969), as drawn in the paper's Figure 1.
///
/// ```text
/// M1 = (a11+a22)(b11+b22)   M5 = (a11+a12)·b22
/// M2 = (a21+a22)·b11        M6 = (a21−a11)(b11+b12)
/// M3 = a11·(b12−b22)        M7 = (a12−a22)(b21+b22)
/// M4 = a22·(b21−b11)
/// c11 = M1+M4−M5+M7         c12 = M3+M5
/// c21 = M2+M4               c22 = M1−M2+M3+M6
/// ```
pub fn strassen() -> BaseGraph {
    let enc_a = enc(&[
        [1, 0, 0, 1],  // a11+a22
        [0, 0, 1, 1],  // a21+a22
        [1, 0, 0, 0],  // a11
        [0, 0, 0, 1],  // a22
        [1, 1, 0, 0],  // a11+a12
        [-1, 0, 1, 0], // a21-a11
        [0, 1, 0, -1], // a12-a22
    ]);
    let enc_b = enc(&[
        [1, 0, 0, 1],  // b11+b22
        [1, 0, 0, 0],  // b11
        [0, 1, 0, -1], // b12-b22
        [-1, 0, 1, 0], // b21-b11
        [0, 0, 0, 1],  // b22
        [1, 1, 0, 0],  // b11+b12
        [0, 0, 1, 1],  // b21+b22
    ]);
    let dec = Matrix::from_fn(4, 7, |y, m| {
        let coeffs: [[i64; 7]; 4] = [
            [1, 0, 0, 1, -1, 0, 1], // c11 = M1+M4-M5+M7
            [0, 0, 1, 0, 1, 0, 0],  // c12 = M3+M5
            [0, 1, 0, 1, 0, 0, 0],  // c21 = M2+M4
            [1, -1, 1, 0, 0, 1, 0], // c22 = M1-M2+M3+M6
        ];
        r(coeffs[y][m])
    });
    BaseGraph::new("strassen", 2, enc_a, enc_b, dec)
}

/// Winograd's 7-multiplication, 15-addition variant of Strassen's scheme —
/// same `(a, b) = (4, 7)`, structurally different base graph (denser
/// encoding rows, different copying pattern).
///
/// Flattened from the usual staged form
/// (`S2 = a21+a22−a11`, `T2 = b22−b12+b11`, …):
///
/// ```text
/// M1 = (a21+a22−a11)(b22−b12+b11)   M5 = (a21+a22)(b12−b11)
/// M2 = a11·b11                       M6 = (a12−a21−a22+a11)·b22
/// M3 = a12·b21                       M7 = a22·(b21−b22+b12−b11)
/// M4 = (a11−a21)(b22−b12)
/// c11 = M2+M3          c12 = M1+M2+M5+M6
/// c21 = M1+M2+M4+M7    c22 = M1+M2+M4+M5
/// ```
pub fn winograd() -> BaseGraph {
    let enc_a = enc(&[
        [-1, 0, 1, 1],  // a21+a22-a11
        [1, 0, 0, 0],   // a11
        [0, 1, 0, 0],   // a12
        [1, 0, -1, 0],  // a11-a21
        [0, 0, 1, 1],   // a21+a22
        [1, 1, -1, -1], // a12-a21-a22+a11
        [0, 0, 0, 1],   // a22
    ]);
    let enc_b = enc(&[
        [1, -1, 0, 1],  // b22-b12+b11
        [1, 0, 0, 0],   // b11
        [0, 0, 1, 0],   // b21
        [0, -1, 0, 1],  // b22-b12
        [-1, 1, 0, 0],  // b12-b11
        [0, 0, 0, 1],   // b22
        [-1, 1, 1, -1], // b21-b22+b12-b11
    ]);
    let dec = Matrix::from_fn(4, 7, |y, m| {
        let coeffs: [[i64; 7]; 4] = [
            [0, 1, 1, 0, 0, 0, 0], // c11 = M2+M3
            [1, 1, 0, 0, 1, 1, 0], // c12 = M1+M2+M5+M6
            [1, 1, 0, 1, 0, 0, 1], // c21 = M1+M2+M4+M7
            [1, 1, 0, 1, 1, 0, 0], // c22 = M1+M2+M4+M5
        ];
        r(coeffs[y][m])
    });
    BaseGraph::new("winograd", 2, enc_a, enc_b, dec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_cdag::base::Side;

    #[test]
    fn strassen_is_correct() {
        assert_eq!(strassen().verify_correctness(), Ok(()));
    }

    #[test]
    fn winograd_is_correct() {
        assert_eq!(winograd().verify_correctness(), Ok(()));
    }

    #[test]
    fn strassen_parameters() {
        let s = strassen();
        assert_eq!((s.n0(), s.a(), s.b()), (2, 4, 7));
        assert!(s.is_fast());
        assert!((s.omega0() - 7f64.log2()).abs() < 1e-12);
    }

    #[test]
    fn strassen_satisfies_paper_assumptions() {
        let s = strassen();
        assert!(s.single_use_assumption_holds());
        assert!(s.lemma1_condition_holds());
    }

    #[test]
    fn strassen_has_copying_but_not_multiple() {
        // b11 appears bare in M2 only, b22 in M5 only, a11 in M3 only,
        // a22 in M4 only: single copying, no branching.
        let s = strassen();
        assert!(s.row_is_trivial(Side::A, 2)); // M3's A side = a11
        assert!(s.row_is_trivial(Side::B, 1)); // M2's B side = b11
        assert!(!s.has_multiple_copying());
    }

    #[test]
    fn winograd_differs_from_strassen() {
        let (s, w) = (strassen(), winograd());
        assert_eq!((w.n0(), w.b()), (2, 7));
        assert!(w.is_fast());
        // Different encodings (as matrices).
        assert!(!s.enc(Side::A).exactly_equals(w.enc(Side::A)));
    }

    #[test]
    fn flattened_addition_counts() {
        // Adds per step in *flattened* (single-layer encoding) form:
        // nnz(enc_a) - b + nnz(enc_b) - b + nnz(dec) - a. Winograd's famous
        // 15-addition count relies on sharing staged sums (S1, T2, …), which
        // the flat base-graph form deliberately does not model — flattened,
        // Strassen is the leaner of the two.
        let count = |g: &BaseGraph| {
            g.enc(Side::A).nnz() + g.enc(Side::B).nnz() + g.dec().nnz() - 2 * g.b() - g.a()
        };
        assert_eq!(count(&strassen()), 18);
        assert_eq!(count(&winograd()), 24);
    }
}
