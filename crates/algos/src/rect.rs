//! Rectangular bilinear matrix-multiplication algorithms `⟨m,k,n;b⟩`.
//!
//! The paper's Previous Work section contrasts its square-only setting
//! with the rectangular algorithms of Bini et al. and Hopcroft–Kerr,
//! handled by the edge-expansion extension [4]. This module provides the
//! rectangular substrate those references live in:
//!
//! - general `⟨m,k,n;b⟩` algorithms with exact tensor verification;
//! - the classical `⟨m,k,n;mkn⟩` algorithm;
//! - **direct sums**: `⟨m,k,n₁;b₁⟩ ⊕ ⟨m,k,n₂;b₂⟩ = ⟨m,k,n₁+n₂;b₁+b₂⟩`,
//!   which builds an *optimal* `⟨2,2,3;11⟩` from Strassen ⊕ classical —
//!   11 is the rank Hopcroft–Kerr proved minimal for this shape;
//! - **cyclic rotation** `⟨m,k,n⟩ → ⟨k,n,m⟩` (the tensor symmetry);
//! - **tensor products**, and the classical *square-ization*
//!   `alg ⊗ rot(alg) ⊗ rot²(alg) = ⟨mkn,mkn,mkn;b³⟩`, which turns the
//!   `⟨2,2,3;11⟩` into a fast square `⟨12,12,12;1331⟩` base graph
//!   (`ω₀ = 3·log₁₂ 11 ≈ 2.894`) — the Hopcroft–Kerr family as a
//!   [`BaseGraph`] the whole lower-bound pipeline accepts.

use crate::verify::verify_bilinear_randomized;
use mmio_cdag::base::Side;
use mmio_cdag::BaseGraph;
use mmio_matrix::{Matrix, Rational};
use rand::Rng;

/// A bilinear algorithm computing `C (m×n) = A (m×k) · B (k×n)` with `b`
/// products. Entry flattening is row-major per operand.
#[derive(Clone)]
pub struct RectAlgorithm {
    name: String,
    m: usize,
    k: usize,
    n: usize,
    /// `b × (m·k)`.
    enc_a: Matrix<Rational>,
    /// `b × (k·n)`.
    enc_b: Matrix<Rational>,
    /// `(m·n) × b`.
    dec: Matrix<Rational>,
}

impl RectAlgorithm {
    /// Creates an algorithm from its coefficient matrices.
    ///
    /// # Panics
    /// Panics on inconsistent dimensions.
    pub fn new(
        name: impl Into<String>,
        (m, k, n): (usize, usize, usize),
        enc_a: Matrix<Rational>,
        enc_b: Matrix<Rational>,
        dec: Matrix<Rational>,
    ) -> RectAlgorithm {
        let b = enc_a.rows();
        assert!(m * k * n > 0, "dimensions must be positive");
        assert_eq!(enc_a.cols(), m * k, "enc_a must be b × mk");
        assert_eq!(enc_b.rows(), b);
        assert_eq!(enc_b.cols(), k * n, "enc_b must be b × kn");
        assert_eq!(dec.rows(), m * n, "dec must be mn × b");
        assert_eq!(dec.cols(), b);
        RectAlgorithm {
            name: name.into(),
            m,
            k,
            n,
            enc_a,
            enc_b,
            dec,
        }
    }

    /// The shape `(m, k, n)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.m, self.k, self.n)
    }

    /// The number of products.
    pub fn b(&self) -> usize {
        self.enc_a.rows()
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Wraps a square base graph as a rectangular algorithm.
    pub fn from_square(base: &BaseGraph) -> RectAlgorithm {
        RectAlgorithm {
            name: base.name().to_string(),
            m: base.n0(),
            k: base.n0(),
            n: base.n0(),
            enc_a: base.enc(Side::A).clone(),
            enc_b: base.enc(Side::B).clone(),
            dec: base.dec().clone(),
        }
    }

    /// Converts back to a square [`BaseGraph`] (requires `m = k = n`).
    ///
    /// # Panics
    /// Panics if the shape is not square.
    pub fn to_square(&self, name: impl Into<String>) -> BaseGraph {
        assert!(
            self.m == self.k && self.k == self.n,
            "to_square requires m = k = n"
        );
        BaseGraph::new(
            name,
            self.m,
            self.enc_a.clone(),
            self.enc_b.clone(),
            self.dec.clone(),
        )
    }

    /// Exact tensor verification: for all `(i,l), (l',j), (i',j')`,
    /// `Σ_μ dec[(i',j')][μ]·enc_a[μ][(i,l)]·enc_b[μ][(l',j)] =
    /// [i=i'][j=j'][l=l']`.
    pub fn verify_correctness(&self) -> Result<(), usize> {
        let mut violations = 0;
        for i in 0..self.m {
            for l in 0..self.k {
                for l2 in 0..self.k {
                    for j in 0..self.n {
                        for i2 in 0..self.m {
                            for j2 in 0..self.n {
                                let x = i * self.k + l;
                                let z = l2 * self.n + j;
                                let y = i2 * self.n + j2;
                                let got: Rational = (0..self.b())
                                    .map(|mu| {
                                        self.dec[(y, mu)]
                                            * self.enc_a[(mu, x)]
                                            * self.enc_b[(mu, z)]
                                    })
                                    .sum();
                                let want = if i == i2 && j == j2 && l == l2 {
                                    Rational::ONE
                                } else {
                                    Rational::ZERO
                                };
                                if got != want {
                                    violations += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
        if violations == 0 {
            Ok(())
        } else {
            Err(violations)
        }
    }

    /// Randomized verification for shapes too large for the exhaustive
    /// check: evaluates the bilinear form on random integer matrices and
    /// compares with the classical product. A wrong algorithm fails with
    /// overwhelming probability per sample.
    pub fn verify_randomized<R: Rng>(&self, samples: usize, rng: &mut R) -> bool {
        verify_bilinear_randomized(
            (self.m, self.k, self.n),
            &self.enc_a,
            &self.enc_b,
            &self.dec,
            samples,
            rng,
        )
    }

    /// Applies the algorithm once to block matrices: `A` is `(m·s) × (k·s)`,
    /// `B` is `(k·s) × (n·s)`; inner `s×s` blocks multiply classically.
    pub fn apply(&self, a: &Matrix<Rational>, b: &Matrix<Rational>) -> Matrix<Rational> {
        let s = a.rows() / self.m;
        assert_eq!(a.rows(), self.m * s, "A row blocking");
        assert_eq!(a.cols(), self.k * s, "A col blocking");
        assert_eq!(b.rows(), self.k * s, "B row blocking");
        assert_eq!(b.cols(), self.n * s, "B col blocking");
        let block = |mat: &Matrix<Rational>, bi: usize, bj: usize| mat.block(bi * s, bj * s, s, s);

        let mut out = Matrix::zeros(self.m * s, self.n * s);
        let mut products = Vec::with_capacity(self.b());
        for mu in 0..self.b() {
            let mut sa = Matrix::zeros(s, s);
            for i in 0..self.m {
                for l in 0..self.k {
                    let c = self.enc_a[(mu, i * self.k + l)];
                    if !c.is_zero() {
                        sa = sa.add_ref(&block(a, i, l).scale(c));
                    }
                }
            }
            let mut sb = Matrix::zeros(s, s);
            for l in 0..self.k {
                for j in 0..self.n {
                    let c = self.enc_b[(mu, l * self.n + j)];
                    if !c.is_zero() {
                        sb = sb.add_ref(&block(b, l, j).scale(c));
                    }
                }
            }
            products.push(mmio_matrix::classical::multiply_naive(&sa, &sb));
        }
        for i in 0..self.m {
            for j in 0..self.n {
                let mut acc = Matrix::zeros(s, s);
                for (mu, p) in products.iter().enumerate() {
                    let c = self.dec[(i * self.n + j, mu)];
                    if !c.is_zero() {
                        acc = acc.add_ref(&p.scale(c));
                    }
                }
                out.set_block(i * s, j * s, &acc);
            }
        }
        out
    }

    /// The cyclic tensor rotation `⟨m,k,n⟩ → ⟨k,n,m⟩`: reinterpret the
    /// trilinear form `Σ a_{il}·b_{lj}·c_{ij}` with `(A,B,C) → (B, Cᵀ, Aᵀ)`.
    pub fn rotate(&self) -> RectAlgorithm {
        let (m, k, n) = (self.m, self.k, self.n);
        let b = self.b();
        // New A' = old B (k×n): coefficients unchanged.
        let enc_a = self.enc_b.clone();
        // New B' = old Cᵀ (n×m): enc_b'[μ][(j,i)] = dec[(i,j)][μ].
        let enc_b = Matrix::from_fn(b, n * m, |mu, zi| {
            let (j, i) = (zi / m, zi % m);
            self.dec[(i * n + j, mu)]
        });
        // New C' = old Aᵀ (k×m): dec'[(l,i)][μ] = enc_a[μ][(i,l)].
        let dec = Matrix::from_fn(k * m, b, |yi, mu| {
            let (l, i) = (yi / m, yi % m);
            self.enc_a[(mu, i * k + l)]
        });
        RectAlgorithm {
            name: format!("rot({})", self.name),
            m: k,
            k: n,
            n: m,
            enc_a,
            enc_b,
            dec,
        }
    }

    /// Tensor product: `⟨m,k,n;b⟩ ⊗ ⟨m',k',n';b'⟩ = ⟨mm',kk',nn';bb'⟩`.
    pub fn tensor(&self, other: &RectAlgorithm) -> RectAlgorithm {
        let (m1, k1, n1) = self.dims();
        let (m2, k2, n2) = other.dims();
        let (m, k, n) = (m1 * m2, k1 * k2, n1 * n2);
        let b = self.b() * other.b();
        // Combined entry index: rows/cols compose as (outer, inner).
        let enc_a = Matrix::from_fn(b, m * k, |mu, x| {
            let (mu1, mu2) = (mu / other.b(), mu % other.b());
            let (row, col) = (x / k, x % k);
            let (i1, i2) = (row / m2, row % m2);
            let (l1, l2) = (col / k2, col % k2);
            self.enc_a[(mu1, i1 * k1 + l1)] * other.enc_a[(mu2, i2 * k2 + l2)]
        });
        let enc_b = Matrix::from_fn(b, k * n, |mu, z| {
            let (mu1, mu2) = (mu / other.b(), mu % other.b());
            let (row, col) = (z / n, z % n);
            let (l1, l2) = (row / k2, row % k2);
            let (j1, j2) = (col / n2, col % n2);
            self.enc_b[(mu1, l1 * n1 + j1)] * other.enc_b[(mu2, l2 * n2 + j2)]
        });
        let dec = Matrix::from_fn(m * n, b, |y, mu| {
            let (mu1, mu2) = (mu / other.b(), mu % other.b());
            let (row, col) = (y / n, y % n);
            let (i1, i2) = (row / m2, row % m2);
            let (j1, j2) = (col / n2, col % n2);
            self.dec[(i1 * n1 + j1, mu1)] * other.dec[(i2 * n2 + j2, mu2)]
        });
        RectAlgorithm {
            name: format!("{}⊗{}", self.name, other.name),
            m,
            k,
            n,
            enc_a,
            enc_b,
            dec,
        }
    }

    /// Direct sum along the `n` dimension: computes
    /// `C = A·[B₁ | B₂]` as `[self(A,B₁) | other(A,B₂)]`, giving
    /// `⟨m,k,n₁+n₂; b₁+b₂⟩`. Both summands must share `(m, k)`.
    ///
    /// # Panics
    /// Panics on `(m, k)` mismatch.
    pub fn direct_sum_cols(&self, other: &RectAlgorithm) -> RectAlgorithm {
        assert_eq!(
            (self.m, self.k),
            (other.m, other.k),
            "direct sum requires matching (m, k)"
        );
        let (m, k) = (self.m, self.k);
        let n = self.n + other.n;
        let b = self.b() + other.b();
        let enc_a = Matrix::from_fn(b, m * k, |mu, x| {
            if mu < self.b() {
                self.enc_a[(mu, x)]
            } else {
                other.enc_a[(mu - self.b(), x)]
            }
        });
        let enc_b = Matrix::from_fn(b, k * n, |mu, z| {
            let (l, j) = (z / n, z % n);
            if mu < self.b() {
                if j < self.n {
                    self.enc_b[(mu, l * self.n + j)]
                } else {
                    Rational::ZERO
                }
            } else if j >= self.n {
                other.enc_b[(mu - self.b(), l * other.n + (j - self.n))]
            } else {
                Rational::ZERO
            }
        });
        let dec = Matrix::from_fn(m * n, b, |y, mu| {
            let (i, j) = (y / n, y % n);
            if mu < self.b() {
                if j < self.n {
                    self.dec[(i * self.n + j, mu)]
                } else {
                    Rational::ZERO
                }
            } else if j >= self.n {
                other.dec[(i * other.n + (j - self.n), mu - self.b())]
            } else {
                Rational::ZERO
            }
        });
        RectAlgorithm {
            name: format!("{}⊕{}", self.name, other.name),
            m,
            k,
            n,
            enc_a,
            enc_b,
            dec,
        }
    }

    /// The classical square-ization: `self ⊗ rot(self) ⊗ rot²(self)` is a
    /// square `⟨mkn, mkn, mkn; b³⟩` algorithm.
    pub fn squarize(&self, name: impl Into<String>) -> BaseGraph {
        let r1 = self.rotate();
        let r2 = r1.rotate();
        self.tensor(&r1).tensor(&r2).to_square(name)
    }
}

/// The classical `⟨m,k,n; mkn⟩` algorithm.
pub fn classical_rect(m: usize, k: usize, n: usize) -> RectAlgorithm {
    let b = m * k * n;
    let mut enc_a = Matrix::zeros(b, m * k);
    let mut enc_b = Matrix::zeros(b, k * n);
    let mut dec = Matrix::zeros(m * n, b);
    let mut mu = 0;
    for i in 0..m {
        for j in 0..n {
            for l in 0..k {
                enc_a[(mu, i * k + l)] = Rational::ONE;
                enc_b[(mu, l * n + j)] = Rational::ONE;
                dec[(i * n + j, mu)] = Rational::ONE;
                mu += 1;
            }
        }
    }
    RectAlgorithm::new(
        format!("classical{m}x{k}x{n}"),
        (m, k, n),
        enc_a,
        enc_b,
        dec,
    )
}

/// An optimal `⟨2,2,3;11⟩` algorithm: Strassen on the first two columns of
/// `B`, classical `⟨2,2,1;4⟩` on the third — 11 products, the rank
/// Hopcroft–Kerr [11] proved minimal for this shape.
pub fn rect_2x2x3() -> RectAlgorithm {
    let strassen = RectAlgorithm::from_square(&crate::strassen::strassen());
    let col = classical_rect(2, 2, 1);
    let mut sum = strassen.direct_sum_cols(&col);
    sum.name = "hopcroft-kerr-11".to_string();
    sum
}

/// The Hopcroft–Kerr-family fast *square* algorithm: `⟨12,12,12;1331⟩`
/// from squarizing [`rect_2x2x3`], `ω₀ = 3·log₁₂ 11 ≈ 2.895 < 3`.
/// Verified by randomized evaluation (the exhaustive tensor check at
/// `n₀ = 12` is out of reach; correctness also follows structurally from
/// the verified factors).
pub fn hopcroft_kerr_square() -> BaseGraph {
    rect_2x2x3().squarize("hopcroft-kerr-12")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn classical_rect_correct() {
        for (m, k, n) in [(1, 1, 1), (2, 2, 2), (2, 3, 4), (3, 2, 2)] {
            assert_eq!(
                classical_rect(m, k, n).verify_correctness(),
                Ok(()),
                "{m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn from_square_roundtrip() {
        let s = RectAlgorithm::from_square(&crate::strassen::strassen());
        assert_eq!(s.dims(), (2, 2, 2));
        assert_eq!(s.verify_correctness(), Ok(()));
        let back = s.to_square("strassen-back");
        assert_eq!(back.verify_correctness(), Ok(()));
    }

    #[test]
    fn rotation_preserves_correctness() {
        let alg = classical_rect(2, 3, 4);
        let r = alg.rotate();
        assert_eq!(r.dims(), (3, 4, 2));
        assert_eq!(r.verify_correctness(), Ok(()));
        // Three rotations come back to the original shape.
        let r3 = r.rotate().rotate();
        assert_eq!(r3.dims(), (2, 3, 4));
        assert_eq!(r3.verify_correctness(), Ok(()));
    }

    #[test]
    fn rotation_of_strassen_correct() {
        let s = RectAlgorithm::from_square(&crate::strassen::strassen());
        assert_eq!(s.rotate().verify_correctness(), Ok(()));
    }

    #[test]
    fn tensor_of_rectangles_correct() {
        let t = classical_rect(2, 1, 2).tensor(&classical_rect(1, 2, 1));
        assert_eq!(t.dims(), (2, 2, 2));
        assert_eq!(t.b(), 4 * 2);
        assert_eq!(t.verify_correctness(), Ok(()));
    }

    #[test]
    fn hopcroft_kerr_11_is_correct_and_minimal_rank() {
        let hk = rect_2x2x3();
        assert_eq!(hk.dims(), (2, 2, 3));
        assert_eq!(hk.b(), 11, "the optimal rank for ⟨2,2,3⟩");
        assert_eq!(hk.verify_correctness(), Ok(()));
    }

    #[test]
    fn hk_beats_classical_product_count() {
        assert!(rect_2x2x3().b() < classical_rect(2, 2, 3).b());
    }

    #[test]
    fn apply_matches_classical() {
        let hk = rect_2x2x3();
        let mut rng = StdRng::seed_from_u64(9);
        let a = mmio_matrix::random::random_i64_matrix(4, 4, &mut rng).map(Rational::integer);
        let b = mmio_matrix::random::random_i64_matrix(4, 6, &mut rng).map(Rational::integer);
        let got = hk.apply(&a, &b);
        let want = mmio_matrix::classical::multiply_naive(&a, &b);
        assert!(got.exactly_equals(&want));
    }

    #[test]
    fn squarized_hk_parameters_and_randomized_check() {
        let sq = hopcroft_kerr_square();
        assert_eq!((sq.n0(), sq.b()), (12, 1331));
        assert!(sq.is_fast());
        let expected = 3.0 * (11f64).ln() / (12f64).ln();
        assert!((sq.omega0() - expected).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(11);
        assert!(crate::verify::verify_base_graph_randomized(
            &sq, 3, &mut rng
        ));
    }

    #[test]
    fn small_squarize_verifies_exactly() {
        // ⟨1,1,2;2⟩ squarizes to ⟨2,2,2;8⟩ — small enough for the exact
        // tensor check, validating the squarize plumbing end to end.
        let alg = classical_rect(1, 1, 2);
        let sq = alg.squarize("squarized-112");
        assert_eq!((sq.n0(), sq.b()), (2, 8));
        assert_eq!(sq.verify_correctness(), Ok(()));
    }

    #[test]
    #[should_panic(expected = "matching (m, k)")]
    fn direct_sum_shape_checked() {
        let _ = classical_rect(2, 2, 1).direct_sum_cols(&classical_rect(3, 2, 1));
    }
}
