//! # mmio-algos
//!
//! A library of concrete Strassen-like base graphs, all *symbolically
//! verified* against the matrix-multiplication tensor, plus a generic
//! recursive executor that runs any base graph on real matrices.
//!
//! Included algorithms:
//!
//! - [`strassen::strassen`] — Strassen's 1969 ⟨2,2,2;7⟩ scheme (the paper's
//!   running example, Figure 1).
//! - [`strassen::winograd`] — Winograd's 7-multiplication variant (same
//!   `(a,b)`, different base graph; 15 additions instead of 18).
//! - [`classical::classical`] — the classical ⟨n₀,n₀,n₀;n₀³⟩ algorithm for
//!   any `n₀`. Not *fast* (`ω₀ = 3`), but it is exactly the case that breaks
//!   the edge-expansion technique: its decoding graph is disconnected and
//!   its inputs are multiply copied — so it exercises the full generality of
//!   the path-routing machinery.
//! - [`laderman::laderman`] — Laderman's 1976 ⟨3,3,3;23⟩ algorithm
//!   (`ω₀ ≈ 2.854`). Its decoding matrix is *derived* by exact linear
//!   solving against the tensor rather than transcribed, so correctness is
//!   by construction.
//! - tensor powers (e.g. [`registry::strassen_squared`], ⟨4,4,4;49⟩) and
//!   [`synthetic`] variants exercising disconnected decoding graphs,
//!   suppressed copying, and single-use violations.
//!
//! The [`executor`] module runs any base graph recursively on matrices over
//! any scalar type, with exact arithmetic-operation counting — the
//! `Θ(n^{ω₀})` in Theorem 1 made measurable.
//!
//! ```
//! use mmio_algos::{strassen::strassen, Executor};
//! use mmio_matrix::Matrix;
//!
//! let base = strassen();
//! assert!(base.is_fast()); // ω₀ = log₂7 < 3
//! let exec = Executor::new(base, 1);
//! let a = Matrix::from_fn(8, 8, |i, j| (i * 8 + j) as i64);
//! let (c, counts) = exec.multiply_counted(&a, &Matrix::identity(8));
//! assert!(c.exactly_equals(&a));
//! assert_eq!(counts.leaf_mults, 343); // 7³ scalar multiplications
//! ```

#![forbid(unsafe_code)]

pub mod classical;
pub mod counts;
pub mod executor;
pub mod laderman;
pub mod rect;
pub mod registry;
pub mod strassen;
pub mod synthetic;
pub mod transform;
pub mod verify;

pub use executor::Executor;
