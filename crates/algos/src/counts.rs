//! Closed-form arithmetic-complexity formulas for Strassen-like algorithms.
//!
//! A base graph with `a = n₀²` inputs per matrix and `b` multiplications,
//! run for `r` levels, performs `b^r` leaf multiplications and
//! `Θ(n^{ω₀})` total operations with `ω₀ = 2·log_a b = log_{n₀} b`. These
//! formulas calibrate the lower bounds of Theorem 1 and the vertex counts
//! of `G_r`.

use mmio_cdag::BaseGraph;

/// `b^r`: scalar multiplications of a full recursion.
pub fn multiplications(base: &BaseGraph, r: u32) -> u64 {
    (base.b() as u64)
        .checked_pow(r)
        .expect("multiplication count overflow")
}

/// Total vertex count of `G_r`:
/// `2·Σ_{t=0}^{r} b^t·a^{r-t} + Σ_{k=0}^{r} b^{r-k}·a^k`.
pub fn cdag_vertices(base: &BaseGraph, r: u32) -> u64 {
    let (a, b) = (base.a() as u64, base.b() as u64);
    let enc_side: u64 = (0..=r).map(|t| b.pow(t) * a.pow(r - t)).sum();
    let dec: u64 = (0..=r).map(|k| b.pow(r - k) * a.pow(k)).sum();
    2 * enc_side + dec
}

/// `Θ(n^{ω₀})` evaluated literally: `n^{ω₀}` for `n = n₀^r`.
pub fn arithmetic_estimate(base: &BaseGraph, r: u32) -> f64 {
    let n = (base.n0() as f64).powi(r as i32);
    n.powf(base.omega0())
}

/// Number of vertices on decoding rank `k` of `G_r`: `a^k·b^{r-k}`
/// (Section 5 counts these to size its segments).
pub fn decoding_rank_size(base: &BaseGraph, r: u32, k: u32) -> u64 {
    assert!(k <= r);
    (base.a() as u64).pow(k) * (base.b() as u64).pow(r - k)
}

/// Number of counted vertices for the Section 6 argument: decoding rank `k`
/// plus encoding rank `r-k` of both sides, `3·a^k·b^{r-k}` in total.
pub fn counted_rank_size(base: &BaseGraph, r: u32, k: u32) -> u64 {
    3 * decoding_rank_size(base, r, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strassen::strassen;
    use mmio_cdag::build::build_cdag;

    #[test]
    fn vertex_formula_matches_builder() {
        let base = strassen();
        for r in 0..=4 {
            let g = build_cdag(&base, r);
            assert_eq!(cdag_vertices(&base, r), g.n_vertices() as u64, "r={r}");
        }
    }

    #[test]
    fn multiplications_formula() {
        let base = strassen();
        assert_eq!(multiplications(&base, 0), 1);
        assert_eq!(multiplications(&base, 5), 16807);
    }

    #[test]
    fn b_pow_r_equals_n_pow_omega0() {
        // b^r = (n₀^r)^{ω₀} exactly, since ω₀ = log_{n₀} b.
        let base = strassen();
        for r in 1..=6u32 {
            let exact = multiplications(&base, r) as f64;
            let estimate = arithmetic_estimate(&base, r);
            assert!((exact - estimate).abs() / exact < 1e-9, "r={r}");
        }
    }

    #[test]
    fn rank_sizes() {
        let base = strassen();
        let g = build_cdag(&base, 3);
        for k in 0..=3 {
            assert_eq!(
                decoding_rank_size(&base, 3, k),
                g.segment_len(mmio_cdag::Layer::Dec, k)
            );
        }
        assert_eq!(counted_rank_size(&base, 3, 1), 3 * 4 * 49);
    }
}
