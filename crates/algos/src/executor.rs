//! Generic recursive executor: runs *any* base graph on real matrices.
//!
//! One recursion step splits each operand into `n₀²` blocks, forms the `b`
//! encoded block combinations per side, recursively multiplies them, and
//! decodes the results. This is precisely the computation whose CDAG
//! `mmio-cdag` builds, and the two are cross-checked in tests: executing the
//! algorithm and evaluating the CDAG give identical outputs.

use mmio_cdag::base::Side;
use mmio_cdag::BaseGraph;
use mmio_matrix::block::{join_blocks, split_blocks};
use mmio_matrix::classical::multiply_naive;
use mmio_matrix::{Matrix, Scalar};

/// Exact arithmetic-operation counts of one execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Scalar multiplications performed at recursion leaves.
    pub leaf_mults: u64,
    /// Scalar additions/subtractions (encoding, decoding, and leaves).
    pub adds: u64,
    /// Scalar multiplications by non-`±1` combination coefficients.
    pub scales: u64,
}

impl OpCounts {
    /// Total scalar operations.
    pub fn total(&self) -> u64 {
        self.leaf_mults + self.adds + self.scales
    }
}

/// A recursive bilinear-algorithm executor for a fixed base graph.
#[derive(Clone)]
pub struct Executor {
    base: BaseGraph,
    /// Recursion stops when the side is `≤ cutoff` (or not divisible by n₀).
    cutoff: usize,
}

impl Executor {
    /// Creates an executor recursing down to sides of `cutoff`.
    ///
    /// # Panics
    /// Panics if `cutoff == 0`.
    pub fn new(base: BaseGraph, cutoff: usize) -> Executor {
        assert!(cutoff > 0, "cutoff must be positive");
        Executor { base, cutoff }
    }

    /// The base graph being executed.
    pub fn base(&self) -> &BaseGraph {
        &self.base
    }

    /// Multiplies two square matrices.
    ///
    /// # Panics
    /// Panics unless both operands are square with equal side.
    pub fn multiply<T: Scalar>(&self, a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
        self.multiply_counted(a, b).0
    }

    /// Multiplies and reports exact operation counts.
    pub fn multiply_counted<T: Scalar>(
        &self,
        a: &Matrix<T>,
        b: &Matrix<T>,
    ) -> (Matrix<T>, OpCounts) {
        assert!(
            a.is_square() && b.is_square() && a.rows() == b.rows(),
            "operands must be square with equal side"
        );
        let mut counts = OpCounts::default();
        let c = self.rec(a, b, &mut counts);
        (c, counts)
    }

    fn rec<T: Scalar>(&self, a: &Matrix<T>, b: &Matrix<T>, counts: &mut OpCounts) -> Matrix<T> {
        let n = a.rows();
        let n0 = self.base.n0();
        if n <= self.cutoff || !n.is_multiple_of(n0) || n0 == 1 {
            counts.leaf_mults += (n * n * n) as u64;
            counts.adds += (n * n * (n.saturating_sub(1))) as u64;
            return multiply_naive(a, b);
        }
        let blocks_a = split_blocks(a, n0);
        let blocks_b = split_blocks(b, n0);
        let s = n / n0;

        let encode = |rows: &Matrix<mmio_matrix::Rational>,
                      blocks: &[Matrix<T>],
                      m: usize,
                      counts: &mut OpCounts|
         -> Matrix<T> {
            let mut acc: Option<Matrix<T>> = None;
            for x in 0..self.base.a() {
                let coeff = rows[(m, x)];
                if coeff.is_zero() {
                    continue;
                }
                let term = if coeff.is_one() {
                    blocks[x].clone()
                } else {
                    counts.scales += (s * s) as u64;
                    blocks[x].scale(T::from_rational(coeff))
                };
                acc = Some(match acc {
                    None => term,
                    Some(prev) => {
                        counts.adds += (s * s) as u64;
                        prev.add_ref(&term)
                    }
                });
            }
            acc.unwrap_or_else(|| Matrix::zeros(s, s))
        };

        // Products.
        let mut prods = Vec::with_capacity(self.base.b());
        for m in 0..self.base.b() {
            let sa = encode(self.base.enc(Side::A), &blocks_a, m, counts);
            let sb = encode(self.base.enc(Side::B), &blocks_b, m, counts);
            prods.push(self.rec(&sa, &sb, counts));
        }

        // Decode.
        let dec = self.base.dec();
        let mut out_blocks = Vec::with_capacity(self.base.a());
        for y in 0..self.base.a() {
            let mut acc: Option<Matrix<T>> = None;
            for (m, prod) in prods.iter().enumerate() {
                let coeff = dec[(y, m)];
                if coeff.is_zero() {
                    continue;
                }
                let term = if coeff.is_one() {
                    prod.clone()
                } else {
                    counts.scales += (s * s) as u64;
                    prod.scale(T::from_rational(coeff))
                };
                acc = Some(match acc {
                    None => term,
                    Some(prev) => {
                        counts.adds += (s * s) as u64;
                        prev.add_ref(&term)
                    }
                });
            }
            out_blocks.push(acc.unwrap_or_else(|| Matrix::zeros(s, s)));
        }
        join_blocks(&out_blocks, n0)
    }

    /// Closed-form leaf-multiplication count for a full recursion on side
    /// `n₀^r` with cutoff 1: `b^r`.
    pub fn full_recursion_mults(&self, r: u32) -> u64 {
        (self.base.b() as u64).pow(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classical::classical;
    use crate::laderman::laderman;
    use crate::strassen::{strassen, winograd};
    use crate::synthetic::{with_dummy_product, without_copying};
    use mmio_matrix::random::random_i64_matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_against_naive(base: BaseGraph, n: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_i64_matrix(n, n, &mut rng);
        let b = random_i64_matrix(n, n, &mut rng);
        let exec = Executor::new(base.clone(), 1);
        let got = exec.multiply(&a, &b);
        let want = multiply_naive(&a, &b);
        assert!(got.exactly_equals(&want), "{} at n={n}", base.name());
    }

    #[test]
    fn all_base_graphs_execute_correctly() {
        check_against_naive(strassen(), 8, 1);
        check_against_naive(winograd(), 8, 2);
        check_against_naive(classical(2), 8, 3);
        check_against_naive(classical(3), 9, 4);
        check_against_naive(laderman(), 9, 5);
        check_against_naive(with_dummy_product(&strassen()), 8, 6);
        // `without_copying` has a rational (1/4) decoder: exercised over
        // Rational scalars in `rational_coefficients_need_rational_scalars`.
        check_against_naive(strassen().tensor(&strassen()), 16, 8);
    }

    #[test]
    fn rational_coefficients_need_rational_scalars() {
        // without_copying uses 1/4 in the decoder: run it over Rational.
        let base = without_copying(&strassen());
        let mut rng = StdRng::seed_from_u64(11);
        let ai = random_i64_matrix(4, 4, &mut rng);
        let bi = random_i64_matrix(4, 4, &mut rng);
        let a = ai.map(mmio_matrix::Rational::integer);
        let b = bi.map(mmio_matrix::Rational::integer);
        let exec = Executor::new(base, 1);
        let got = exec.multiply(&a, &b);
        let want = multiply_naive(&ai, &bi).map(mmio_matrix::Rational::integer);
        assert!(got.exactly_equals(&want));
    }

    #[test]
    fn leaf_mult_counts_match_theory() {
        let exec = Executor::new(strassen(), 1);
        let mut rng = StdRng::seed_from_u64(17);
        for r in 1..=4u32 {
            let n = 2usize.pow(r);
            let a = random_i64_matrix(n, n, &mut rng);
            let b = random_i64_matrix(n, n, &mut rng);
            let (_, counts) = exec.multiply_counted(&a, &b);
            assert_eq!(counts.leaf_mults, 7u64.pow(r), "r={r}");
            assert_eq!(counts.leaf_mults, exec.full_recursion_mults(r));
        }
    }

    #[test]
    fn classical_base_graph_counts_are_cubic() {
        let exec = Executor::new(classical(2), 1);
        let mut rng = StdRng::seed_from_u64(19);
        let a = random_i64_matrix(8, 8, &mut rng);
        let b = random_i64_matrix(8, 8, &mut rng);
        let (_, counts) = exec.multiply_counted(&a, &b);
        assert_eq!(counts.leaf_mults, 512);
    }

    #[test]
    fn cutoff_switches_to_classical_leaves() {
        let exec = Executor::new(strassen(), 4);
        let mut rng = StdRng::seed_from_u64(23);
        let a = random_i64_matrix(8, 8, &mut rng);
        let b = random_i64_matrix(8, 8, &mut rng);
        let (c, counts) = exec.multiply_counted(&a, &b);
        // One recursion level (8 -> 4), then 7 classical 4×4 leaves.
        assert_eq!(counts.leaf_mults, 7 * 64);
        assert!(c.exactly_equals(&multiply_naive(&a, &b)));
    }

    #[test]
    fn executor_agrees_with_cdag_evaluation() {
        use mmio_cdag::build::build_cdag;
        use mmio_cdag::traversal::eval_outputs;
        let base = strassen();
        let g = build_cdag(&base, 2);
        let mut rng = StdRng::seed_from_u64(29);
        let a = random_i64_matrix(4, 4, &mut rng);
        let b = random_i64_matrix(4, 4, &mut rng);
        let from_graph = eval_outputs(&g, &a, &b);
        let from_exec = Executor::new(base, 1).multiply(&a, &b);
        assert!(from_graph.exactly_equals(&from_exec));
    }
}
