//! The one-call analysis API: run the whole paper on one base graph and
//! get a single serializable report — structural classification, routing
//! verification, and a certified lower-bound instance with its matching
//! upper-bound measurement.

use crate::claim1::DecodingRouting;
use crate::theorem1::{certify_with, Certificate, CertifyParams, LowerBound};
use crate::theorem2::InOutRouting;
use mmio_cdag::build::build_cdag;
use mmio_cdag::connectivity::{classify, BaseGraphProperties};
use mmio_cdag::stats::{profile, CdagProfile};
use mmio_cdag::BaseGraph;
use mmio_pebble::orders::recursive_order;
use mmio_pebble::policy::Belady;
use mmio_pebble::AutoScheduler;
use serde::Serialize;

/// Verification outcome of one routing construction.
#[derive(Clone, Debug, Serialize)]
pub struct RoutingReport {
    /// Claimed m-bound.
    pub bound: u64,
    /// Measured maximum vertex hits.
    pub max_vertex_hits: u64,
    /// Measured maximum meta-vertex hits.
    pub max_meta_hits: u64,
    /// Whether the claimed bound held.
    pub verified: bool,
}

/// The full analysis of one algorithm at one scale.
#[derive(Clone, Debug, Serialize)]
pub struct AlgorithmReport {
    /// Structural classification of the base graph.
    pub properties: BaseGraphProperties,
    /// CDAG profile at the analysis depth.
    pub profile: CdagProfile,
    /// Claim 1 routing (None when the decoding graph is disconnected —
    /// which is information, not failure).
    pub claim1: Option<RoutingReport>,
    /// Routing Theorem routing (None when no Hall matching exists, i.e.
    /// the paper's hypotheses fail).
    pub theorem2: Option<RoutingReport>,
    /// The certified lower-bound instance.
    pub certificate: Certificate,
    /// Measured I/O of the recursive schedule at the certificate's `M`.
    pub measured_io: u64,
    /// The closed-form Ω-expression at `(n, M)`.
    pub formula: f64,
}

/// Runs the full pipeline on `base` at recursion depth `r` and cache size
/// `m`, with [`CertifyParams::SMALL`] constants (laptop scale).
///
/// `routing_k` bounds the depth at which routings are *constructed and
/// verified* (path counts grow as `a^{2k}`); pass 1 or 2.
pub fn analyze(base: &BaseGraph, r: u32, m: u64, routing_k: u32) -> AlgorithmReport {
    let g = build_cdag(base, r);
    let gk = build_cdag(base, routing_k.min(r));
    let order = recursive_order(&g);

    let claim1 = DecodingRouting::new(&gk).map(|routing| {
        let stats = routing.verify();
        RoutingReport {
            bound: routing.claim1_bound(),
            max_vertex_hits: stats.max_vertex_hits,
            max_meta_hits: stats.max_meta_hits,
            verified: stats.is_m_routing(routing.claim1_bound()),
        }
    });
    let theorem2 = InOutRouting::new(&gk).map(|routing| {
        let stats = routing.verify();
        RoutingReport {
            bound: routing.theorem2_bound(),
            max_vertex_hits: stats.max_vertex_hits,
            max_meta_hits: stats.max_meta_hits,
            verified: stats.is_m_routing(routing.theorem2_bound()),
        }
    });

    let certificate = certify_with(&g, m, &order, CertifyParams::SMALL);
    let measured_io = AutoScheduler::new(&g, m as usize)
        .run(&order, &mut Belady)
        .io();
    AlgorithmReport {
        properties: classify(base),
        profile: profile(&g),
        claim1,
        theorem2,
        certificate,
        measured_io,
        formula: LowerBound::new(base).sequential_io(g.n(), m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_algos::classical::classical;
    use mmio_algos::strassen::strassen;

    #[test]
    fn strassen_report_is_fully_verified() {
        let report = analyze(&strassen(), 4, 8, 2);
        assert!(report.properties.is_fast);
        assert!(report.claim1.as_ref().unwrap().verified);
        assert!(report.theorem2.as_ref().unwrap().verified);
        assert!(report.certificate.analysis.certified_io <= report.measured_io);
        assert!(report.certificate.analysis.certified_io > 0);
    }

    #[test]
    fn classical_report_flags_disconnection() {
        let report = analyze(&classical(2), 3, 8, 1);
        assert!(report.claim1.is_none(), "disconnected decoding graph");
        assert!(!report.properties.is_fast);
    }

    #[test]
    fn report_serializes() {
        let report = analyze(&strassen(), 3, 8, 1);
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"certified_io\""));
        assert!(json.contains("\"omega0\""));
    }
}
