//! The segment argument (Sections 5 and 6): partition any computation
//! order into segments with enough *counted* vertices, show each segment
//! has a large meta-boundary, and convert boundary size into an I/O
//! certificate.
//!
//! Counted vertices (the set `S̄`) are those on decoding rank `k` and
//! encoding rank `r-k` (both sides) lying in the chosen mutually
//! input-disjoint subcomputations. The paper chooses `k` as the smallest
//! integer with `a^k ≥ 72M` and segments with `|S̄| = 36M`, then proves
//! `|δ'(S')| ≥ |S̄|/12 ≥ 3M`, of which at most `2M` can be free (already in
//! cache / allowed to stay), so each complete segment costs at least `M`
//! I/Os.

use mmio_cdag::{index, Cdag, CdagView, Layer, MetaVertices, VertexId, VertexRef};
use mmio_parallel::Pool;
use serde::Serialize;

/// The paper's choice of subcomputation depth for cache size `m`
/// (Section 6): smallest `k` with `a^k ≥ multiplier·m`, clamped into
/// `[1, r-2]` (the clamp is reported so callers can tell when `m` was too
/// large for this `r` and the asymptotic regime is not yet reached).
///
/// The paper uses `multiplier = 72` and notes it "did not optimize for the
/// constant factor"; smaller multipliers give certificates at smaller
/// scales (the ablation bench sweeps this).
pub fn choose_k<V: CdagView>(g: &V, m: u64, multiplier: u64) -> (u32, bool) {
    let a = g.a();
    let mut k = 1u32;
    while index::pow(a, k) < multiplier * m && k < 63 {
        k += 1;
    }
    if g.r() >= 3 && k <= g.r() - 2 {
        (k, true)
    } else {
        (1.min(g.r()), false)
    }
}

/// Membership mask of the counted ranks: encoding rank `r-k` (both sides)
/// and decoding rank `k`, restricted to subcomputations in `chosen`.
///
/// The counted vertices of subcomputation `i` are written in closed form
/// (the Fact-1 copy's `2a^k` inputs on encoding rank `r-k` and `a^k`
/// outputs on decoding rank `k`, `mul = i`), so this works over any
/// [`CdagView`] without materializing the graph.
pub fn counted_mask<V: CdagView>(g: &V, k: u32, chosen: &[u64]) -> Vec<bool> {
    let mut mask = vec![false; g.n_vertices()];
    let ak = index::pow(g.a(), k);
    let r = g.r();
    for &prefix in chosen {
        for layer in [Layer::EncA, Layer::EncB] {
            for entry in 0..ak {
                let v = g
                    .try_id(VertexRef {
                        layer,
                        level: r - k,
                        mul: prefix,
                        entry,
                    })
                    .expect("subcomputation input in range");
                mask[v.idx()] = true;
            }
        }
        for entry in 0..ak {
            let v = g
                .try_id(VertexRef {
                    layer: Layer::Dec,
                    level: k,
                    mul: prefix,
                    entry,
                })
                .expect("subcomputation output in range");
            mask[v.idx()] = true;
        }
    }
    mask
}

/// One segment's report.
#[derive(Clone, Debug, Serialize)]
pub struct SegmentReport {
    /// Segment bounds as indices into the compute order (`start..end`).
    pub start: usize,
    /// Exclusive end index.
    pub end: usize,
    /// `|S̄|`: counted vertices computed in this segment.
    pub counted: u64,
    /// `|δ'(S')|`: meta-vertices adjacent to the segment's meta-closure
    /// (the paper's Equation 2 quantity).
    pub meta_boundary: u64,
    /// `|R'(S')|`: meta-vertices outside the closure feeding it — each must
    /// be in cache during the segment (≤ M free, the rest loaded).
    pub read_metas: u64,
    /// `|W°(S')|`: meta-vertices *created* in this segment (root computed
    /// here) and needed after it — each must survive the segment (≤ M may
    /// stay cached, the rest stored). Disjoint across segments, so the
    /// per-segment charges sum soundly.
    pub write_metas: u64,
    /// Whether the segment is complete (reached the threshold).
    pub complete: bool,
}

/// Whole-run segment analysis.
#[derive(Clone, Debug, Serialize)]
pub struct SegmentAnalysis {
    /// Depth `k` used for counting.
    pub k: u32,
    /// Cache size the analysis certifies against.
    pub m: u64,
    /// Segment threshold `|S̄| ≥ 36M` (or caller-chosen).
    pub threshold: u64,
    /// Per-segment reports.
    pub segments: Vec<SegmentReport>,
    /// Number of complete segments.
    pub complete_segments: u64,
    /// The certified I/O lower bound
    /// `Σ_segments max(0, |R'| − M) + max(0, |W°| − M)`.
    pub certified_io: u64,
}

/// Partitions `order` into minimal segments each containing `threshold`
/// counted vertices (meta-closure included in `S`), computes `δ'(S')`,
/// `R'(S')`, and `W°(S')` per segment, and accumulates the I/O certificate.
///
/// The certificate charges, per segment: every meta-vertex read from
/// outside the closure beyond the `M` that may already sit in cache (one
/// load each), and every meta-vertex created in the segment and needed
/// later beyond the `M` that may remain in cache (one store each —
/// creation segments are unique per meta, so the charges are disjoint
/// I/O events).
pub fn analyze<V: CdagView + Sync>(
    g: &V,
    meta: &MetaVertices,
    order: &[VertexId],
    counted: &[bool],
    m: u64,
    threshold: u64,
    k: u32,
) -> SegmentAnalysis {
    analyze_with(g, meta, order, counted, m, threshold, k, &Pool::serial())
}

/// One segment's boundary and I/O quantities. `vs = order[start..end]` is
/// the segment's computed vertices; `pos` maps every vertex to its position
/// in the order (`u64::MAX` for inputs).
fn segment_report<V: CdagView>(
    g: &V,
    meta: &MetaVertices,
    pos: &[u64],
    vs: &[VertexId],
    (start, end, counted_n, complete): (usize, usize, u64, bool),
) -> SegmentReport {
    // Meta-closure membership mask.
    let mut in_closure = vec![false; g.n_vertices()];
    for &v in vs {
        for w in meta.members_of(v) {
            in_closure[w.idx()] = true;
        }
    }
    // δ'(S'): outside metas adjacent in either direction (Equation 2).
    let boundary = meta.meta_boundary(g, vs).len() as u64;
    // R'(S'): outside metas feeding vertices *computed in this
    // segment*. (Not the whole closure: a closure member computed in an
    // earlier segment needed its operands then, not now — charging them
    // again here would double-count loads and break soundness.)
    let mut read_roots = std::collections::HashSet::new();
    let mut adj: Vec<VertexId> = Vec::new();
    for &v in vs {
        adj.clear();
        g.preds_into(v, &mut adj);
        for &p in &adj {
            if !in_closure[p.idx()] {
                read_roots.insert(meta.meta_of(p));
            }
        }
    }
    // W°(S'): metas whose root is computed in this segment and that are
    // used after it (some member has a successor computed at position
    // ≥ end) or contain an output (which must eventually be stored).
    let end_pos = end as u64;
    let mut write_roots = std::collections::HashSet::new();
    for &v in vs {
        let root = meta.root_vertex(meta.meta_of(v));
        let rp = pos[root.idx()];
        if rp == u64::MAX || rp < start as u64 || rp >= end_pos {
            continue; // root is an input or computed in another segment
        }
        let needed_later = meta.members_of(root).into_iter().any(|member| {
            if g.is_output(member) {
                return true;
            }
            adj.clear();
            g.succs_into(member, &mut adj);
            adj.iter()
                .any(|&s| pos[s.idx()] != u64::MAX && pos[s.idx()] >= end_pos)
        });
        if needed_later {
            write_roots.insert(meta.meta_of(root));
        }
    }
    SegmentReport {
        start,
        end,
        counted: counted_n,
        meta_boundary: boundary,
        read_metas: read_roots.len() as u64,
        write_metas: write_roots.len() as u64,
        complete,
    }
}

/// [`analyze`] with the per-segment reports computed over `pool`.
///
/// Two phases: the segment *boundaries* come from a serial scan of the
/// order (the running counted-vertex counter is inherently sequential), and
/// then each segment's report — closure mask, `δ'(S')`, `R'(S')`, `W°(S')`,
/// the expensive part — is computed independently. [`Pool::map`] returns
/// results in segment order, so the analysis is byte-identical to the
/// serial path at any thread count.
#[allow(clippy::too_many_arguments)] // mirrors `analyze`, plus the pool
pub fn analyze_with<V: CdagView + Sync>(
    g: &V,
    meta: &MetaVertices,
    order: &[VertexId],
    counted: &[bool],
    m: u64,
    threshold: u64,
    k: u32,
    pool: &Pool,
) -> SegmentAnalysis {
    let n = g.n_vertices();
    // Position of each vertex's computation; inputs get position MAX-as-
    // "before everything" sentinel handled separately.
    let mut pos = vec![u64::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v.idx()] = i as u64;
    }

    // Phase 1 (serial): find the segment boundaries.
    let mut bounds: Vec<(usize, usize, u64, bool)> = Vec::new();
    let mut start = 0usize;
    let mut counted_in_segment = 0u64;
    let mut counted_seen = vec![false; n];
    for (i, &v) in order.iter().enumerate() {
        // Meta-closure: count every not-yet-counted counted-rank member of
        // v's meta-vertex.
        for w in meta.members_of(v) {
            if counted[w.idx()] && !counted_seen[w.idx()] {
                counted_seen[w.idx()] = true;
                counted_in_segment += 1;
            }
        }
        if counted_in_segment >= threshold {
            bounds.push((start, i + 1, counted_in_segment, true));
            start = i + 1;
            counted_in_segment = 0;
        }
    }
    if start < order.len() {
        bounds.push((start, order.len(), counted_in_segment, false));
    }

    // Phase 2 (parallel): per-segment reports, merged in segment order.
    let segments = pool.map(bounds.len(), |i| {
        let b = bounds[i];
        segment_report(g, meta, &pos, &order[b.0..b.1], b)
    });

    let complete_segments = segments.iter().filter(|s| s.complete).count() as u64;
    let certified_io = segments
        .iter()
        .map(|s| s.read_metas.saturating_sub(m) + s.write_metas.saturating_sub(m))
        .sum();
    SegmentAnalysis {
        k,
        m,
        threshold,
        segments,
        complete_segments,
        certified_io,
    }
}

/// Convenience: the number of counted-rank vertices available in total
/// (`3·a^k·b^{r-k}` before restriction, less after).
pub fn counted_total(counted: &[bool]) -> u64 {
    counted.iter().filter(|&&c| c).count() as u64
}

/// The Section 5 variant of the argument, exactly as stated for Strassen:
/// count only decoding-rank-`k` vertices (no subcomputation restriction
/// needed — the decoding graph has no copying, Lemma 2), segment at
/// `|S̄| = threshold`, and lower-bound the *vertex-level* boundary
/// `|δ(S)| ≥ |S̄|/22` per complete segment (Equation 1 with the paper's
/// constants; the 1/22 comes from the `11·7^k` routing).
///
/// Returns per-segment `(counted, |δ(S)|)` pairs for complete segments.
pub fn analyze_section5(g: &Cdag, order: &[VertexId], k: u32, threshold: u64) -> Vec<(u64, u64)> {
    // Counted mask: decoding rank k.
    let mut counted = vec![false; g.n_vertices()];
    for v in g.segment(Layer::Dec, k) {
        counted[v.idx()] = true;
    }
    let mut out = Vec::new();
    let mut segment: Vec<VertexId> = Vec::new();
    let mut counted_in_segment = 0u64;
    for &v in order {
        segment.push(v);
        if counted[v.idx()] {
            counted_in_segment += 1;
        }
        if counted_in_segment >= threshold {
            let mask = crate::boundary::mask_of(g, &segment);
            let delta = crate::boundary::boundary_size(g, &mask) as u64;
            out.push((counted_in_segment, delta));
            segment.clear();
            counted_in_segment = 0;
        }
    }
    out
}

/// Section 5's choice of `k` for Strassen-like graphs: smallest `k` with
/// `a^k ≥ multiplier·m` (the paper uses 132 = 2·66).
pub fn choose_k_section5(g: &Cdag, m: u64, multiplier: u64) -> u32 {
    let a = g.base().a();
    let mut k = 1u32;
    while index::pow(a, k) < multiplier * m && k < g.r() {
        k += 1;
    }
    k.min(g.r())
}

/// Sanity helper: all counted vertices must lie on the three counted ranks.
pub fn counted_ranks_only<V: CdagView>(g: &V, k: u32, counted: &[bool]) -> bool {
    (0..g.n_vertices() as u32).all(|i| {
        if !counted[i as usize] {
            return true;
        }
        let vr: VertexRef = g.try_vref(VertexId(i)).expect("id in range");
        match vr.layer {
            Layer::EncA | Layer::EncB => vr.level == g.r() - k,
            Layer::Dec => vr.level == k,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lemma1::select_input_disjoint;
    use mmio_algos::strassen::strassen;
    use mmio_cdag::build::build_cdag;
    use mmio_pebble::orders;

    fn setup(r: u32, k: u32) -> (Cdag, MetaVertices, Vec<bool>) {
        let g = build_cdag(&strassen(), r);
        let meta = MetaVertices::compute(&g);
        let chosen = select_input_disjoint(&g, &meta, k);
        let counted = counted_mask(&g, k, &chosen);
        (g, meta, counted)
    }

    #[test]
    fn counted_mask_is_on_counted_ranks() {
        let (g, _meta, counted) = setup(3, 1);
        assert!(counted_ranks_only(&g, 1, &counted));
        assert!(counted_total(&counted) > 0);
    }

    #[test]
    fn segments_partition_the_order() {
        let (g, meta, counted) = setup(3, 1);
        let order = orders::recursive_order(&g);
        let analysis = analyze(&g, &meta, &order, &counted, 2, 24, 1);
        // Segments tile the order.
        let mut expected_start = 0;
        for s in &analysis.segments {
            assert_eq!(s.start, expected_start);
            assert!(s.end > s.start);
            expected_start = s.end;
        }
        assert_eq!(expected_start, order.len());
        // All but possibly the last are complete with exactly-threshold
        // counted vertices (meta closure can overshoot only when one step
        // adds several counted vertices at once).
        for s in &analysis.segments[..analysis.segments.len() - 1] {
            assert!(s.complete);
            assert!(s.counted >= 24);
        }
    }

    #[test]
    fn paper_inequality_delta_ge_counted_over_12() {
        // Equation 2: |δ'(S')| ≥ |S̄|/12 for every segment, any order.
        let (g, meta, counted) = setup(3, 1);
        for order in [orders::recursive_order(&g), orders::rank_order(&g)] {
            let analysis = analyze(&g, &meta, &order, &counted, 2, 24, 1);
            for s in analysis.segments.iter().filter(|s| s.complete) {
                assert!(
                    s.meta_boundary * 12 >= s.counted,
                    "segment {}..{}: δ'={} < {}/12",
                    s.start,
                    s.end,
                    s.meta_boundary,
                    s.counted
                );
            }
        }
    }

    #[test]
    fn parallel_analysis_is_thread_count_invariant() {
        let (g, meta, counted) = setup(3, 1);
        let order = orders::recursive_order(&g);
        let serial = analyze(&g, &meta, &order, &counted, 2, 24, 1);
        for threads in [2, 8] {
            let pool = Pool::new(threads);
            let par = analyze_with(&g, &meta, &order, &counted, 2, 24, 1, &pool);
            assert_eq!(
                serde_json::to_string(&serial).unwrap(),
                serde_json::to_string(&par).unwrap(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn certificate_nonnegative_and_monotone_in_segments() {
        let (g, meta, counted) = setup(3, 1);
        let order = orders::recursive_order(&g);
        let coarse = analyze(&g, &meta, &order, &counted, 2, 48, 1);
        let fine = analyze(&g, &meta, &order, &counted, 2, 24, 1);
        assert!(fine.complete_segments >= coarse.complete_segments);
    }

    #[test]
    fn section5_boundaries_satisfy_equation1() {
        // Strassen, any order: |δ(S)| ≥ |S̄|/22 per complete segment.
        let g = build_cdag(&strassen(), 4);
        for order in [orders::recursive_order(&g), orders::rank_order(&g)] {
            let k = choose_k_section5(&g, 1, 4); // a^k ≥ 4
            let segments = analyze_section5(&g, &order, k, 8);
            assert!(!segments.is_empty());
            for (counted, delta) in segments {
                assert!(
                    delta * 22 >= counted,
                    "Equation 1 violated: δ={delta} counted={counted}"
                );
            }
        }
    }

    #[test]
    fn section5_k_choice() {
        let g = build_cdag(&strassen(), 6);
        // a=4, M=1, multiplier 132: 4^4 = 256 ≥ 132 > 64.
        assert_eq!(choose_k_section5(&g, 1, 132), 4);
    }

    #[test]
    fn choose_k_matches_formula() {
        let g = build_cdag(&strassen(), 6);
        // a=4: a^k ≥ 72M. M=1 → 72 → k=4 (4^4=256 ≥ 72 > 64=4^3).
        let (k, ok) = choose_k(&g, 1, 72);
        assert!(ok);
        assert_eq!(k, 4);
        // M large: k would exceed r-2, fallback flagged.
        let (_k2, ok2) = choose_k(&g, 1_000_000, 72);
        assert!(!ok2);
        // Smaller multiplier admits smaller graphs.
        let g2 = build_cdag(&strassen(), 3);
        let (k3, ok3) = choose_k(&g2, 2, 2);
        assert!(ok3);
        assert_eq!(k3, 1);
    }
}
