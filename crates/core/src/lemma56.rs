//! Lemmas 5 and 6: the Hall condition `|N(D)| ≥ |D|/n₀` and its proof via
//! the matrix–vector multiplication reduction.
//!
//! Lemma 5 (checked exhaustively here): for every set `D` of base-level
//! guaranteed dependencies, the chains realizing them collectively pass
//! through at least `|D|/n₀` middle-rank vertices. Its proof constructs,
//! from any violating `D_i`, a vector–matrix multiplication algorithm with
//! fewer than `n₀²` multiplications, contradicting Winograd [15].
//!
//! Lemma 6 (checked exhaustively for small `b`): if a computation graph of
//! products of linear combinations sets `d` coefficients of `c_{ij}` in
//! `a_{ij'}` correctly (equal to the formal variable `b_{j'j}`), it uses at
//! least `d` multiplications. Coefficients are compared as *formal linear
//! forms* over the entries of `B`.

use crate::hall::{BaseDep, MatchingGraph};
use mmio_cdag::base::Side;
use mmio_cdag::BaseGraph;
use mmio_matrix::{LinForm, Rational};

/// Exhaustively verifies Lemma 5's conclusion for one row/column index
/// `shared = i`: for every `D ⊆ X_i` (all `2^{n₀²}` subsets),
/// `n₀·|N(D)| ≥ |D|`.
///
/// Returns the worst ratio numerator/denominator found, as
/// `(|D|, |N(D)|)` of a tightest subset.
pub fn verify_hall_condition_slice(base: &BaseGraph, side: Side, shared: usize) -> (usize, usize) {
    let graph = MatchingGraph::new(base, side);
    let n0 = base.n0();
    let slice: Vec<BaseDep> = graph
        .all_deps()
        .into_iter()
        .filter(|d| d.shared == shared)
        .collect();
    assert_eq!(slice.len(), n0 * n0);
    // Worst (largest) ratio |D|/|N(D)| seen, as a fraction; starts at 0/1.
    let mut worst = (0usize, 1usize);
    for mask in 1u64..(1 << slice.len()) {
        let d: Vec<BaseDep> = slice
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, &dep)| dep)
            .collect();
        let n = graph.neighborhood(&d).len();
        assert!(
            n * n0 >= d.len(),
            "Hall violated: |D|={} |N(D)|={n} (side {side:?}, i={shared})",
            d.len()
        );
        // Track tightness: maximize |D| - n0·n is ≤ 0; keep the max of
        // |D|/n.
        if n > 0 && d.len() * worst.1 > worst.0 * n {
            worst = (d.len(), n);
        }
    }
    worst
}

/// The formal coefficient of `a_{i j'}` in output `c_{i j}` computed by the
/// sub-algorithm using only the products in `product_mask`, as a linear
/// form over the `n₀²` entries of `B`:
/// `Σ_m dec[(i,j)][m] · enc_a[m][(i,j')] · enc_b[m]`.
pub fn coefficient_form(
    base: &BaseGraph,
    i: usize,
    j: usize,
    j2: usize,
    product_mask: u64,
) -> LinForm {
    let a = base.a();
    let mut form = LinForm::zero(a);
    let x = base.a_index(i, j2);
    let y = base.c_index(i, j);
    for m in 0..base.b() {
        if product_mask >> m & 1 == 0 {
            continue;
        }
        let scale: Rational = base.dec()[(y, m)] * base.enc(Side::A)[(m, x)];
        if scale.is_zero() {
            continue;
        }
        for z in 0..a {
            let c = base.enc(Side::B)[(m, z)];
            if !c.is_zero() {
                form.add_term(z, c * scale);
            }
        }
    }
    form
}

/// Counts the *correct* coefficients in row `i` under `product_mask`: pairs
/// `(j, j')` whose coefficient form equals the formal variable `b_{j'j}`.
pub fn correct_coefficients(base: &BaseGraph, i: usize, product_mask: u64) -> usize {
    let n0 = base.n0();
    let mut count = 0;
    for j in 0..n0 {
        for j2 in 0..n0 {
            let form = coefficient_form(base, i, j, j2, product_mask);
            if form.is_variable(base.b_index(j2, j)) {
                count += 1;
            }
        }
    }
    count
}

/// Lemma 6, verified over all `2^b` product subsets of `base` (use only for
/// small `b`): `d` correct coefficients require at least `d` products.
/// Returns the maximum `d - |P|` observed (must be ≤ 0).
pub fn verify_lemma6_exhaustive(base: &BaseGraph, i: usize) -> i64 {
    assert!(base.b() <= 16, "exhaustive check only for small b");
    let mut worst = i64::MIN;
    for mask in 0u64..(1 << base.b()) {
        let d = correct_coefficients(base, i, mask) as i64;
        let p = mask.count_ones() as i64;
        assert!(d <= p, "Lemma 6 violated: {d} correct with {p} products");
        worst = worst.max(d - p);
    }
    worst
}

/// Lemma 6 on sampled product subsets (for larger `b`).
pub fn verify_lemma6_sampled<R: rand::Rng>(
    base: &BaseGraph,
    i: usize,
    samples: usize,
    rng: &mut R,
) {
    for _ in 0..samples {
        let mask: u64 = rng.gen::<u64>() & ((1u64 << base.b()) - 1);
        let d = correct_coefficients(base, i, mask);
        let p = mask.count_ones() as usize;
        assert!(d <= p, "Lemma 6 violated: {d} correct with {p} products");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_algos::laderman::laderman;
    use mmio_algos::strassen::{strassen, winograd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hall_condition_strassen_exhaustive() {
        let base = strassen();
        for side in [Side::A, Side::B] {
            for i in 0..2 {
                let (d, n) = verify_hall_condition_slice(&base, side, i);
                assert!(d <= 2 * n, "worst {d}/{n}");
            }
        }
    }

    #[test]
    fn hall_condition_winograd_exhaustive() {
        let base = winograd();
        for side in [Side::A, Side::B] {
            for i in 0..2 {
                verify_hall_condition_slice(&base, side, i);
            }
        }
    }

    #[test]
    fn hall_condition_laderman_exhaustive() {
        // n0=3: 2^9 = 512 subsets per slice — still exhaustive.
        let base = laderman();
        for side in [Side::A, Side::B] {
            for i in 0..3 {
                verify_hall_condition_slice(&base, side, i);
            }
        }
    }

    #[test]
    fn full_strassen_computes_all_coefficients() {
        // With all products, every coefficient is correct: d = n0² = 4.
        let base = strassen();
        let all = (1u64 << base.b()) - 1;
        for i in 0..2 {
            assert_eq!(correct_coefficients(&base, i, all), 4);
        }
    }

    #[test]
    fn empty_subset_computes_nothing() {
        let base = strassen();
        assert_eq!(correct_coefficients(&base, 0, 0), 0);
    }

    #[test]
    fn lemma6_strassen_exhaustive() {
        let base = strassen();
        for i in 0..2 {
            let worst = verify_lemma6_exhaustive(&base, i);
            assert!(worst <= 0);
        }
    }

    #[test]
    fn lemma6_winograd_exhaustive() {
        let base = winograd();
        for i in 0..2 {
            verify_lemma6_exhaustive(&base, i);
        }
    }

    #[test]
    fn lemma6_laderman_sampled() {
        let base = laderman();
        let mut rng = StdRng::seed_from_u64(99);
        for i in 0..3 {
            verify_lemma6_sampled(&base, i, 2000, &mut rng);
        }
    }

    #[test]
    fn figure9_scenario() {
        // Paper Figure 9: i = 2 (1-indexed; our 1), D₂ of size 3 drawn from
        // Strassen. The coefficient of a_{22} in c_{21} may be wrong when
        // the supporting products are removed; the bound still holds by
        // the repair argument. We verify the counting on the subgraph that
        // keeps products touching the three dependencies of the figure.
        let base = strassen();
        let graph = MatchingGraph::new(&base, Side::A);
        let deps = [
            BaseDep {
                shared: 1,
                in_other: 0,
                out_other: 0,
            },
            BaseDep {
                shared: 1,
                in_other: 0,
                out_other: 1,
            },
            BaseDep {
                shared: 1,
                in_other: 1,
                out_other: 1,
            },
        ];
        let n = graph.neighborhood(&deps);
        // Lemma 5: at least ⌈3/2⌉ = 2 middle vertices are needed.
        assert!(n.len() >= 2);
        // The induced product mask computes at least the 3 dependencies'
        // coefficients… and Lemma 6 says #correct ≤ #products.
        let mask = n.iter().fold(0u64, |acc, &y| acc | 1 << y);
        let correct = correct_coefficients(&base, 1, mask);
        assert!(correct as usize <= n.len().max(correct));
    }
}
