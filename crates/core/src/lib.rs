//! # mmio-core
//!
//! The primary contribution of *Matrix Multiplication I/O-Complexity by Path
//! Routing* (Scott, Holtz, Schwartz; SPAA 2015), made executable: every
//! lemma of the paper is a constructive, machine-checked procedure.
//!
//! The paper proves that any Strassen-like matrix multiplication algorithm
//! with base-graph parameters `(2a inputs, b multiplications)` — under the
//! assumption that every nontrivial linear combination feeds exactly one
//! multiplication — has sequential I/O-complexity
//! `Ω((n/√M)^{2·log_a b} · M)`, and bandwidth cost `Ω(·/P)` on `P`
//! processors. The proof replaces the edge-expansion machinery of
//! Ballard–Demmel–Holtz–Schwartz with **path routings**: explicit families
//! of paths between the inputs and outputs of every subcomputation `G_k`
//! that hit no vertex (and no meta-vertex) more than `6a^k` times. Any
//! computation segment that computes some-but-not-all endpoints of such a
//! routing must then have a large boundary `δ'(S')`, which forces cache
//! traffic.
//!
//! Module map (paper object → module):
//!
//! | Paper | Module |
//! |---|---|
//! | guaranteed dependencies (Section 7) | [`deps`] |
//! | Hall matching `H = (X, Y)`, Lemma 5 | [`hall`], [`lemma56`] |
//! | Lemma 3 (chain routing for `F`, Claim 2 lifting) | [`chains`] |
//! | Lemma 4 (concatenation `a_{ij}→c_{ij'}→b_{jj'}→c_{i'j'}`) | [`lemma4`] |
//! | Theorem 2 (Routing Theorem, `6a^k`-routings) | [`routing`] |
//! | Claim 1 (`11·7^k`-routing in Strassen's `D_k`) | [`claim1`] |
//! | `R(S)`, `W(S)`, `δ(S)`, `δ'(S')` (Definition 1) | [`boundary`] |
//! | segment argument (Sections 5–6, Equations 1–2) | [`segments`] |
//! | Lemma 1 (input-disjoint subcomputations) | [`lemma1`] |
//! | Lemma 6 (matrix–vector reduction, Winograd [15]) | [`lemma56`] |
//! | Theorem 1 (closed-form bounds, certificates) | [`theorem1`] |
//! | prior techniques, for contrast (Section 2) | [`dominator`], [`expansion`], [`loomis_whitney`] |
//! | Section 8 extension (single-use lifted) | [`extension`] |
//!
//! ```
//! use mmio_algos::strassen::strassen;
//! use mmio_cdag::build::build_cdag;
//! use mmio_core::theorem2::InOutRouting;
//!
//! // Construct and verify the Routing Theorem's 6a^k-routing on G_2.
//! let g = build_cdag(&strassen(), 2);
//! let routing = InOutRouting::new(&g).expect("Hall matching exists");
//! let stats = routing.verify();
//! assert!(stats.is_m_routing(routing.theorem2_bound()));
//! assert_eq!(stats.paths, 2 * 16 * 16); // |In|·|Out| = 2a^k·a^k
//! ```

// Chain construction, hit counting, and transport are the workspace's hot
// paths; performance lints are errors here, not suggestions.
#![deny(clippy::perf)]
#![forbid(unsafe_code)]

pub mod boundary;
pub mod chains;
pub mod claim1;
pub mod deps;
pub mod dominator;
pub mod expansion;
pub mod extension;
pub mod hall;
pub mod lemma1;
pub mod lemma4;
pub mod lemma56;
pub mod loomis_whitney;
#[cfg(feature = "mutate")]
pub mod mutate;
pub mod report;
pub mod routing;
pub mod segments;
pub mod theorem1;
pub mod theorem2;
pub mod transport;

pub use routing::{RoutingStats, VertexHitCounter};
pub use theorem1::LowerBound;
pub use theorem2::InOutRouting;
pub use transport::{RoutingClass, RoutingMemo, TransportReport};
