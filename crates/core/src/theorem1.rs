//! Theorem 1: the closed-form lower bounds, and end-to-end certified
//! instances of them.
//!
//! Sequential I/O: `Ω((n/√M)^{2·log_a b} · M)`. Parallel bandwidth:
//! the same over `P`. Memory-independent bandwidth: `Ω(n²/P^{2/ω₀})`
//! (under per-rank load balance). The `certify` pipeline assembles the
//! whole proof for one concrete `(base graph, r, M, order)`: Lemma 1
//! selection → counted ranks → segment partition → per-segment `δ'` →
//! I/O certificate, each step machine-checked.

use crate::lemma1;
use crate::segments::{self, SegmentAnalysis};
use mmio_cdag::{index, BaseGraph, Cdag, CdagView, MetaVertices, VertexId};
use serde::Serialize;

/// The Theorem 1 formulas for one algorithm family.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct LowerBound {
    /// `a = n₀²`.
    pub a: usize,
    /// Multiplications per step.
    pub b: usize,
    /// `ω₀ = 2·log_a b`.
    pub omega0: f64,
}

impl LowerBound {
    /// Builds the formula object from a base graph.
    pub fn new(base: &mmio_cdag::BaseGraph) -> LowerBound {
        LowerBound {
            a: base.a(),
            b: base.b(),
            omega0: base.omega0(),
        }
    }

    /// Sequential I/O lower bound `(n/√M)^{ω₀}·M` (the Ω-expression with
    /// constant 1; shape, not constant, is the claim).
    pub fn sequential_io(&self, n: u64, m: u64) -> f64 {
        let ratio = n as f64 / (m as f64).sqrt();
        ratio.powf(self.omega0) * m as f64
    }

    /// Parallel bandwidth lower bound `(n/√M)^{ω₀}·M/P`.
    pub fn parallel_bandwidth(&self, n: u64, m: u64, p: u64) -> f64 {
        self.sequential_io(n, m) / p as f64
    }

    /// Memory-independent bandwidth lower bound `n²/P^{2/ω₀}`.
    pub fn memory_independent_bandwidth(&self, n: u64, p: u64) -> f64 {
        (n as f64).powi(2) / (p as f64).powf(2.0 / self.omega0)
    }

    /// The cache size below which the bound exceeds the trivial `Ω(n²)`
    /// bound — the regime where Theorem 1 bites (`M ≤ o(n²)`).
    pub fn asymptotic_regime(&self, n: u64, m: u64) -> bool {
        (m as f64) < (n as f64).powi(2)
    }
}

/// An end-to-end certified lower-bound instance.
#[derive(Clone, Debug, Serialize)]
pub struct Certificate {
    /// Base-graph name.
    pub base: String,
    /// Recursion depth.
    pub r: u32,
    /// Matrix side `n = n₀^r`.
    pub n: u64,
    /// Cache size.
    pub m: u64,
    /// Depth `k` used by the segment argument, and whether the paper's
    /// choice was feasible (`k ≤ r-2` with `a^k ≥ 72M`).
    pub k: u32,
    /// Whether the asymptotic choice of `k` was feasible.
    pub k_feasible: bool,
    /// Number of mutually input-disjoint subcomputations selected.
    pub disjoint_subcomputations: u64,
    /// Lemma 1's target `b^{r-k-2}` (0 when `k > r-2`).
    pub lemma1_target: u64,
    /// The segment analysis (per-segment boundaries and certificate).
    pub analysis: SegmentAnalysis,
    /// The closed-form Ω-expression evaluated at `(n, M)`.
    pub formula_value: f64,
}

/// Tunable constants of the segment argument. [`CertifyParams::PAPER`]
/// reproduces the paper's (deliberately unoptimized) choices
/// `k: a^k ≥ 72M`, `|S̄| ≥ 36M`; smaller values yield certificates on
/// smaller instances at the cost of weaker per-segment guarantees.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct CertifyParams {
    /// `k` is the smallest integer with `a^k ≥ k_multiplier·M`.
    pub k_multiplier: u64,
    /// Segments close when they contain `threshold_multiplier·M` counted
    /// vertices.
    pub threshold_multiplier: u64,
}

impl CertifyParams {
    /// The constants used in the paper's Section 6.
    pub const PAPER: CertifyParams = CertifyParams {
        k_multiplier: 72,
        threshold_multiplier: 36,
    };

    /// Constants suited to laptop-scale instances (weaker per-segment
    /// constant, same asymptotic shape).
    pub const SMALL: CertifyParams = CertifyParams {
        k_multiplier: 2,
        threshold_multiplier: 4,
    };
}

/// Runs the whole lower-bound pipeline on a concrete instance with the
/// paper's constants. See [`certify_with`].
pub fn certify(g: &Cdag, m: u64, order: &[VertexId]) -> Certificate {
    certify_with(g, m, order, CertifyParams::PAPER)
}

/// Runs the whole lower-bound pipeline on a concrete instance.
///
/// `order` is any valid compute order of `g` (the certificate holds for
/// *this* order; the theorem quantifies over all orders, which the formula
/// captures).
pub fn certify_with(g: &Cdag, m: u64, order: &[VertexId], params: CertifyParams) -> Certificate {
    certify_pooled(g, m, order, params, &mmio_parallel::Pool::serial())
}

/// [`certify_with`], with the per-segment analysis sharded over `pool`
/// (identical certificate at any thread count — see
/// [`segments::analyze_with`]).
pub fn certify_pooled(
    g: &Cdag,
    m: u64,
    order: &[VertexId],
    params: CertifyParams,
    pool: &mmio_parallel::Pool,
) -> Certificate {
    certify_pooled_view(g.base(), g, m, order, params, pool)
}

/// [`certify_pooled`] over any [`CdagView`]: the whole pipeline — meta
/// grouping, Lemma 1 selection, counted mask, segment analysis — runs on
/// the view's closed-form adjacency, so an [`mmio_cdag::IndexView`] yields
/// the same certificate as the materialized graph without ever allocating
/// its edge lists (equivalence pinned by `view_certificate_matches_explicit`
/// below and the CLI golden test).
///
/// `base` must be the base graph the view was derived from (it supplies the
/// name and the Theorem 1 formula constants).
pub fn certify_pooled_view<V: CdagView + Sync>(
    base: &BaseGraph,
    g: &V,
    m: u64,
    order: &[VertexId],
    params: CertifyParams,
    pool: &mmio_parallel::Pool,
) -> Certificate {
    assert_eq!(
        (base.a(), base.b()),
        (g.a(), g.b()),
        "view must come from this base graph"
    );
    let n = index::pow(base.n0(), g.r());
    let meta = MetaVertices::compute_view(g);
    let (k, k_feasible) = segments::choose_k(g, m, params.k_multiplier);
    let chosen = lemma1::select_input_disjoint(g, &meta, k);
    let counted = segments::counted_mask(g, k, &chosen);
    let threshold = params.threshold_multiplier * m;
    let analysis = segments::analyze_with(g, &meta, order, &counted, m, threshold, k, pool);
    let lemma1_target = if k + 2 <= g.r() {
        index::pow(base.b(), g.r() - k - 2)
    } else {
        0
    };
    let bound = LowerBound::new(base);
    Certificate {
        base: base.name().to_string(),
        r: g.r(),
        n,
        m,
        k,
        k_feasible,
        disjoint_subcomputations: chosen.len() as u64,
        lemma1_target,
        analysis,
        formula_value: bound.sequential_io(n, m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_algos::strassen::strassen;
    use mmio_cdag::build::build_cdag;
    use mmio_pebble::orders;

    #[test]
    fn formula_shapes() {
        let base = strassen();
        let lb = LowerBound::new(&base);
        // ω₀ = log2 7.
        assert!((lb.omega0 - 7f64.log2()).abs() < 1e-12);
        // Fixing M, doubling n scales by 2^ω₀ ≈ 7.
        let r1 = lb.sequential_io(1024, 64);
        let r2 = lb.sequential_io(2048, 64);
        assert!((r2 / r1 - 7.0).abs() < 1e-9);
        // Fixing n, quadrupling M multiplies by 4^{1-ω₀/2} = 4/7… i.e.
        // decreases (ω₀ > 2).
        let m1 = lb.sequential_io(1 << 20, 1 << 10);
        let m2 = lb.sequential_io(1 << 20, 1 << 12);
        assert!(m2 < m1);
        // Parallel = sequential / P.
        assert!((lb.parallel_bandwidth(1024, 64, 8) - r1 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn memory_independent_shape() {
        let lb = LowerBound::new(&strassen());
        // At P=1 it is n².
        assert!((lb.memory_independent_bandwidth(100, 1) - 10_000.0).abs() < 1e-9);
        // Increasing P decreases it, slower than 1/P (2/ω₀ < 1).
        let b1 = lb.memory_independent_bandwidth(1 << 10, 4);
        let b4 = lb.memory_independent_bandwidth(1 << 10, 16);
        assert!(b4 < b1);
        assert!(b4 > b1 / 4.0);
    }

    #[test]
    fn certificate_pipeline_runs_and_is_positive() {
        let g = build_cdag(&strassen(), 4);
        let order = orders::recursive_order(&g);
        // Laptop-scale constants so the asymptotic k fits at r=4.
        let cert = certify_with(&g, 2, &order, CertifyParams::SMALL);
        assert_eq!(cert.n, 16);
        assert!(cert.k_feasible, "k={} r={}", cert.k, cert.r);
        assert!(cert.disjoint_subcomputations >= cert.lemma1_target);
        assert!(cert.analysis.complete_segments > 0);
        assert!(cert.analysis.certified_io > 0);
    }

    #[test]
    fn view_certificate_matches_explicit() {
        use mmio_cdag::IndexView;
        let base = strassen();
        let g = build_cdag(&base, 3);
        let order = orders::recursive_order(&g);
        let pool = mmio_parallel::Pool::serial();
        for m in [2u64, 6] {
            let explicit = certify_pooled(&g, m, &order, CertifyParams::SMALL, &pool);
            let view = IndexView::from_base(&base, 3);
            let implicit =
                certify_pooled_view(&base, &view, m, &order, CertifyParams::SMALL, &pool);
            assert_eq!(format!("{explicit:?}"), format!("{implicit:?}"));
        }
    }

    #[test]
    fn certificate_sound_for_random_orders() {
        use mmio_pebble::policy::Lru;
        use mmio_pebble::AutoScheduler;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let g = build_cdag(&strassen(), 3);
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..8 {
            let order = orders::random_topo_order(&g, &mut rng);
            for m in [6u64, 12, 24] {
                let cert = certify_with(&g, m, &order, CertifyParams::SMALL);
                let measured = AutoScheduler::new(&g, m as usize)
                    .run(&order, &mut Lru::new(g.n_vertices()))
                    .io();
                assert!(
                    cert.analysis.certified_io <= measured,
                    "trial {trial} m={m}: certified {} > measured {measured}",
                    cert.analysis.certified_io
                );
            }
        }
    }

    #[test]
    fn certificate_lower_bounds_hold_against_simulation() {
        // The certified I/O must lower-bound the I/O of an actual simulated
        // run with the same order (certificate ≤ measured).
        use mmio_pebble::policy::Belady;
        use mmio_pebble::AutoScheduler;
        let g = build_cdag(&strassen(), 4);
        for order in [orders::recursive_order(&g), orders::rank_order(&g)] {
            for m in [8u64, 16, 32] {
                let cert = certify_with(&g, m, &order, CertifyParams::SMALL);
                let measured = AutoScheduler::new(&g, m as usize)
                    .run(&order, &mut Belady)
                    .io();
                assert!(
                    cert.analysis.certified_io <= measured,
                    "m={m}: certificate {} exceeds measured {measured}",
                    cert.analysis.certified_io
                );
            }
        }
    }
}
