//! The bipartite matching graph `H = (X, Y)` of Section 7.2 and the
//! many-to-one Hall matching (Theorem 3).
//!
//! `X` is the set of base-level guaranteed dependencies of `G'₁` (the
//! decoding graph plus one encoding graph); `Y` is the set of *middle-rank*
//! vertices (the encoding graph's combination vertices, one per
//! multiplication). There is an edge `(x, y)` when some chain realizing the
//! dependence `x` passes through `y` — i.e. `enc[y][in] ≠ 0` and
//! `dec[out][y] ≠ 0`. Lemma 5 shows `|N(D)| ≥ |D|/n₀` for every `D ⊆ X`, so
//! by the many-to-one Hall theorem there is a matching using every middle
//! vertex at most `n₀` times — the backbone of the Lemma 3 routing.

use mmio_cdag::base::Side;
use mmio_cdag::BaseGraph;

/// A base-level dependence on one side: `(a_{ij}, c_{ij'})` keyed by
/// `(i, j, j')`, or `(b_{ij}, c_{i'j})` keyed by `(j, i, i')` — uniformly
/// `(shared, in_other, out_other)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BaseDep {
    /// The matched index (row `i` for side A, column `j` for side B).
    pub shared: usize,
    /// The input's other index (column of `a` / row of `b`).
    pub in_other: usize,
    /// The output's other index (column `j'` of `c` / row `i'` of `c`).
    pub out_other: usize,
}

/// The matching graph for one side of a base graph.
pub struct MatchingGraph<'b> {
    base: &'b BaseGraph,
    side: Side,
}

impl<'b> MatchingGraph<'b> {
    /// Builds the matching graph `H` for `side` of `base`.
    pub fn new(base: &'b BaseGraph, side: Side) -> MatchingGraph<'b> {
        MatchingGraph { base, side }
    }

    /// All `n₀³` base dependencies (the set `X`).
    pub fn all_deps(&self) -> Vec<BaseDep> {
        let n0 = self.base.n0();
        let mut v = Vec::with_capacity(n0 * n0 * n0);
        for shared in 0..n0 {
            for in_other in 0..n0 {
                for out_other in 0..n0 {
                    v.push(BaseDep {
                        shared,
                        in_other,
                        out_other,
                    });
                }
            }
        }
        v
    }

    /// The input-entry flat index of a dependence.
    pub fn input_entry(&self, d: &BaseDep) -> usize {
        let n0 = self.base.n0();
        match self.side {
            Side::A => d.shared * n0 + d.in_other, // a_{i j}
            Side::B => d.in_other * n0 + d.shared, // b_{i j}
        }
    }

    /// The output-entry flat index of a dependence.
    pub fn output_entry(&self, d: &BaseDep) -> usize {
        let n0 = self.base.n0();
        match self.side {
            Side::A => d.shared * n0 + d.out_other, // c_{i j'}
            Side::B => d.out_other * n0 + d.shared, // c_{i' j}
        }
    }

    /// Whether a chain realizing `d` can pass through middle vertex `y`
    /// (product index): both the encoding and decoding coefficients must be
    /// nonzero.
    pub fn edge(&self, d: &BaseDep, y: usize) -> bool {
        let enc = self.base.enc(self.side);
        let dec = self.base.dec();
        !enc[(y, self.input_entry(d))].is_zero() && !dec[(self.output_entry(d), y)].is_zero()
    }

    /// Neighborhood `N(D)` in `Y` of a set of dependencies.
    pub fn neighborhood(&self, ds: &[BaseDep]) -> Vec<usize> {
        (0..self.base.b())
            .filter(|&y| ds.iter().any(|d| self.edge(d, y)))
            .collect()
    }

    /// Computes a many-to-one matching: every dependence in `X` assigned a
    /// middle vertex, each middle vertex used at most `capacity` times.
    /// Returns `None` if no such matching exists (Hall's condition violated
    /// at this capacity).
    ///
    /// Kuhn's augmenting-path algorithm on the capacity-expanded graph; `X`
    /// has `n₀³ ≤ 64` vertices for the base graphs in this workspace, so
    /// complexity is irrelevant.
    pub fn hall_matching(&self, capacity: usize) -> Option<Vec<usize>> {
        let deps = self.all_deps();
        let b = self.base.b();
        // match_y[y] = list of dep indices currently assigned to y.
        let mut assigned_to: Vec<Vec<usize>> = vec![Vec::new(); b];
        let mut dep_match: Vec<Option<usize>> = vec![None; deps.len()];

        fn try_assign(
            xi: usize,
            deps: &[BaseDep],
            graph: &MatchingGraph<'_>,
            capacity: usize,
            assigned_to: &mut Vec<Vec<usize>>,
            dep_match: &mut Vec<Option<usize>>,
            visited_y: &mut Vec<bool>,
        ) -> bool {
            for y in 0..graph.base.b() {
                if visited_y[y] || !graph.edge(&deps[xi], y) {
                    continue;
                }
                visited_y[y] = true;
                if assigned_to[y].len() < capacity {
                    assigned_to[y].push(xi);
                    dep_match[xi] = Some(y);
                    return true;
                }
                // Try to displace one of y's current assignees.
                for slot in 0..assigned_to[y].len() {
                    let other = assigned_to[y][slot];
                    if try_assign(
                        other,
                        deps,
                        graph,
                        capacity,
                        assigned_to,
                        dep_match,
                        visited_y,
                    ) {
                        assigned_to[y][slot] = xi;
                        dep_match[xi] = Some(y);
                        return true;
                    }
                }
            }
            false
        }

        // One visited buffer reused (cleared) across augmenting passes.
        let mut visited = vec![false; b];
        for xi in 0..deps.len() {
            visited.fill(false);
            if !try_assign(
                xi,
                &deps,
                self,
                capacity,
                &mut assigned_to,
                &mut dep_match,
                &mut visited,
            ) {
                return None;
            }
        }
        Some(dep_match.into_iter().map(|m| m.unwrap()).collect())
    }

    /// Convenience: matching keyed by `(shared, in_other, out_other)`, i.e.
    /// `matched[shared][in_other][out_other] = product index`.
    pub fn matching_table(&self, capacity: usize) -> Option<Vec<Vec<Vec<usize>>>> {
        let n0 = self.base.n0();
        let flat = self.hall_matching(capacity)?;
        let mut table = vec![vec![vec![0usize; n0]; n0]; n0];
        for (xi, d) in self.all_deps().iter().enumerate() {
            table[d.shared][d.in_other][d.out_other] = flat[xi];
        }
        Some(table)
    }

    /// Ablation baseline: assign every dependence to its *first* admissible
    /// middle vertex, ignoring capacities. Valid chains, but middle vertices
    /// can be overloaded far beyond `n₀` — quantifying what the Hall
    /// matching buys (see the `ablation_routing` experiment).
    ///
    /// # Panics
    /// Panics if some dependence has no admissible middle vertex at all
    /// (the algorithm would then be incorrect).
    pub fn greedy_first_table(&self) -> Vec<Vec<Vec<usize>>> {
        let n0 = self.base.n0();
        let mut table = vec![vec![vec![0usize; n0]; n0]; n0];
        for d in self.all_deps() {
            let y = (0..self.base.b())
                .find(|&y| self.edge(&d, y))
                .expect("every guaranteed dependence has a realizing chain");
            table[d.shared][d.in_other][d.out_other] = y;
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_algos::laderman::laderman;
    use mmio_algos::registry::strassen_squared;
    use mmio_algos::strassen::{strassen, winograd};

    fn check_matching(base: &BaseGraph, side: Side) {
        let n0 = base.n0();
        let g = MatchingGraph::new(base, side);
        let m = g
            .hall_matching(n0)
            .unwrap_or_else(|| panic!("{} side {side:?}: no n0-matching", base.name()));
        // Validity: every matched pair is an edge; capacities respected.
        let deps = g.all_deps();
        let mut usage = vec![0usize; base.b()];
        for (xi, &y) in m.iter().enumerate() {
            assert!(g.edge(&deps[xi], y), "matched non-edge");
            usage[y] += 1;
        }
        assert!(usage.iter().all(|&u| u <= n0), "capacity exceeded");
    }

    #[test]
    fn strassen_has_n0_matching_both_sides() {
        check_matching(&strassen(), Side::A);
        check_matching(&strassen(), Side::B);
    }

    #[test]
    fn winograd_has_n0_matching_both_sides() {
        check_matching(&winograd(), Side::A);
        check_matching(&winograd(), Side::B);
    }

    #[test]
    fn laderman_has_n0_matching_both_sides() {
        check_matching(&laderman(), Side::A);
        check_matching(&laderman(), Side::B);
    }

    #[test]
    fn strassen_squared_has_n0_matching() {
        check_matching(&strassen_squared(), Side::A);
        check_matching(&strassen_squared(), Side::B);
    }

    #[test]
    fn capacity_one_is_infeasible_for_strassen() {
        // 8 dependencies per row index i, only 7 products: capacity 1 cannot
        // match all n0³ = 8 dependencies into ≤ 7 middle vertices.
        let base = strassen();
        let g = MatchingGraph::new(&base, Side::A);
        assert!(g.hall_matching(1).is_none());
    }

    #[test]
    fn matching_table_consistent() {
        let base = strassen();
        let g = MatchingGraph::new(&base, Side::A);
        let table = g.matching_table(2).unwrap();
        for d in g.all_deps() {
            let y = table[d.shared][d.in_other][d.out_other];
            assert!(g.edge(&d, y));
        }
    }

    #[test]
    fn neighborhood_respects_hall_condition() {
        // Spot-check Lemma 5's conclusion on full per-i slices.
        let base = strassen();
        let g = MatchingGraph::new(&base, Side::A);
        for i in 0..2 {
            let slice: Vec<BaseDep> = g.all_deps().into_iter().filter(|d| d.shared == i).collect();
            let n = g.neighborhood(&slice);
            assert!(n.len() * base.n0() >= slice.len());
        }
    }
}
