//! Definition 1: `R(S)`, `W(S)`, `δ(S)` on vertices, and boundary-crossing
//! path counting.
//!
//! For a set `S` of consecutively-computed vertices, `R(S)` are values that
//! must be read into cache (predecessors outside `S`) and `W(S)` values
//! that must survive `S` (members with successors outside `S`); the paper's
//! segment argument lower-bounds `|δ(S)| = |R(S)| + |W(S)|` via routings.
//! The meta-vertex analogue `δ'(S')` lives in
//! [`mmio_cdag::MetaVertices::meta_boundary`].

use mmio_cdag::{Cdag, VertexId};

/// `R(S)`: vertices outside `S` with an edge into `S`.
pub fn read_set(g: &Cdag, in_set: &[bool]) -> Vec<VertexId> {
    let mut out = Vec::new();
    let mut seen = vec![false; g.n_vertices()];
    for v in g.vertices() {
        if !in_set[v.idx()] {
            continue;
        }
        for &p in g.preds(v) {
            if !in_set[p.idx()] && !seen[p.idx()] {
                seen[p.idx()] = true;
                out.push(p);
            }
        }
    }
    out
}

/// `W(S)`: vertices inside `S` with an edge out of `S`.
pub fn write_set(g: &Cdag, in_set: &[bool]) -> Vec<VertexId> {
    g.vertices()
        .filter(|&v| in_set[v.idx()] && g.succs(v).iter().any(|&s| !in_set[s.idx()]))
        .collect()
}

/// `|δ(S)| = |R(S)| + |W(S)|` (the two sets are disjoint by definition).
pub fn boundary_size(g: &Cdag, in_set: &[bool]) -> usize {
    read_set(g, in_set).len() + write_set(g, in_set).len()
}

/// Whether `path` is boundary-crossing with respect to `S` (Definition 3):
/// contains at least one vertex in `S` and one outside.
pub fn is_boundary_crossing(in_set: &[bool], path: &[VertexId]) -> bool {
    let mut inside = false;
    let mut outside = false;
    for &v in path {
        if in_set[v.idx()] {
            inside = true;
        } else {
            outside = true;
        }
        if inside && outside {
            return true;
        }
    }
    false
}

/// Builds a membership mask from a vertex list.
pub fn mask_of(g: &Cdag, set: &[VertexId]) -> Vec<bool> {
    let mut mask = vec![false; g.n_vertices()];
    for &v in set {
        mask[v.idx()] = true;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_algos::strassen::strassen;
    use mmio_cdag::build::build_cdag;

    #[test]
    fn boundary_of_single_product() {
        let g = build_cdag(&strassen(), 1);
        let p = g.products().next().unwrap();
        let mask = mask_of(&g, &[p]);
        let r = read_set(&g, &mask);
        let w = write_set(&g, &mask);
        assert_eq!(r.len(), 2, "a product reads two combinations");
        assert_eq!(w.len(), 1, "the product itself feeds outputs");
        assert_eq!(w[0], p);
        assert_eq!(boundary_size(&g, &mask), 3);
    }

    #[test]
    fn boundary_of_everything_is_empty() {
        let g = build_cdag(&strassen(), 1);
        let mask = vec![true; g.n_vertices()];
        assert_eq!(boundary_size(&g, &mask), 0);
    }

    #[test]
    fn r_and_w_disjoint() {
        let g = build_cdag(&strassen(), 2);
        // S = first half of the vertices.
        let mask: Vec<bool> = (0..g.n_vertices())
            .map(|i| i < g.n_vertices() / 2)
            .collect();
        let r = read_set(&g, &mask);
        let w = write_set(&g, &mask);
        for v in &r {
            assert!(!w.contains(v));
        }
    }

    #[test]
    fn crossing_detection() {
        let g = build_cdag(&strassen(), 1);
        let input = g.inputs().next().unwrap();
        let combo = g.succs(input)[0];
        let mask = mask_of(&g, &[combo]);
        assert!(is_boundary_crossing(&mask, &[input, combo]));
        assert!(!is_boundary_crossing(&mask, &[combo]));
        assert!(!is_boundary_crossing(&mask, &[input]));
    }
}
