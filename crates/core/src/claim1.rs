//! Claim 1 (Section 5): an `(a+b)·b^k`-routing inside the decoding graph
//! `D_k` alone — `11·7^k` for Strassen — between its inputs (the products)
//! and outputs.
//!
//! If `D₁` were complete bipartite, the natural level-wise chain would do;
//! since it is merely *connected*, each missing edge is replaced by a "zag"
//! path inside the same `D₁` copy (paper Figure 3), multiplying the hit
//! count by at most `|D₁| = a + b`.

use crate::routing::{RoutingStats, VertexHitCounter};
use mmio_cdag::{index, Cdag, Layer, VertexId, VertexRef};

/// A node of the base decoding graph `D₁`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum DNode {
    /// Product `τ ∈ [b]`.
    P(usize),
    /// Output `υ ∈ [a]`.
    O(usize),
}

/// The Section 5 routing in the decoding graph.
pub struct DecodingRouting<'g> {
    g: &'g Cdag,
    /// `zag[τ][υ]`: path in `D₁` from product `τ` to output `υ`
    /// (alternating, starting at `P(τ)`, ending at `O(υ)`).
    zag: Vec<Vec<Vec<DNode>>>,
}

impl<'g> DecodingRouting<'g> {
    /// Builds the routing. Returns `None` if `D₁` is disconnected (then
    /// Section 5's approach fails and the full Theorem 2 machinery is
    /// needed — which is the paper's point).
    pub fn new(g: &'g Cdag) -> Option<DecodingRouting<'g>> {
        let base = g.base();
        let (a, b) = (base.a(), base.b());
        let dec = base.dec();
        // BFS in D₁ from every product.
        let mut zag = vec![vec![Vec::new(); a]; b];
        for tau in 0..b {
            // parent pointers over a+b nodes: products 0..b, outputs b..b+a.
            let mut parent = vec![usize::MAX; a + b];
            let mut seen = vec![false; a + b];
            let mut queue = std::collections::VecDeque::new();
            seen[tau] = true;
            queue.push_back(DNode::P(tau));
            while let Some(node) = queue.pop_front() {
                match node {
                    DNode::P(p) => {
                        for o in 0..a {
                            if !dec[(o, p)].is_zero() && !seen[b + o] {
                                seen[b + o] = true;
                                parent[b + o] = p;
                                queue.push_back(DNode::O(o));
                            }
                        }
                    }
                    DNode::O(o) => {
                        for p in 0..b {
                            if !dec[(o, p)].is_zero() && !seen[p] {
                                seen[p] = true;
                                parent[p] = b + o;
                                queue.push_back(DNode::P(p));
                            }
                        }
                    }
                }
            }
            for upsilon in 0..a {
                if !seen[b + upsilon] {
                    return None; // disconnected decoding graph
                }
                // Reconstruct path.
                let mut rev = vec![DNode::O(upsilon)];
                let mut cur = b + upsilon;
                while cur != tau {
                    cur = parent[cur];
                    rev.push(if cur < b {
                        DNode::P(cur)
                    } else {
                        DNode::O(cur - b)
                    });
                }
                rev.reverse();
                zag[tau][upsilon] = rev;
            }
        }
        Some(DecodingRouting { g, zag })
    }

    /// Claim 1's bound: `(a + b) · b^k` (`11·7^k` for Strassen).
    pub fn claim1_bound(&self) -> u64 {
        let base = self.g.base();
        (base.a() + base.b()) as u64 * index::pow(base.b(), self.g.r())
    }

    /// The path in `D_k` from product `m ∈ [b^k]` to output `y ∈ [a^k]`
    /// (both packed digit vectors): level-wise composition of zag paths.
    pub fn path(&self, m: u64, y: u64) -> Vec<VertexId> {
        let g = self.g;
        let base = g.base();
        let (a, b, k) = (base.a(), base.b(), g.r() as usize);
        let ts = index::unpack(m, b, k);
        let ys = index::unpack(y, a, k);

        let mut path = vec![g.id(VertexRef {
            layer: Layer::Dec,
            level: 0,
            mul: m,
            entry: 0,
        })];
        // After step l the position is (t₁..t_{k-l}; y_{k-l+1}..y_k).
        for l in 1..=k {
            let prefix = index::pack(&ts[..k - l], b);
            let suffix = index::pack(&ys[k - l + 1..], a);
            let suffix_len = (l - 1) as u32;
            let zag = &self.zag[ts[k - l]][ys[k - l]];
            // First node of the zag is the current vertex; skip it.
            for node in &zag[1..] {
                let vref = match *node {
                    DNode::P(p) => VertexRef {
                        layer: Layer::Dec,
                        level: (l - 1) as u32,
                        mul: prefix * b as u64 + p as u64,
                        entry: suffix,
                    },
                    DNode::O(o) => VertexRef {
                        layer: Layer::Dec,
                        level: l as u32,
                        mul: prefix,
                        entry: o as u64 * index::pow(a, suffix_len) + suffix,
                    },
                };
                path.push(g.id(vref));
            }
        }
        path
    }

    /// Streams all `b^k · a^k` product→output paths into `counter`.
    pub fn route_all(&self, counter: &mut VertexHitCounter<'_>) {
        let base = self.g.base();
        let bk = index::pow(base.b(), self.g.r());
        let ak = index::pow(base.a(), self.g.r());
        for m in 0..bk {
            for y in 0..ak {
                counter.add_path(&self.path(m, y));
            }
        }
    }

    /// Builds, verifies, and summarizes the routing.
    pub fn verify(&self) -> RoutingStats {
        let mut counter = VertexHitCounter::new(self.g, None);
        self.route_all(&mut counter);
        counter.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_algos::classical::classical;
    use mmio_algos::laderman::laderman;
    use mmio_algos::strassen::strassen;
    use mmio_algos::synthetic::with_dummy_product;
    use mmio_cdag::build::build_cdag;

    #[test]
    fn strassen_claim1_holds() {
        for k in 1..=3u32 {
            let g = build_cdag(&strassen(), k);
            let routing = DecodingRouting::new(&g).expect("Strassen's D1 is connected");
            let stats = routing.verify();
            assert_eq!(stats.paths, 7u64.pow(k) * 4u64.pow(k));
            assert!(
                stats.is_m_routing(routing.claim1_bound()),
                "k={k}: {} > {}",
                stats.max_vertex_hits,
                routing.claim1_bound()
            );
            assert_eq!(routing.claim1_bound(), 11 * 7u64.pow(k));
        }
    }

    #[test]
    fn paths_have_valid_endpoints() {
        let g = build_cdag(&strassen(), 2);
        let routing = DecodingRouting::new(&g).unwrap();
        let p = routing.path(13, 5);
        assert_eq!(
            p[0],
            g.id(VertexRef {
                layer: Layer::Dec,
                level: 0,
                mul: 13,
                entry: 0
            })
        );
        assert_eq!(
            *p.last().unwrap(),
            g.id(VertexRef {
                layer: Layer::Dec,
                level: 2,
                mul: 0,
                entry: 5
            })
        );
        // Paths stay inside the decoding layer.
        for &v in &p {
            assert_eq!(g.vref(v).layer, Layer::Dec);
        }
    }

    #[test]
    fn laderman_claim1_holds() {
        let g = build_cdag(&laderman(), 1);
        let routing = DecodingRouting::new(&g).expect("Laderman's D1 is connected");
        let stats = routing.verify();
        assert!(stats.is_m_routing(routing.claim1_bound()));
    }

    #[test]
    fn disconnected_decoding_defeats_section5() {
        // The dummy-product variant has an isolated decoding vertex: the
        // Section 5 construction must fail, motivating Theorem 2.
        let g = build_cdag(&with_dummy_product(&strassen()), 1);
        assert!(DecodingRouting::new(&g).is_none());
    }

    #[test]
    fn classical_decoding_also_defeats_section5() {
        let g = build_cdag(&classical(2), 1);
        assert!(DecodingRouting::new(&g).is_none());
    }
}
