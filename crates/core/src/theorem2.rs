//! Theorem 2 (the Routing Theorem): a `6a^k`-routing between the inputs and
//! outputs of `G_k`, hitting every meta-vertex at most `6a^k` times as well.
//!
//! Construction = Lemma 3 chains (`2n₀^k`-routing for guaranteed
//! dependencies) composed by the Lemma 4 concatenation scheme (each chain
//! reused at most `3n₀^k` times), giving `2n₀^k · 3n₀^k = 6a^k`.

use crate::chains::ChainRouter;
use crate::deps::{unpack_entry, DepSide};
use crate::lemma4::dependence_sequence;
use crate::routing::{RoutingStats, VertexHitCounter};
use mmio_cdag::{index, Cdag, Layer, MetaVertices, VertexId};

/// The Routing Theorem's routing for one `G_k`.
pub struct InOutRouting<'g> {
    g: &'g Cdag,
    router: ChainRouter<'g>,
}

impl<'g> InOutRouting<'g> {
    /// Builds the routing machinery. `None` when the base graph admits no
    /// `n₀`-capacity Hall matching (paper assumptions violated).
    pub fn new(g: &'g Cdag) -> Option<InOutRouting<'g>> {
        Some(InOutRouting {
            g,
            router: ChainRouter::new(g)?,
        })
    }

    /// The Routing Theorem's claimed bound: `6·a^k`.
    pub fn theorem2_bound(&self) -> u64 {
        6 * index::pow(self.g.base().a(), self.g.r())
    }

    /// The path between one input vertex (`side`, entry digits
    /// `(in_row, in_col)`) and one output (`(out_row, out_col)`):
    /// concatenation of three chains, middle one reversed, junction
    /// vertices deduplicated.
    pub fn path(
        &self,
        side: DepSide,
        in_row: u64,
        in_col: u64,
        out_row: u64,
        out_col: u64,
    ) -> Vec<VertexId> {
        let seq = dependence_sequence(side, in_row, in_col, out_row, out_col);
        let c1 = self.router.chain(&seq[0]);
        let mut c2 = self.router.chain(&seq[1]);
        let c3 = self.router.chain(&seq[2]);
        debug_assert_eq!(c1.last(), c2.last(), "junction 1 mismatch");
        debug_assert_eq!(c2.first(), c3.first(), "junction 2 mismatch");
        let mut path = c1;
        c2.reverse();
        path.extend_from_slice(&c2[1..]);
        path.extend_from_slice(&c3[1..]);
        path
    }

    /// Streams all `2a^k · a^k` input–output paths into `counter`.
    pub fn route_all(&self, counter: &mut VertexHitCounter<'_>) {
        let g = self.g;
        let (n0, k) = (g.base().n0(), g.r());
        let ak = index::pow(g.base().a(), k);
        for layer in [Layer::EncA, Layer::EncB] {
            let side = match layer {
                Layer::EncA => DepSide::A,
                _ => DepSide::B,
            };
            for in_entry in 0..ak {
                let (ir, ic) = unpack_entry(in_entry, n0, k);
                for out_entry in 0..ak {
                    let (or_, oc) = unpack_entry(out_entry, n0, k);
                    counter.add_path(&self.path(side, ir, ic, or_, oc));
                }
            }
        }
    }

    /// Builds, verifies, and summarizes the routing, tracking meta-vertices.
    /// The returned stats satisfy `is_m_routing(theorem2_bound())` whenever
    /// the theorem's hypotheses hold.
    pub fn verify(&self) -> RoutingStats {
        let meta = MetaVertices::compute(self.g);
        let mut counter = VertexHitCounter::new(self.g, Some(&meta));
        self.route_all(&mut counter);
        counter.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_algos::laderman::laderman;
    use mmio_algos::strassen::{strassen, winograd};
    use mmio_algos::synthetic::{with_dummy_product, without_copying};
    use mmio_cdag::build::build_cdag;

    #[test]
    fn paths_have_valid_endpoints() {
        let g = build_cdag(&strassen(), 2);
        let routing = InOutRouting::new(&g).unwrap();
        let p = routing.path(DepSide::A, 2, 1, 3, 0);
        assert_eq!(p[0], g.input_a(2, 1));
        assert_eq!(*p.last().unwrap(), g.output(3, 0));
        // Three chains of 2(k+1)=6 vertices, sharing 2 junctions: 16.
        assert_eq!(p.len(), 3 * 6 - 2);
    }

    #[test]
    fn routing_theorem_holds_for_strassen() {
        for k in 1..=2u32 {
            let g = build_cdag(&strassen(), k);
            let routing = InOutRouting::new(&g).unwrap();
            let stats = routing.verify();
            assert_eq!(stats.paths, 2 * 16u64.pow(k)); // 2a^k · a^k
            assert!(
                stats.is_m_routing(routing.theorem2_bound()),
                "k={k}: {} / {} vs {}",
                stats.max_vertex_hits,
                stats.max_meta_hits,
                routing.theorem2_bound()
            );
        }
    }

    #[test]
    fn routing_theorem_holds_for_winograd() {
        let g = build_cdag(&winograd(), 2);
        let routing = InOutRouting::new(&g).unwrap();
        assert!(routing.verify().is_m_routing(routing.theorem2_bound()));
    }

    #[test]
    fn routing_theorem_holds_for_laderman() {
        let g = build_cdag(&laderman(), 1);
        let routing = InOutRouting::new(&g).unwrap();
        let stats = routing.verify();
        assert_eq!(stats.paths, 2 * 81);
        assert!(stats.is_m_routing(routing.theorem2_bound()));
    }

    #[test]
    fn routing_theorem_holds_with_disconnected_decoding() {
        // The paper's whole point: the routing survives structures that
        // break edge expansion.
        let g = build_cdag(&with_dummy_product(&strassen()), 2);
        let routing = InOutRouting::new(&g).unwrap();
        assert!(routing.verify().is_m_routing(routing.theorem2_bound()));
    }

    #[test]
    fn routing_theorem_holds_without_copying() {
        let g = build_cdag(&without_copying(&strassen()), 2);
        let routing = InOutRouting::new(&g).unwrap();
        let stats = routing.verify();
        assert!(stats.is_m_routing(routing.theorem2_bound()));
        // With no copying, every meta is a singleton: its per-path hit count
        // can only be below the per-occurrence vertex count (paths may
        // revisit a vertex across their three chain pieces).
        assert!(stats.max_meta_hits <= stats.max_vertex_hits);
    }
}
