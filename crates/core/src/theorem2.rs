//! Theorem 2 (the Routing Theorem): a `6a^k`-routing between the inputs and
//! outputs of `G_k`, hitting every meta-vertex at most `6a^k` times as well.
//!
//! Construction = Lemma 3 chains (`2n₀^k`-routing for guaranteed
//! dependencies) composed by the Lemma 4 concatenation scheme (each chain
//! reused at most `3n₀^k` times), giving `2n₀^k · 3n₀^k = 6a^k`.

use crate::chains::{ChainRouter, ChainScratch};
use crate::deps::{unpack_entry, DepSide};
use crate::lemma4::dependence_sequence;
use crate::routing::{PathArena, RoutingStats, VertexHitCounter};
use mmio_cdag::{index, Cdag, MetaVertices, VertexId};
use mmio_parallel::Pool;

/// The Routing Theorem's routing for one `G_k`.
pub struct InOutRouting<'g> {
    g: &'g Cdag,
    router: ChainRouter<'g>,
}

/// Reusable buffers for [`InOutRouting::path_with`]: the three constituent
/// chains plus the chain router's own digit scratch.
#[derive(Clone, Debug, Default)]
pub struct RouteScratch {
    chain: ChainScratch,
    c1: Vec<VertexId>,
    c2: Vec<VertexId>,
    c3: Vec<VertexId>,
}

impl RouteScratch {
    /// Fresh (empty) scratch.
    pub fn new() -> RouteScratch {
        RouteScratch::default()
    }
}

impl<'g> InOutRouting<'g> {
    /// Builds the routing machinery. `None` when the base graph admits no
    /// `n₀`-capacity Hall matching (paper assumptions violated).
    pub fn new(g: &'g Cdag) -> Option<InOutRouting<'g>> {
        Some(InOutRouting {
            g,
            router: ChainRouter::new(g)?,
        })
    }

    /// The Routing Theorem's claimed bound: `6·a^k`.
    pub fn theorem2_bound(&self) -> u64 {
        6 * index::pow(self.g.base().a(), self.g.r())
    }

    /// The path between one input vertex (`side`, entry digits
    /// `(in_row, in_col)`) and one output (`(out_row, out_col)`):
    /// concatenation of three chains, middle one reversed, junction
    /// vertices deduplicated.
    pub fn path(
        &self,
        side: DepSide,
        in_row: u64,
        in_col: u64,
        out_row: u64,
        out_col: u64,
    ) -> Vec<VertexId> {
        let mut scratch = RouteScratch::new();
        let mut path = Vec::new();
        self.path_with(
            side,
            in_row,
            in_col,
            out_row,
            out_col,
            &mut scratch,
            &mut path,
        );
        path
    }

    /// Allocation-free [`InOutRouting::path`]: writes the concatenated path
    /// into `out` (cleared first), reusing `scratch` for the three chains.
    #[allow(clippy::too_many_arguments)] // mirrors `path`, plus the two buffers
    pub fn path_with(
        &self,
        side: DepSide,
        in_row: u64,
        in_col: u64,
        out_row: u64,
        out_col: u64,
        scratch: &mut RouteScratch,
        out: &mut Vec<VertexId>,
    ) {
        let seq = dependence_sequence(side, in_row, in_col, out_row, out_col);
        self.router
            .chain_with(&seq[0], &mut scratch.chain, &mut scratch.c1);
        self.router
            .chain_with(&seq[1], &mut scratch.chain, &mut scratch.c2);
        self.router
            .chain_with(&seq[2], &mut scratch.chain, &mut scratch.c3);
        debug_assert_eq!(scratch.c1.last(), scratch.c2.last(), "junction 1 mismatch");
        debug_assert_eq!(
            scratch.c2.first(),
            scratch.c3.first(),
            "junction 2 mismatch"
        );
        out.clear();
        out.extend_from_slice(&scratch.c1);
        // Middle chain reversed, junction vertex (its last element, shared
        // with c1's tail) deduplicated.
        out.extend(scratch.c2[..scratch.c2.len() - 1].iter().rev());
        out.extend_from_slice(&scratch.c3[1..]);
    }

    /// The number of paths in the full routing: `2a^k · a^k`.
    pub fn n_paths(&self) -> u64 {
        let ak = index::pow(self.g.base().a(), self.g.r());
        2 * ak * ak
    }

    /// Enumerates the routing's paths for indices `range` (of `0..n_paths()`,
    /// ordered side-major, then input entry, then output entry — the same
    /// order [`InOutRouting::route_all`] streams them) and feeds each to `f`.
    pub fn for_each_path_in(
        &self,
        range: std::ops::Range<u64>,
        scratch: &mut RouteScratch,
        mut f: impl FnMut(&[VertexId]),
    ) {
        let g = self.g;
        let (n0, k) = (g.base().n0(), g.r());
        let ak = index::pow(g.base().a(), k);
        let mut path = Vec::with_capacity(6 * (k as usize + 1));
        for p in range {
            let side = if p < ak * ak { DepSide::A } else { DepSide::B };
            let (in_entry, out_entry) = ((p / ak) % ak, p % ak);
            let (ir, ic) = unpack_entry(in_entry, n0, k);
            let (or_, oc) = unpack_entry(out_entry, n0, k);
            self.path_with(side, ir, ic, or_, oc, scratch, &mut path);
            f(&path);
        }
    }

    /// Streams all `2a^k · a^k` input–output paths into `counter`.
    pub fn route_all(&self, counter: &mut VertexHitCounter<'_>) {
        let mut scratch = RouteScratch::new();
        self.for_each_path_in(0..self.n_paths(), &mut scratch, |path| {
            counter.add_path(path);
        });
    }

    /// Materializes the entire routing into a flat [`PathArena`] (the
    /// memoized-class representation transported into Fact-1 copies).
    pub fn collect_paths(&self) -> PathArena {
        let paths = self.n_paths() as usize;
        let mut arena = PathArena::with_capacity(paths, 6 * (self.g.r() as usize + 1) - 2);
        let mut scratch = RouteScratch::new();
        self.for_each_path_in(0..self.n_paths(), &mut scratch, |path| arena.push(path));
        arena
    }

    /// Builds, verifies, and summarizes the routing, tracking meta-vertices.
    /// The returned stats satisfy `is_m_routing(theorem2_bound())` whenever
    /// the theorem's hypotheses hold.
    pub fn verify(&self) -> RoutingStats {
        self.verify_with(&Pool::serial())
    }

    /// [`InOutRouting::verify`] sharded over `pool`: the path space is split
    /// into contiguous chunks, each chunk hit-counted into its own
    /// [`VertexHitCounter`], and the shards merged in fixed chunk order —
    /// so the returned stats are identical to the serial path at any thread
    /// count (hit counts are sums; merging is order-independent, and the
    /// fixed order makes that visible in the code rather than argued).
    pub fn verify_with(&self, pool: &Pool) -> RoutingStats {
        let meta = MetaVertices::compute(self.g);
        let n = self.n_paths();
        if pool.threads() == 1 {
            let mut counter = VertexHitCounter::new(self.g, Some(&meta));
            self.route_all(&mut counter);
            return counter.stats();
        }
        let chunks = (pool.threads() * 4).min(n.max(1) as usize);
        let shards = pool.map(chunks, |c| {
            let start = n * c as u64 / chunks as u64;
            let end = n * (c as u64 + 1) / chunks as u64;
            let mut counter = VertexHitCounter::new(self.g, Some(&meta));
            let mut scratch = RouteScratch::new();
            self.for_each_path_in(start..end, &mut scratch, |path| counter.add_path(path));
            counter
        });
        let mut merged = VertexHitCounter::new(self.g, Some(&meta));
        for shard in &shards {
            merged.merge(shard);
        }
        merged.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_algos::laderman::laderman;
    use mmio_algos::strassen::{strassen, winograd};
    use mmio_algos::synthetic::{with_dummy_product, without_copying};
    use mmio_cdag::build::build_cdag;

    #[test]
    fn paths_have_valid_endpoints() {
        let g = build_cdag(&strassen(), 2);
        let routing = InOutRouting::new(&g).unwrap();
        let p = routing.path(DepSide::A, 2, 1, 3, 0);
        assert_eq!(p[0], g.input_a(2, 1));
        assert_eq!(*p.last().unwrap(), g.output(3, 0));
        // Three chains of 2(k+1)=6 vertices, sharing 2 junctions: 16.
        assert_eq!(p.len(), 3 * 6 - 2);
    }

    #[test]
    fn routing_theorem_holds_for_strassen() {
        for k in 1..=2u32 {
            let g = build_cdag(&strassen(), k);
            let routing = InOutRouting::new(&g).unwrap();
            let stats = routing.verify();
            assert_eq!(stats.paths, 2 * 16u64.pow(k)); // 2a^k · a^k
            assert!(
                stats.is_m_routing(routing.theorem2_bound()),
                "k={k}: {} / {} vs {}",
                stats.max_vertex_hits,
                stats.max_meta_hits,
                routing.theorem2_bound()
            );
        }
    }

    #[test]
    fn routing_theorem_holds_for_winograd() {
        let g = build_cdag(&winograd(), 2);
        let routing = InOutRouting::new(&g).unwrap();
        assert!(routing.verify().is_m_routing(routing.theorem2_bound()));
    }

    #[test]
    fn routing_theorem_holds_for_laderman() {
        let g = build_cdag(&laderman(), 1);
        let routing = InOutRouting::new(&g).unwrap();
        let stats = routing.verify();
        assert_eq!(stats.paths, 2 * 81);
        assert!(stats.is_m_routing(routing.theorem2_bound()));
    }

    #[test]
    fn routing_theorem_holds_with_disconnected_decoding() {
        // The paper's whole point: the routing survives structures that
        // break edge expansion.
        let g = build_cdag(&with_dummy_product(&strassen()), 2);
        let routing = InOutRouting::new(&g).unwrap();
        assert!(routing.verify().is_m_routing(routing.theorem2_bound()));
    }

    #[test]
    fn routing_theorem_holds_without_copying() {
        let g = build_cdag(&without_copying(&strassen()), 2);
        let routing = InOutRouting::new(&g).unwrap();
        let stats = routing.verify();
        assert!(stats.is_m_routing(routing.theorem2_bound()));
        // With no copying, every meta is a singleton: its per-path hit count
        // can only be below the per-occurrence vertex count (paths may
        // revisit a vertex across their three chain pieces).
        assert!(stats.max_meta_hits <= stats.max_vertex_hits);
    }
}
