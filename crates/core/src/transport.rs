//! Fact-1 memoized routing classes and their transport into `G_r`.
//!
//! Fact 1 says the middle `2(k+1)` levels of `G_r` decompose into `b^{r-k}`
//! vertex-disjoint copies of `G_k`, each isomorphic to the standalone `G_k`
//! built from the same base graph. Every lemma routing (Lemma 3 chains,
//! Lemma 4 concatenation, the Routing Theorem's `6a^k`-routing) is therefore
//! *one object per `(base graph, k)` class*, not one per copy: this module
//! constructs it once — Hall matchings, chain lifting, path enumeration —
//! stores the paths flat in a [`PathArena`], and transports them into every
//! copy through the [`Subcomputation`] index isomorphism.
//!
//! ## Soundness of transported verification
//!
//! Per copy, the engine does two things:
//!
//! 1. **Global edge re-walk** — every transported path is re-walked hop by
//!    hop against `G_r`'s real adjacency (`preds`/`succs`). This is the
//!    part that could conceivably break if the isomorphism were wrong, so
//!    it is *never skipped*, only parallelized.
//! 2. **Hit counting in local coordinates** — the copies are vertex-disjoint
//!    (Fact 1; `copies_are_vertex_disjoint_and_cover_middle` in
//!    `mmio_cdag::fact1`), so a global vertex's hit count equals its local
//!    preimage's count in its own copy, and the global maximum over the
//!    middle levels is the maximum over copies. Counting against the
//!    standalone `G_k` (same dense index space for every copy) is exactly
//!    the global count, copy by copy.
//!
//! Meta-vertex hits are counted against the *standalone* `G_k`'s
//! meta-vertices — the objects the Routing Theorem speaks about. (Inside
//! `G_r`, a copy chain may continue past the copy's boundary rank; those
//! longer global metas can only merge local ones and are audited
//! independently by `mmio-analyze`'s union-find re-verification.)

use crate::routing::{PathArena, RoutingStats, VertexHitCounter};
use crate::theorem2::InOutRouting;
use mmio_cdag::build::build_cdag;
use mmio_cdag::fact1::Subcomputation;
use mmio_cdag::{BaseGraph, Cdag, CdagView, MetaVertices, VertexId};
use mmio_parallel::events::{self, SyncEvent};
use mmio_parallel::Pool;
use serde::Serialize;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One memoized routing class: the Routing Theorem's `6a^k`-routing built
/// once on a standalone `G_k`, ready to be transported into every copy of
/// `G_k` inside any `G_r` over the same base graph.
pub struct RoutingClass {
    /// The standalone `G_k` the class was built on.
    gk: Cdag,
    /// Its meta-vertices (the Routing Theorem's counting unit).
    meta: MetaVertices,
    /// Depth `k`.
    pub k: u32,
    /// All `2a^{2k}` paths, flat.
    paths: PathArena,
    /// The class's own verified statistics (vertex and meta hits on `G_k`).
    pub stats: RoutingStats,
    /// The Routing Theorem bound `6a^k`.
    pub bound: u64,
}

impl RoutingClass {
    /// Builds and verifies the class: Hall matchings, chain lifting, full
    /// path enumeration into the arena, then hit-count verification sharded
    /// over `pool`. `None` when the base graph admits no `n₀`-capacity Hall
    /// matching (the Routing Theorem's hypotheses fail).
    pub fn build(base: &BaseGraph, k: u32, pool: &Pool) -> Option<RoutingClass> {
        let gk = build_cdag(base, k);
        let meta = MetaVertices::compute(&gk);
        let (paths, bound) = {
            let routing = InOutRouting::new(&gk)?;
            (routing.collect_paths(), routing.theorem2_bound())
        };
        // Verify from the arena (not by re-deriving chains): shard the path
        // index space, merge shards in fixed chunk order.
        let n = paths.len();
        let chunks = (pool.threads() * 4).min(n.max(1));
        let shards = pool.map(chunks, |c| {
            let mut counter = VertexHitCounter::new(&gk, Some(&meta));
            for i in n * c / chunks..n * (c + 1) / chunks {
                counter.add_path(paths.path(i));
            }
            counter
        });
        let mut merged = VertexHitCounter::new(&gk, Some(&meta));
        for shard in &shards {
            merged.merge(shard);
        }
        let stats = merged.stats();
        Some(RoutingClass {
            gk,
            meta,
            k,
            paths,
            stats,
            bound,
        })
    }

    /// The standalone `G_k`.
    pub fn gk(&self) -> &Cdag {
        &self.gk
    }

    /// The class's paths (local vertex ids of [`RoutingClass::gk`]).
    pub fn paths(&self) -> &PathArena {
        &self.paths
    }

    /// Fills `table` with the Fact-1 translation of every `G_k` vertex into
    /// the copy `sub` of `G_r`: `table[local.idx()]` is the global image.
    /// This is the *entire* per-copy construction cost of a transported
    /// routing — `O(|V(G_k)|)` index arithmetic, independent of the number
    /// of paths.
    pub fn translate_into(&self, sub: &Subcomputation<'_>, table: &mut Vec<VertexId>) {
        table.clear();
        table.extend(
            self.gk
                .vertices()
                .map(|lv| sub.local_to_global(self.gk.vref(lv))),
        );
    }
}

/// Process-wide cache of routing classes, keyed by the registry algorithm
/// id (the base graph's name) and depth `k`. Lookups are serialized on one
/// mutex — class construction is rare by design (that is the point of the
/// cache) and every workload after the first hit is read-only through the
/// returned [`Arc`].
#[derive(Default)]
pub struct RoutingMemo {
    classes: Mutex<ClassTable>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// The memo's storage: `(algorithm id, k)` → built class, with `None`
/// memoizing "no Hall matching at this capacity".
type ClassTable = HashMap<(String, u32), Option<Arc<RoutingClass>>>;

impl RoutingMemo {
    /// An empty cache.
    pub fn new() -> RoutingMemo {
        RoutingMemo::default()
    }

    /// The class for `(base, k)`, building (and verifying) it on first
    /// request. `None` is also memoized: a base graph without a Hall
    /// matching stays without one.
    pub fn class(&self, base: &BaseGraph, k: u32, pool: &Pool) -> Option<Arc<RoutingClass>> {
        let key = (base.name().to_string(), k);
        let ekey = events::memo_key(base.name(), k);
        // A panic inside `RoutingClass::build` (isolated by a caller's
        // `catch_unwind`, as the serve tier does per job) poisons this
        // mutex without ever leaving the table inconsistent — the insert
        // only happens after a successful build. Recover the guard so one
        // panicking request cannot permanently poison the memo for every
        // request after it.
        let mut classes = self
            .classes
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Emitted while the lock is held, so the trace's lock/fill/unlock
        // triples nest correctly (see mmio-parallel's events module docs).
        events::emit(SyncEvent::MemoLock);
        if let Some(cached) = classes.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            events::emit(SyncEvent::MemoHit { key: ekey });
            events::emit(SyncEvent::MemoUnlock);
            return cached.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // The class is built *inside* the critical section: lost updates
        // and double-fills are impossible by construction, which is exactly
        // what mmio-check's model checker certifies (and what its buggy
        // check-then-act variant demonstrably violates).
        let built = RoutingClass::build(base, k, pool).map(Arc::new);
        classes.insert(key, built.clone());
        events::emit(SyncEvent::MemoFill { key: ekey });
        events::emit(SyncEvent::MemoUnlock);
        built
    }

    /// `(cache hits, cache misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// The outcome of transporting one routing class into every copy of `G_k`
/// inside a `G_r` and re-verifying each copy.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct TransportReport {
    /// Depth of the transported class.
    pub k: u32,
    /// Number of copies `b^{r-k}` the class was transported into.
    pub copies: u64,
    /// Paths per copy (`2a^{2k}`).
    pub paths_per_copy: u64,
    /// The Routing Theorem bound `6a^k`.
    pub bound: u64,
    /// Max per-vertex hits over all copies (== the standalone class's, when
    /// the isomorphism is correct — asserted by `uniform`).
    pub max_vertex_hits: u64,
    /// Max per-meta hits over all copies (standalone-`G_k` metas).
    pub max_meta_hits: u64,
    /// Transported path hops that failed the global `G_r` edge re-walk.
    /// Any nonzero value means the transport (or Fact 1 itself) is broken.
    pub edge_violations: u64,
    /// Whether every copy produced identical hit statistics — the
    /// observable consequence of the copies being isomorphic.
    pub uniform: bool,
}

impl TransportReport {
    /// Whether every copy verified as a `bound`-routing with no edge
    /// violations.
    pub fn verified(&self) -> bool {
        self.edge_violations == 0
            && self.max_vertex_hits <= self.bound
            && self.max_meta_hits <= self.bound
    }
}

/// Per-copy verification summary (internal).
#[derive(Clone, Copy, PartialEq, Eq)]
struct CopyStats {
    max_vertex_hits: u64,
    max_meta_hits: u64,
    edge_violations: u64,
}

/// Transports `class` into every copy of `G_k` inside `g` and re-verifies
/// each copy: global edge re-walk of every transported path, plus per-copy
/// hit counting (see the module docs for why local counting is the global
/// count). Copies are sharded over `pool` and merged in prefix order, so
/// the report is identical at any thread count.
///
/// # Panics
/// Panics if `g` was not built from the same base graph as `class`, or if
/// `class.k > g.r()`.
pub fn verify_transported(g: &Cdag, class: &RoutingClass, pool: &Pool) -> TransportReport {
    assert_eq!(
        g.base().name(),
        class.gk.base().name(),
        "class and graph must share a base graph"
    );
    let copies = Subcomputation::count(g, class.k);
    let chunks = ((pool.threads() * 4).min(copies.max(1) as usize)).max(1);
    let per_chunk: Vec<Vec<CopyStats>> = pool.map(chunks, |c| {
        let start = copies * c as u64 / chunks as u64;
        let end = copies * (c as u64 + 1) / chunks as u64;
        // One translation table and one counter, reused across the chunk's
        // copies.
        let mut table: Vec<VertexId> = Vec::with_capacity(class.gk.n_vertices());
        let mut counter = VertexHitCounter::new(&class.gk, Some(&class.meta));
        let mut out = Vec::with_capacity((end - start) as usize);
        for prefix in start..end {
            let sub = Subcomputation::new(g, class.k, prefix);
            class.translate_into(&sub, &mut table);
            counter.reset();
            let mut edge_violations = 0u64;
            for path in class.paths.iter() {
                counter.add_path(path);
                // Global re-walk: every transported hop must be a real edge
                // of G_r, in either direction.
                for w in path.windows(2) {
                    let (gu, gv) = (table[w[0].idx()], table[w[1].idx()]);
                    if !(g.preds(gv).contains(&gu) || g.succs(gv).contains(&gu)) {
                        edge_violations += 1;
                    }
                }
            }
            let stats = counter.stats();
            out.push(CopyStats {
                max_vertex_hits: stats.max_vertex_hits,
                max_meta_hits: stats.max_meta_hits,
                edge_violations,
            });
        }
        out
    });

    // Deterministic merge in prefix order (chunks are contiguous and
    // ordered; within a chunk, copies were pushed in prefix order).
    let mut merged = CopyStats {
        max_vertex_hits: 0,
        max_meta_hits: 0,
        edge_violations: 0,
    };
    let mut uniform = true;
    let mut first: Option<CopyStats> = None;
    for cs in per_chunk.iter().flatten() {
        merged.max_vertex_hits = merged.max_vertex_hits.max(cs.max_vertex_hits);
        merged.max_meta_hits = merged.max_meta_hits.max(cs.max_meta_hits);
        merged.edge_violations += cs.edge_violations;
        match &first {
            None => first = Some(*cs),
            Some(f) => uniform &= f == cs,
        }
    }
    TransportReport {
        k: class.k,
        copies,
        paths_per_copy: class.paths.len() as u64,
        bound: class.bound,
        max_vertex_hits: merged.max_vertex_hits,
        max_meta_hits: merged.max_meta_hits,
        edge_violations: merged.edge_violations,
        uniform,
    }
}

/// [`verify_transported`] over any [`CdagView`] of `G_r`: the same
/// transport — full global edge re-walk of every path in every copy, plus
/// per-copy hit counting — against the view's closed-form adjacency instead
/// of materialized `preds`/`succs` slices. With an
/// [`mmio_cdag::IndexView`], peak memory is `O(|V(G_k)| + paths)`
/// regardless of `r`, which is what lets the transport argument be checked
/// at `r ≥ 8` where `G_r` itself does not fit. Same chunking and
/// prefix-order merge, so the report is byte-identical to
/// [`verify_transported`] at any thread count (pinned by
/// `view_transport_matches_explicit` below).
///
/// # Panics
/// Panics if `gr`'s `(a, b)` differ from the class's base graph, or if
/// `class.k > gr.r()`.
pub fn verify_transported_view<V: CdagView + Sync>(
    gr: &V,
    class: &RoutingClass,
    pool: &Pool,
) -> TransportReport {
    assert_eq!(
        (gr.a(), gr.b()),
        (class.gk.base().a(), class.gk.base().b()),
        "class and view must share a base graph"
    );
    assert!(class.k <= gr.r(), "transport requires k <= r");
    let copies = mmio_cdag::index::pow(gr.b(), gr.r() - class.k);
    let chunks = ((pool.threads() * 4).min(copies.max(1) as usize)).max(1);
    let per_chunk: Vec<Vec<CopyStats>> = pool.map(chunks, |c| {
        let start = copies * c as u64 / chunks as u64;
        let end = copies * (c as u64 + 1) / chunks as u64;
        let n_local = class.gk.n_vertices();
        let mut table: Vec<VertexId> = Vec::with_capacity(n_local);
        let mut counter = VertexHitCounter::new(&class.gk, Some(&class.meta));
        let (mut preds, mut succs) = (Vec::new(), Vec::new());
        let mut out = Vec::with_capacity((end - start) as usize);
        for prefix in start..end {
            // The Fact-1 translation table, from the view's closed-form
            // lift instead of `Subcomputation` (which needs the full Cdag).
            table.clear();
            table.extend((0..n_local as u32).map(|lv| {
                gr.lift_from(&class.gk, prefix, VertexId(lv))
                    .expect("Fact-1 lift in range")
            }));
            counter.reset();
            let mut edge_violations = 0u64;
            for path in class.paths.iter() {
                counter.add_path(path);
                for w in path.windows(2) {
                    let (gu, gv) = (table[w[0].idx()], table[w[1].idx()]);
                    preds.clear();
                    succs.clear();
                    gr.preds_into(gv, &mut preds);
                    gr.succs_into(gv, &mut succs);
                    if !(preds.contains(&gu) || succs.contains(&gu)) {
                        edge_violations += 1;
                    }
                }
            }
            let stats = counter.stats();
            out.push(CopyStats {
                max_vertex_hits: stats.max_vertex_hits,
                max_meta_hits: stats.max_meta_hits,
                edge_violations,
            });
        }
        out
    });

    let mut merged = CopyStats {
        max_vertex_hits: 0,
        max_meta_hits: 0,
        edge_violations: 0,
    };
    let mut uniform = true;
    let mut first: Option<CopyStats> = None;
    for cs in per_chunk.iter().flatten() {
        merged.max_vertex_hits = merged.max_vertex_hits.max(cs.max_vertex_hits);
        merged.max_meta_hits = merged.max_meta_hits.max(cs.max_meta_hits);
        merged.edge_violations += cs.edge_violations;
        match &first {
            None => first = Some(*cs),
            Some(f) => uniform &= f == cs,
        }
    }
    TransportReport {
        k: class.k,
        copies,
        paths_per_copy: class.paths.len() as u64,
        bound: class.bound,
        max_vertex_hits: merged.max_vertex_hits,
        max_meta_hits: merged.max_meta_hits,
        edge_violations: merged.edge_violations,
        uniform,
    }
}

/// Emits a self-contained, portable routing certificate for `class`
/// transported into `G_r`: the base coefficients, all `2a^{2k}` paths in
/// local `G_k` ids, the claimed hit maxima against the `6a^k` bound, and
/// the full Fact-1 prefix set `[b^{r-k}]`. The standalone `mmio-cert`
/// verifier re-derives every edge, the copy grouping, the hit counts, and
/// the transport images from the certificate alone — none of this module
/// is in its trust base.
///
/// # Panics
/// Panics if `r < k` (there is no transport target).
pub fn emit_certificate(class: &RoutingClass, r: u32) -> mmio_cert::Certificate {
    use mmio_cert::format::{BaseSpec, Payload, RoutingPayload};
    assert!(class.k <= r, "transport requires k <= r");
    let base = class.gk().base();
    let copies = mmio_cdag::index::pow(base.b(), r - class.k);
    let arena = class.paths();
    #[allow(unused_mut)]
    let mut paths: Vec<Vec<u32>> = (0..arena.len())
        .map(|i| arena.path(i).iter().map(|v| v.0).collect())
        .collect();
    #[allow(unused_mut)]
    let mut copy_prefixes: Vec<u64> = (0..copies).collect();
    #[allow(unused_mut)]
    let mut max_vertex_hits = class.stats.max_vertex_hits;
    #[cfg(feature = "mutate")]
    {
        use std::sync::atomic::Ordering::SeqCst;
        if crate::mutate::DROP_LAST_PATH.load(SeqCst) {
            paths.pop();
        }
        if crate::mutate::UNDERCOUNT_VERTEX_HITS.load(SeqCst) {
            max_vertex_hits = max_vertex_hits.saturating_sub(1);
        }
        if crate::mutate::PREFIX_LIE.load(SeqCst) {
            if let Some(last) = copy_prefixes.last_mut() {
                *last = 0;
            }
        }
    }
    mmio_cert::Certificate::new(
        BaseSpec::from_base(base),
        Payload::Routing(RoutingPayload {
            k: class.k,
            r,
            bound: class.bound,
            max_vertex_hits,
            max_meta_hits: class.stats.max_meta_hits,
            paths,
            copy_prefixes,
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_algos::laderman::laderman;
    use mmio_algos::strassen::{strassen, winograd};
    use mmio_algos::synthetic::with_dummy_product;

    #[test]
    fn class_matches_direct_routing() {
        let pool = Pool::serial();
        let class = RoutingClass::build(&strassen(), 2, &pool).unwrap();
        let gk = build_cdag(&strassen(), 2);
        let direct = InOutRouting::new(&gk).unwrap();
        let direct_stats = direct.verify();
        assert_eq!(class.stats.paths, direct_stats.paths);
        assert_eq!(class.stats.max_vertex_hits, direct_stats.max_vertex_hits);
        assert_eq!(class.stats.max_meta_hits, direct_stats.max_meta_hits);
        assert_eq!(class.bound, direct.theorem2_bound());
        assert_eq!(class.paths().len() as u64, direct.n_paths());
    }

    #[test]
    fn transported_copies_verify_and_are_uniform() {
        let pool = Pool::serial();
        let base = strassen();
        let memo = RoutingMemo::new();
        let class = memo.class(&base, 1, &pool).unwrap();
        let g = build_cdag(&base, 3);
        let report = verify_transported(&g, &class, &pool);
        assert_eq!(report.copies, 49); // b^{r-k} = 7²
        assert_eq!(report.paths_per_copy, 2 * 16); // 2a^{2k}
        assert!(report.verified(), "{report:?}");
        assert!(report.uniform);
        // The copy maxima coincide with the standalone class's.
        assert_eq!(report.max_vertex_hits, class.stats.max_vertex_hits);
        assert_eq!(report.max_meta_hits, class.stats.max_meta_hits);
    }

    #[test]
    fn transport_is_thread_count_invariant() {
        let base = winograd();
        let g = build_cdag(&base, 3);
        let serial_pool = Pool::serial();
        let class = RoutingClass::build(&base, 1, &serial_pool).unwrap();
        let serial = verify_transported(&g, &class, &serial_pool);
        for threads in [2, 8] {
            let pool = Pool::new(threads);
            let par = verify_transported(&g, &class, &pool);
            assert_eq!(
                format!("{serial:?}"),
                format!("{par:?}"),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn memo_caches_per_algorithm_and_depth() {
        let pool = Pool::serial();
        let memo = RoutingMemo::new();
        let c1 = memo.class(&strassen(), 1, &pool).unwrap();
        let c2 = memo.class(&strassen(), 1, &pool).unwrap();
        assert!(Arc::ptr_eq(&c1, &c2), "same (algo, k) must share the class");
        let c3 = memo.class(&strassen(), 2, &pool).unwrap();
        assert!(!Arc::ptr_eq(&c1, &c3));
        let _ = memo.class(&laderman(), 1, &pool).unwrap();
        assert_eq!(memo.stats(), (1, 3)); // one hit, three builds
    }

    #[test]
    fn dummy_product_variant_transports_too() {
        // The paper's motivating pathology (disconnected decoding) breaks
        // Section 5, not the Routing Theorem — so transport must work.
        let pool = Pool::new(2);
        let base = with_dummy_product(&strassen());
        let class = RoutingClass::build(&base, 1, &pool).unwrap();
        let g = build_cdag(&base, 3);
        let report = verify_transported(&g, &class, &pool);
        assert!(report.verified(), "{report:?}");
        assert!(report.uniform);
    }

    #[test]
    fn laderman_k1_r2_transport() {
        let pool = Pool::serial();
        let base = laderman();
        let class = RoutingClass::build(&base, 1, &pool).unwrap();
        let g = build_cdag(&base, 2);
        let report = verify_transported(&g, &class, &pool);
        assert_eq!(report.copies, 23); // b^{r-k}
        assert!(report.verified(), "{report:?}");
    }

    #[test]
    fn view_transport_matches_explicit() {
        use mmio_cdag::IndexView;
        let base = strassen();
        let g = build_cdag(&base, 3);
        let view = IndexView::from_base(&base, 3);
        for threads in [1usize, 4] {
            let pool = if threads == 1 {
                Pool::serial()
            } else {
                Pool::new(threads)
            };
            let class = RoutingClass::build(&base, 1, &pool).unwrap();
            let explicit = verify_transported(&g, &class, &pool);
            // Same report whether G_r is materialized, wrapped as a view,
            // or purely closed-form.
            let via_cdag = verify_transported_view(&g, &class, &pool);
            let via_index = verify_transported_view(&view, &class, &pool);
            assert_eq!(format!("{explicit:?}"), format!("{via_cdag:?}"));
            assert_eq!(format!("{explicit:?}"), format!("{via_index:?}"));
            assert!(explicit.verified());
        }
    }

    #[test]
    #[should_panic(expected = "share a base graph")]
    fn mismatched_base_rejected() {
        let pool = Pool::serial();
        let class = RoutingClass::build(&strassen(), 1, &pool).unwrap();
        let g = build_cdag(&winograd(), 2);
        let _ = verify_transported(&g, &class, &pool);
    }
}
