//! Guaranteed dependencies (Section 7).
//!
//! For `v ∈ In` and `w ∈ Out` of `G_k`, the pair `(v, w)` is a *guaranteed
//! dependence* if every correct matrix multiplication algorithm must contain
//! a chain from `v` to `w`: for `v = a_{ij}` and `w = c_{i'j'}` exactly when
//! `i = i'`; for `v = b_{ij}` exactly when `j = j'`. At recursion depth `k`
//! indices are digit vectors and the conditions hold digitwise.

use mmio_cdag::index;
use mmio_cdag::{Cdag, Layer, VertexId, VertexRef};

/// Which input matrix a dependence starts from.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DepSide {
    /// `(a_{ij}, c_{ij'})`.
    A,
    /// `(b_{ij}, c_{i'j})`.
    B,
}

/// A guaranteed dependence in `G_k`, in digit form: each index is a packed
/// base-`n₀` digit vector of length `k`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Dependence {
    /// Side of the input.
    pub side: DepSide,
    /// Row digits of the input entry.
    pub in_row: u64,
    /// Column digits of the input entry.
    pub in_col: u64,
    /// Row digits of the output entry.
    pub out_row: u64,
    /// Column digits of the output entry.
    pub out_col: u64,
}

impl Dependence {
    /// Creates an A-side dependence `(a_{ij}, c_{ij'})`.
    pub fn a_side(i: u64, j: u64, j2: u64) -> Dependence {
        Dependence {
            side: DepSide::A,
            in_row: i,
            in_col: j,
            out_row: i,
            out_col: j2,
        }
    }

    /// Creates a B-side dependence `(b_{ij}, c_{i'j})`.
    pub fn b_side(i: u64, j: u64, i2: u64) -> Dependence {
        Dependence {
            side: DepSide::B,
            in_row: i,
            in_col: j,
            out_row: i2,
            out_col: j,
        }
    }

    /// The guaranteed-dependence condition: rows match (A side) or columns
    /// match (B side).
    pub fn is_guaranteed(&self) -> bool {
        match self.side {
            DepSide::A => self.in_row == self.out_row,
            DepSide::B => self.in_col == self.out_col,
        }
    }
}

/// Packs per-level `(row, col)` digit pairs into the single `[a]`-digit
/// entry index used by `mmio-cdag` (entry digit = `row·n₀ + col`).
pub fn pack_entry(row: u64, col: u64, n0: usize, k: u32) -> u64 {
    let rd = index::unpack(row, n0, k as usize);
    let cd = index::unpack(col, n0, k as usize);
    let digits: Vec<usize> = rd.iter().zip(&cd).map(|(&r, &c)| r * n0 + c).collect();
    index::pack(&digits, n0 * n0)
}

/// Splits a packed `[a]`-digit entry index into packed row and column digit
/// vectors.
pub fn unpack_entry(entry: u64, n0: usize, k: u32) -> (u64, u64) {
    let digits = index::unpack(entry, n0 * n0, k as usize);
    let rows: Vec<usize> = digits.iter().map(|&d| d / n0).collect();
    let cols: Vec<usize> = digits.iter().map(|&d| d % n0).collect();
    (index::pack(&rows, n0), index::pack(&cols, n0))
}

/// The input vertex of `g` corresponding to a dependence's input entry.
pub fn input_vertex(g: &Cdag, dep: &Dependence) -> VertexId {
    let n0 = g.base().n0();
    let layer = match dep.side {
        DepSide::A => Layer::EncA,
        DepSide::B => Layer::EncB,
    };
    g.id(VertexRef {
        layer,
        level: 0,
        mul: 0,
        entry: pack_entry(dep.in_row, dep.in_col, n0, g.r()),
    })
}

/// The output vertex of `g` corresponding to a dependence's output entry.
pub fn output_vertex(g: &Cdag, dep: &Dependence) -> VertexId {
    let n0 = g.base().n0();
    g.id(VertexRef {
        layer: Layer::Dec,
        level: g.r(),
        mul: 0,
        entry: pack_entry(dep.out_row, dep.out_col, n0, g.r()),
    })
}

/// Enumerates the full set `F` of guaranteed dependencies of `G_k`
/// (`2·n₀^{3k}` of them).
pub fn all_dependencies(n0: usize, k: u32) -> Vec<Dependence> {
    let nk = index::pow(n0, k);
    let mut out = Vec::with_capacity(2 * (nk * nk * nk) as usize);
    for i in 0..nk {
        for j in 0..nk {
            for l in 0..nk {
                out.push(Dependence::a_side(i, j, l));
                out.push(Dependence::b_side(i, j, l));
            }
        }
    }
    out
}

/// Checks a dependence against the CDAG: directed reachability from the
/// input vertex to the output vertex. Ground truth for the "guaranteed"
/// definition (correct algorithms must realize every guaranteed dependence).
pub fn dependence_realized(g: &Cdag, dep: &Dependence) -> bool {
    let src = input_vertex(g, dep);
    let dst = output_vertex(g, dep);
    // Forward BFS along directed edges.
    let mut visited = vec![false; g.n_vertices()];
    let mut queue = std::collections::VecDeque::new();
    visited[src.idx()] = true;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        if v == dst {
            return true;
        }
        for &s in g.succs(v) {
            if !visited[s.idx()] {
                visited[s.idx()] = true;
                queue.push_back(s);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_algos::strassen::strassen;
    use mmio_cdag::build::build_cdag;

    #[test]
    fn entry_pack_roundtrip() {
        let (n0, k) = (2usize, 3u32);
        let nk = index::pow(n0, k);
        for row in 0..nk {
            for col in 0..nk {
                let e = pack_entry(row, col, n0, k);
                assert_eq!(unpack_entry(e, n0, k), (row, col));
            }
        }
    }

    #[test]
    fn dependence_counts() {
        assert_eq!(all_dependencies(2, 1).len(), 2 * 8);
        assert_eq!(all_dependencies(2, 2).len(), 2 * 64);
        assert_eq!(all_dependencies(3, 1).len(), 2 * 27);
    }

    #[test]
    fn guaranteed_predicate() {
        assert!(Dependence::a_side(3, 1, 2).is_guaranteed());
        assert!(Dependence::b_side(0, 2, 3).is_guaranteed());
        let broken = Dependence {
            side: DepSide::A,
            in_row: 1,
            in_col: 0,
            out_row: 2,
            out_col: 0,
        };
        assert!(!broken.is_guaranteed());
    }

    #[test]
    fn all_guaranteed_dependencies_are_realized_in_strassen() {
        for k in 1..=2u32 {
            let g = build_cdag(&strassen(), k);
            for dep in all_dependencies(2, k) {
                assert!(
                    dependence_realized(&g, &dep),
                    "dep {dep:?} not realized at k={k}"
                );
            }
        }
    }

    #[test]
    fn non_guaranteed_pairs_exist_and_some_are_unrealized() {
        // In Strassen at k=1, a11 reaches ALL outputs (cancellation paths),
        // but the definition of guaranteed only promises row matches. We
        // check realization is a superset of guarantee — and that the
        // realized relation is not trivially empty.
        let g = build_cdag(&strassen(), 1);
        let realized_count = all_dependencies(2, 1)
            .iter()
            .filter(|d| dependence_realized(&g, d))
            .count();
        assert_eq!(realized_count, 16, "all guaranteed deps realized");
    }

    #[test]
    fn input_output_vertices_land_on_correct_ranks() {
        let g = build_cdag(&strassen(), 2);
        let dep = Dependence::a_side(2, 1, 3);
        assert!(g.is_input(input_vertex(&g, &dep)));
        assert!(g.is_output(output_vertex(&g, &dep)));
        // Input row/col digits must match the matrix-position accessor.
        let v = input_vertex(&g, &dep);
        assert_eq!(v, g.input_a(2, 1));
        let w = output_vertex(&g, &dep);
        assert_eq!(w, g.output(2, 3));
    }
}
