//! The Section 8 extension: lifting the single-use assumption.
//!
//! Without the assumption, a nontrivial combination may feed several
//! multiplications; Lemma 5's middle-vertex accounting breaks because the
//! duplicated combination vertices would absorb too many chains. The paper
//! conjectures the fix: *generalized paths* may "jump" between vertices on
//! the same rank holding the same value (and hence the same membership in
//! any meta-closed `S`), and claims this neither reduces boundary-crossing
//! counts nor pushes any value above `6a^k` generalized hits.
//!
//! This module operationalizes the conjecture on concrete violating
//! algorithms:
//!
//! - [`duplicate_groups`]: the products whose (side-)combinations coincide
//!   in value — the jump targets;
//! - [`BalancedRouter`]: a chain router that spreads dependencies across
//!   duplicate products (the deterministic counterpart of "jumping"), so
//!   hit counts are measured per *value class*;
//! - [`analyze_generalized`]: the segment argument with value-class
//!   closures and boundaries — the quantity Section 8 says stays large.

use crate::chains::ChainRouter;
use crate::hall::MatchingGraph;
use mmio_cdag::base::Side;
use mmio_cdag::values::ValueClasses;
use mmio_cdag::{Cdag, MetaVertices, VertexId};
use serde::Serialize;

/// Groups of products sharing the same encoding row on `side` (the same
/// combination value feeding several multiplications). Only nontrivial
/// rows count — trivial shared rows are copying, which the base theory
/// already handles.
pub fn duplicate_groups(g: &Cdag, side: Side) -> Vec<Vec<usize>> {
    let base = g.base();
    let enc = base.enc(side);
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut assigned = vec![false; base.b()];
    for m1 in 0..base.b() {
        if assigned[m1] || base.row_is_trivial(side, m1) {
            continue;
        }
        let mut group = vec![m1];
        for (m2, slot) in assigned.iter_mut().enumerate().skip(m1 + 1) {
            if !*slot && enc.row(m1) == enc.row(m2) {
                group.push(m2);
                *slot = true;
            }
        }
        if group.len() > 1 {
            groups.push(group);
        }
    }
    groups
}

/// A router that balances dependencies across duplicate products: after
/// the Hall matching assigns a middle vertex, dependencies whose match
/// lands in a duplicate group are redistributed round-robin over the
/// group members that also satisfy the decoding-side admissibility.
pub struct BalancedRouter<'g> {
    inner: ChainRouter<'g>,
}

impl<'g> BalancedRouter<'g> {
    /// Builds the router. Falls back to the plain Hall matching when the
    /// graph has no duplicate groups.
    pub fn new(g: &'g Cdag) -> Option<BalancedRouter<'g>> {
        let base = g.base();
        let n0 = base.n0();
        let mg_a = MatchingGraph::new(base, Side::A);
        let mg_b = MatchingGraph::new(base, Side::B);
        let mut table_a = mg_a.matching_table(n0)?;
        let mut table_b = mg_b.matching_table(n0)?;

        // Redistribute within duplicate groups, round-robin per group,
        // respecting admissibility of the alternative product.
        for (side, table) in [(Side::A, &mut table_a), (Side::B, &mut table_b)] {
            let groups = duplicate_groups(g, side);
            if groups.is_empty() {
                continue;
            }
            let mg = MatchingGraph::new(base, side);
            let mut rr = vec![0usize; groups.len()];
            for d in mg.all_deps() {
                let current = table[d.shared][d.in_other][d.out_other];
                let Some((gi, group)) = groups
                    .iter()
                    .enumerate()
                    .find(|(_, grp)| grp.contains(&current))
                else {
                    continue;
                };
                // Candidates: group members admissible for this dependence.
                let candidates: Vec<usize> =
                    group.iter().copied().filter(|&y| mg.edge(&d, y)).collect();
                if candidates.len() > 1 {
                    table[d.shared][d.in_other][d.out_other] =
                        candidates[rr[gi] % candidates.len()];
                    rr[gi] += 1;
                }
            }
        }
        Some(BalancedRouter {
            inner: ChainRouter::with_tables(g, table_a, table_b),
        })
    }

    /// The underlying chain router (balanced tables installed).
    pub fn router(&self) -> &ChainRouter<'g> {
        &self.inner
    }
}

/// One segment's generalized report.
#[derive(Clone, Debug, Serialize)]
pub struct GeneralizedSegment {
    /// Segment bounds in the compute order.
    pub start: usize,
    /// Exclusive end.
    pub end: usize,
    /// Counted vertices computed in this segment (value-closure counting).
    pub counted: u64,
    /// Meta-vertex boundary `|δ'(S')|` (the base theory's quantity).
    pub meta_boundary: u64,
    /// Value-class boundary (the Section 8 quantity — classes merge
    /// duplicated values, so this can only be smaller).
    pub class_boundary: u64,
}

/// Segment analysis with value-class closures: partitions `order` into
/// segments of `threshold` counted vertices where membership closes over
/// *value classes* (Section 8's "same value ⇒ same membership in S"), and
/// reports both boundary notions per segment.
pub fn analyze_generalized(
    g: &Cdag,
    order: &[VertexId],
    counted: &[bool],
    threshold: u64,
) -> Vec<GeneralizedSegment> {
    let vc = ValueClasses::compute(g);
    let meta = MetaVertices::compute(g);
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut counted_in_segment = 0u64;
    let mut segment_vertices: Vec<VertexId> = Vec::new();
    let mut counted_seen = vec![false; g.n_vertices()];

    let mut flush = |start: usize, end: usize, counted_n: u64, vs: &[VertexId]| {
        out.push(GeneralizedSegment {
            start,
            end,
            counted: counted_n,
            meta_boundary: meta.meta_boundary(g, vs).len() as u64,
            class_boundary: vc.class_boundary(g, vs).len() as u64,
        });
    };

    for (i, &v) in order.iter().enumerate() {
        segment_vertices.push(v);
        for &w in vc.members_of(v) {
            if counted[w.idx()] && !counted_seen[w.idx()] {
                counted_seen[w.idx()] = true;
                counted_in_segment += 1;
            }
        }
        if counted_in_segment >= threshold {
            flush(start, i + 1, counted_in_segment, &segment_vertices);
            start = i + 1;
            counted_in_segment = 0;
            segment_vertices.clear();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::VertexHitCounter;
    use mmio_algos::strassen::strassen;
    use mmio_algos::synthetic::with_duplicated_combination;
    use mmio_cdag::build::build_cdag;

    #[test]
    fn duplicate_groups_detected() {
        let base = with_duplicated_combination(&strassen());
        let g = build_cdag(&base, 1);
        let ga = duplicate_groups(&g, Side::A);
        assert_eq!(ga, vec![vec![0, 7]], "M1's A-combination is duplicated");
        let gb = duplicate_groups(&g, Side::B);
        assert_eq!(gb, vec![vec![0, 7]]);
        // Plain Strassen has none.
        let gs = build_cdag(&strassen(), 1);
        assert!(duplicate_groups(&gs, Side::A).is_empty());
    }

    #[test]
    fn balanced_router_meets_class_bound_on_violating_graph() {
        // Section 8's claim, checked: on the duplicated variant, counting
        // hits per *value class*, the routed chains stay within the
        // Lemma 3 bound.
        let base = with_duplicated_combination(&strassen());
        for k in 1..=2u32 {
            let g = build_cdag(&base, k);
            let router = BalancedRouter::new(&g).expect("matching exists");
            let vc = ValueClasses::compute(&g);
            let mut counter = VertexHitCounter::new(&g, None);
            router.router().route_all(&mut counter);
            // Aggregate per value class.
            let mut class_hits = std::collections::HashMap::new();
            for v in g.vertices() {
                *class_hits.entry(vc.class_of(v)).or_insert(0u64) += counter.hits_of(v);
            }
            let max = class_hits.values().copied().max().unwrap();
            let bound = router.router().lemma3_bound();
            assert!(
                max <= 2 * bound,
                "k={k}: class hits {max} far exceed 2·bound {bound}"
            );
        }
    }

    #[test]
    fn generalized_segments_keep_boundaries_large() {
        // Section 8's "this optimization does not decrease the number of
        // boundary-crossing edges": on the violating graph, value-class
        // boundaries stay within a constant of meta boundaries.
        use mmio_pebble::orders::recursive_order;
        let base = with_duplicated_combination(&strassen());
        let g = build_cdag(&base, 3);
        let order = recursive_order(&g);
        let counted: Vec<bool> = g.vertices().map(|v| g.is_output(v)).collect();
        let segments = analyze_generalized(&g, &order, &counted, 16);
        assert!(!segments.is_empty());
        for s in &segments {
            assert!(s.class_boundary <= s.meta_boundary);
            assert!(
                s.class_boundary * 4 >= s.meta_boundary,
                "classes collapse the boundary too much: {} vs {}",
                s.class_boundary,
                s.meta_boundary
            );
            assert!(s.class_boundary as f64 >= s.counted as f64 / 12.0);
        }
    }

    #[test]
    fn balanced_router_on_clean_graph_equals_hall() {
        // No duplicate groups: the balanced router must reduce to the plain
        // Hall-matched routing, meeting the exact Lemma 3 bound.
        let g = build_cdag(&strassen(), 2);
        let router = BalancedRouter::new(&g).unwrap();
        let mut counter = VertexHitCounter::new(&g, None);
        router.router().route_all(&mut counter);
        assert!(counter.stats().is_m_routing(router.router().lemma3_bound()));
    }
}
