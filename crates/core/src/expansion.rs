//! Edge expansion — the *previous* technique (Ballard–Demmel–Holtz–
//! Schwartz, JACM'12), made executable to quantify exactly where it fails
//! and path routing succeeds (paper Sections 1–2).
//!
//! The edge expansion of a `d`-regular-ish graph `G` is
//! `h(G) = min_{S: |S| ≤ |V|/2} |E(S, S̄)| / |S|`; the JACM'12 proof needs
//! `h > 0` for (recursive powers of) the base decoding graph, which holds
//! iff the decoding graph is *connected* — and fails for classical 2×2 and
//! dummy-product variants. This module computes `h` exactly for small
//! graphs (exhaustive subsets) and by random sampling for larger ones.

use mmio_cdag::{Cdag, Layer, VertexId};
use rand::Rng;

/// A small undirected graph in adjacency-list form.
pub struct SmallGraph {
    adj: Vec<Vec<usize>>,
}

impl SmallGraph {
    /// Builds the undirected decoding graph `D_k` of `g`: its product
    /// vertices, output vertices, and every decoding-layer vertex between.
    pub fn decoding_graph(g: &Cdag) -> SmallGraph {
        // Collect decoding-layer vertices and re-index densely.
        let verts: Vec<VertexId> = g
            .vertices()
            .filter(|&v| g.vref(v).layer == Layer::Dec)
            .collect();
        let mut dense = std::collections::HashMap::new();
        for (i, &v) in verts.iter().enumerate() {
            dense.insert(v, i);
        }
        let mut adj = vec![Vec::new(); verts.len()];
        for (i, &v) in verts.iter().enumerate() {
            for &w in g.preds(v).iter().chain(g.succs(v)) {
                if let Some(&j) = dense.get(&w) {
                    adj[i].push(j);
                }
            }
        }
        SmallGraph { adj }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Cut size `|E(S, S̄)|` for a subset mask (exhaustive path, ≤ 64
    /// vertices).
    fn cut(&self, mask: u64) -> u64 {
        let mut cut = 0;
        for (i, neighbors) in self.adj.iter().enumerate() {
            if mask >> i & 1 == 0 {
                continue;
            }
            for &j in neighbors {
                if mask >> j & 1 == 0 {
                    cut += 1;
                }
            }
        }
        cut
    }

    /// Cut size for an arbitrary membership vector.
    fn cut_set(&self, in_set: &[bool]) -> u64 {
        let mut cut = 0;
        for (i, neighbors) in self.adj.iter().enumerate() {
            if !in_set[i] {
                continue;
            }
            for &j in neighbors {
                if !in_set[j] {
                    cut += 1;
                }
            }
        }
        cut
    }

    /// Exact edge expansion by exhaustive subset enumeration. Only for
    /// graphs with at most [`EXACT_LIMIT`] vertices.
    ///
    /// # Panics
    /// Panics if the graph is too large or empty.
    pub fn exact_expansion(&self) -> f64 {
        let n = self.len();
        assert!(n > 0, "expansion of the empty graph");
        assert!(n <= EXACT_LIMIT, "use sampled_expansion for large graphs");
        let mut best = f64::INFINITY;
        for mask in 1u64..(1 << n) {
            let size = mask.count_ones() as usize;
            if size > n / 2 {
                continue;
            }
            best = best.min(self.cut(mask) as f64 / size as f64);
        }
        best
    }

    /// Upper-bounds the expansion by random subset sampling (useful for
    /// graphs beyond the exhaustive limit; a sampled 0 proves
    /// disconnection-like behaviour, a positive value is only an upper
    /// bound on `h`).
    pub fn sampled_expansion<R: Rng>(&self, samples: usize, rng: &mut R) -> f64 {
        let n = self.len();
        if n < 2 {
            return 0.0; // no nonempty subset with |S| ≤ |V|/2 exists
        }
        let mut best = f64::INFINITY;
        for _ in 0..samples {
            let size = rng.gen_range(1..=n / 2);
            // Random connected-ish subset: random BFS prefix from a seed.
            let start = rng.gen_range(0..n);
            let mut subset = vec![start];
            let mut in_set = vec![false; n];
            in_set[start] = true;
            let mut frontier = vec![start];
            while subset.len() < size && !frontier.is_empty() {
                let pick = rng.gen_range(0..frontier.len());
                let v = frontier.swap_remove(pick);
                for &w in &self.adj[v] {
                    if !in_set[w] && subset.len() < size {
                        in_set[w] = true;
                        subset.push(w);
                        frontier.push(w);
                    }
                }
            }
            best = best.min(self.cut_set(&in_set) as f64 / subset.len() as f64);
        }
        best
    }
}

/// Exhaustive-enumeration size limit.
pub const EXACT_LIMIT: usize = 22;

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_algos::classical::classical;
    use mmio_algos::strassen::strassen;
    use mmio_algos::synthetic::with_dummy_product;
    use mmio_cdag::build::build_cdag;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn strassen_d1_expands() {
        // Connected D₁ ⇒ h > 0: the JACM'12 precondition holds for
        // Strassen itself.
        let g = build_cdag(&strassen(), 1);
        let d1 = SmallGraph::decoding_graph(&g);
        assert_eq!(d1.len(), 11);
        let h = d1.exact_expansion();
        assert!(h > 0.0, "Strassen's D₁ must expand, got {h}");
    }

    #[test]
    fn classical_d1_does_not_expand() {
        // Disconnected D₁ ⇒ h = 0: edge expansion gives NOTHING for the
        // classical base graph — the paper's motivating failure.
        let g = build_cdag(&classical(2), 1);
        let d1 = SmallGraph::decoding_graph(&g);
        assert_eq!(d1.exact_expansion(), 0.0);
    }

    #[test]
    fn dummy_product_kills_expansion() {
        let g = build_cdag(&with_dummy_product(&strassen()), 1);
        let d1 = SmallGraph::decoding_graph(&g);
        assert_eq!(
            d1.exact_expansion(),
            0.0,
            "one isolated product vertex zeroes the expansion"
        );
    }

    #[test]
    fn sampled_is_upper_bound_of_exact() {
        let g = build_cdag(&strassen(), 1);
        let d1 = SmallGraph::decoding_graph(&g);
        let exact = d1.exact_expansion();
        let mut rng = StdRng::seed_from_u64(5);
        let sampled = d1.sampled_expansion(500, &mut rng);
        assert!(sampled >= exact - 1e-12);
    }

    #[test]
    fn sampled_detects_classical_disconnection() {
        let g = build_cdag(&classical(2), 2);
        let dk = SmallGraph::decoding_graph(&g);
        let mut rng = StdRng::seed_from_u64(7);
        // Seeded BFS subsets stay within one component: cut 0 found fast.
        assert_eq!(dk.sampled_expansion(2000, &mut rng), 0.0);
    }

    #[test]
    #[should_panic(expected = "sampled_expansion")]
    fn exact_refuses_large_graphs() {
        let g = build_cdag(&strassen(), 2);
        let dk = SmallGraph::decoding_graph(&g); // 77 vertices
        let _ = dk.exact_expansion();
    }
}
