//! Routings and their verification (Definition 2, Theorem 2).
//!
//! An *m-routing* between vertex sets `X` and `Y` is a family of `|X|·|Y|`
//! undirected paths, one per pair, such that no vertex of the graph lies on
//! more than `m` of them (counting multiplicity). The Routing Theorem
//! produces `6a^k`-routings between the inputs and outputs of `G_k`; this
//! module provides the streaming hit-counting used to *verify* every
//! constructed routing, both per vertex and per meta-vertex.

use mmio_cdag::{Cdag, MetaVertices, VertexId};
use serde::Serialize;

/// Streaming hit counter over a CDAG's vertices (and optionally its
/// meta-vertices).
pub struct VertexHitCounter<'g> {
    g: &'g Cdag,
    hits: Vec<u64>,
    meta: Option<(&'g MetaVertices, Vec<u64>)>,
    paths: u64,
    length_sum: u64,
}

/// Summary statistics of a verified routing.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct RoutingStats {
    /// Number of paths in the routing.
    pub paths: u64,
    /// Total path length (vertices, counted with multiplicity).
    pub total_length: u64,
    /// Maximum hits over all vertices — the routing's actual `m`.
    pub max_vertex_hits: u64,
    /// Maximum hits over all meta-vertices (0 if not tracked).
    pub max_meta_hits: u64,
}

impl<'g> VertexHitCounter<'g> {
    /// Creates a counter; pass `meta` to also track meta-vertex hits
    /// (a path hitting several vertices of one meta-vertex counts once per
    /// vertex, as in the paper's counting).
    pub fn new(g: &'g Cdag, meta: Option<&'g MetaVertices>) -> VertexHitCounter<'g> {
        VertexHitCounter {
            g,
            hits: vec![0; g.n_vertices()],
            meta: meta.map(|m| (m, vec![0; g.n_vertices()])),
            paths: 0,
            length_sum: 0,
        }
    }

    /// Records one path. Vertex hits count per occurrence; a meta-vertex is
    /// hit once per path that touches it (the paper's counting — "any path
    /// hitting a meta-vertex also hits the root vertex", proof of
    /// Theorem 2).
    pub fn add_path(&mut self, path: &[VertexId]) {
        debug_assert!(!path.is_empty());
        debug_assert!(
            path.windows(2).all(|w| {
                self.g.preds(w[1]).contains(&w[0]) || self.g.succs(w[1]).contains(&w[0])
            }),
            "path contains a non-edge"
        );
        self.paths += 1;
        self.length_sum += path.len() as u64;
        for &v in path {
            self.hits[v.idx()] += 1;
        }
        if let Some((meta, mhits)) = &mut self.meta {
            let mut touched: Vec<usize> = path
                .iter()
                .map(|&v| meta.root_vertex(meta.meta_of(v)).idx())
                .collect();
            touched.sort_unstable();
            touched.dedup();
            for root in touched {
                mhits[root] += 1;
            }
        }
    }

    /// Hits of a specific vertex.
    pub fn hits_of(&self, v: VertexId) -> u64 {
        self.hits[v.idx()]
    }

    /// Finishes counting and returns summary statistics.
    pub fn stats(&self) -> RoutingStats {
        RoutingStats {
            paths: self.paths,
            total_length: self.length_sum,
            max_vertex_hits: self.hits.iter().copied().max().unwrap_or(0),
            max_meta_hits: self
                .meta
                .as_ref()
                .map(|(_, mh)| mh.iter().copied().max().unwrap_or(0))
                .unwrap_or(0),
        }
    }
}

impl RoutingStats {
    /// Checks the routing against a claimed bound `m` (vertex hits, and
    /// meta hits if tracked).
    pub fn is_m_routing(&self, m: u64) -> bool {
        self.max_vertex_hits <= m && self.max_meta_hits <= m
    }
}

/// Checks that a path is a *chain*: consecutive vertices connected by
/// directed edges all pointing forward (a monotone path from input toward
/// output).
pub fn is_chain(g: &Cdag, path: &[VertexId]) -> bool {
    path.windows(2).all(|w| g.preds(w[1]).contains(&w[0]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_algos::strassen::strassen;
    use mmio_cdag::build::build_cdag;

    #[test]
    fn counting_and_stats() {
        let g = build_cdag(&strassen(), 1);
        let mut counter = VertexHitCounter::new(&g, None);
        let input = g.inputs().next().unwrap();
        let combo = g.succs(input)[0];
        counter.add_path(&[input, combo]);
        counter.add_path(&[input, combo]);
        let stats = counter.stats();
        assert_eq!(stats.paths, 2);
        assert_eq!(stats.total_length, 4);
        assert_eq!(stats.max_vertex_hits, 2);
        assert!(stats.is_m_routing(2));
        assert!(!stats.is_m_routing(1));
        assert_eq!(counter.hits_of(input), 2);
    }

    #[test]
    fn meta_counting_once_per_path() {
        let g = build_cdag(&strassen(), 1);
        let meta = MetaVertices::compute(&g);
        let mut counter = VertexHitCounter::new(&g, Some(&meta));
        // A path through both members of one meta-vertex hits the meta once
        // (per path), though each vertex is hit individually.
        let input = g.input_b(0, 0); // b11: copied bare into M2
        let copy = g
            .succs(input)
            .iter()
            .copied()
            .find(|&s| meta.meta_of(s) == meta.meta_of(input))
            .expect("b11 must have a copy vertex in Strassen");
        counter.add_path(&[input, copy]);
        counter.add_path(&[input, copy]);
        let stats = counter.stats();
        assert_eq!(stats.max_vertex_hits, 2);
        assert_eq!(stats.max_meta_hits, 2, "once per path, two paths");
    }

    #[test]
    fn chain_detection() {
        let g = build_cdag(&strassen(), 1);
        let input = g.inputs().next().unwrap();
        let combo = g.succs(input)[0];
        assert!(is_chain(&g, &[input, combo]));
        assert!(!is_chain(&g, &[combo, input]));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-edge")]
    fn non_edge_paths_rejected_in_debug() {
        let g = build_cdag(&strassen(), 1);
        let mut counter = VertexHitCounter::new(&g, None);
        let i1 = g.inputs().next().unwrap();
        let out = g.outputs().next().unwrap();
        counter.add_path(&[i1, out]);
    }
}
