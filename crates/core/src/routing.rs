//! Routings and their verification (Definition 2, Theorem 2).
//!
//! An *m-routing* between vertex sets `X` and `Y` is a family of `|X|·|Y|`
//! undirected paths, one per pair, such that no vertex of the graph lies on
//! more than `m` of them (counting multiplicity). The Routing Theorem
//! produces `6a^k`-routings between the inputs and outputs of `G_k`; this
//! module provides the streaming hit-counting used to *verify* every
//! constructed routing, both per vertex and per meta-vertex.

use mmio_cdag::hits::HitCounter;
use mmio_cdag::{Cdag, MetaVertices, VertexId};
use serde::Serialize;

/// Streaming hit counter over a CDAG's vertices (and optionally its
/// meta-vertices). The counting itself — per-occurrence vertex hits,
/// once-per-path group hits, deterministic shard merging — is the shared
/// [`mmio_cdag::hits::HitCounter`]; this wrapper binds it to a graph (for
/// the debug edge assertion) and to [`MetaVertices`] as the group source.
pub struct VertexHitCounter<'g> {
    g: &'g Cdag,
    counter: HitCounter,
}

/// Summary statistics of a verified routing.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct RoutingStats {
    /// Number of paths in the routing.
    pub paths: u64,
    /// Total path length (vertices, counted with multiplicity).
    pub total_length: u64,
    /// Maximum hits over all vertices — the routing's actual `m`.
    pub max_vertex_hits: u64,
    /// Maximum hits over all meta-vertices (0 if not tracked).
    pub max_meta_hits: u64,
}

impl<'g> VertexHitCounter<'g> {
    /// Creates a counter; pass `meta` to also track meta-vertex hits
    /// (a path hitting several vertices of one meta-vertex counts once per
    /// vertex, as in the paper's counting).
    pub fn new(g: &'g Cdag, meta: Option<&'g MetaVertices>) -> VertexHitCounter<'g> {
        let counter = match meta {
            None => HitCounter::new(g.n_vertices()),
            Some(m) => HitCounter::with_groups(
                g.vertices()
                    .map(|v| m.root_vertex(m.meta_of(v)).0)
                    .collect(),
            ),
        };
        VertexHitCounter { g, counter }
    }

    /// Records one path. Vertex hits count per occurrence; a meta-vertex is
    /// hit once per path that touches it (the paper's counting — "any path
    /// hitting a meta-vertex also hits the root vertex", proof of
    /// Theorem 2).
    pub fn add_path(&mut self, path: &[VertexId]) {
        debug_assert!(!path.is_empty());
        debug_assert!(
            path.windows(2).all(|w| {
                self.g.preds(w[1]).contains(&w[0]) || self.g.succs(w[1]).contains(&w[0])
            }),
            "path contains a non-edge"
        );
        self.counter.add_path(path.iter().map(|v| v.0));
    }

    /// Absorbs another counter over the *same graph* (and the same
    /// meta-vertex tracking mode). Hit counts are sums, so merging sharded
    /// counters in any fixed order reproduces the serial count exactly —
    /// the foundation of the deterministic parallel verification path.
    ///
    /// # Panics
    /// Panics if the two counters track different graphs or disagree on
    /// meta tracking.
    pub fn merge(&mut self, other: &VertexHitCounter<'g>) {
        self.counter.merge(&other.counter);
    }

    /// Hits of a specific vertex.
    pub fn hits_of(&self, v: VertexId) -> u64 {
        self.counter.hits_of(v.0)
    }

    /// Clears all counts (keeping the allocations), so one counter can be
    /// reused across the per-copy verifications of a Fact-1 transport sweep.
    pub fn reset(&mut self) {
        self.counter.reset();
    }

    /// Finishes counting and returns summary statistics.
    pub fn stats(&self) -> RoutingStats {
        let s = self.counter.summary();
        RoutingStats {
            paths: s.paths,
            total_length: s.total_length,
            max_vertex_hits: s.max_vertex_hits,
            max_meta_hits: s.max_group_hits,
        }
    }
}

impl RoutingStats {
    /// Checks the routing against a claimed bound `m` (vertex hits, and
    /// meta hits if tracked).
    pub fn is_m_routing(&self, m: u64) -> bool {
        self.max_vertex_hits <= m && self.max_meta_hits <= m
    }
}

/// Checks that a path is a *chain*: consecutive vertices connected by
/// directed edges all pointing forward (a monotone path from input toward
/// output).
pub fn is_chain(g: &Cdag, path: &[VertexId]) -> bool {
    path.windows(2).all(|w| g.preds(w[1]).contains(&w[0]))
}

/// Flat storage for a family of paths: one shared vertex buffer plus an
/// offset table, instead of a `Vec<Vec<VertexId>>` with one heap block per
/// path. Routing families contain `2a^{2k}` paths; storing them contiguously
/// is what makes memoizing a whole routing class (and iterating it once per
/// Fact-1 copy) cheap.
#[derive(Clone, Debug, Default)]
pub struct PathArena {
    /// `offsets[i]..offsets[i+1]` delimits path `i` in `verts`.
    offsets: Vec<u32>,
    verts: Vec<VertexId>,
}

impl PathArena {
    /// An empty arena.
    pub fn new() -> PathArena {
        PathArena {
            offsets: vec![0],
            verts: Vec::new(),
        }
    }

    /// An empty arena pre-sized for `paths` paths of about `avg_len`
    /// vertices each.
    pub fn with_capacity(paths: usize, avg_len: usize) -> PathArena {
        let mut offsets = Vec::with_capacity(paths + 1);
        offsets.push(0);
        PathArena {
            offsets,
            verts: Vec::with_capacity(paths * avg_len),
        }
    }

    /// Appends one path.
    pub fn push(&mut self, path: &[VertexId]) {
        self.verts.extend_from_slice(path);
        self.offsets
            .push(u32::try_from(self.verts.len()).expect("arena exceeds u32 index space"));
    }

    /// Number of stored paths.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the arena holds no paths.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of stored vertices (path lengths summed).
    pub fn total_vertices(&self) -> usize {
        self.verts.len()
    }

    /// The `i`-th path.
    pub fn path(&self, i: usize) -> &[VertexId] {
        &self.verts[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterates over all paths in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &[VertexId]> + '_ {
        (0..self.len()).map(move |i| self.path(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_algos::strassen::strassen;
    use mmio_cdag::build::build_cdag;

    #[test]
    fn counting_and_stats() {
        let g = build_cdag(&strassen(), 1);
        let mut counter = VertexHitCounter::new(&g, None);
        let input = g.inputs().next().unwrap();
        let combo = g.succs(input)[0];
        counter.add_path(&[input, combo]);
        counter.add_path(&[input, combo]);
        let stats = counter.stats();
        assert_eq!(stats.paths, 2);
        assert_eq!(stats.total_length, 4);
        assert_eq!(stats.max_vertex_hits, 2);
        assert!(stats.is_m_routing(2));
        assert!(!stats.is_m_routing(1));
        assert_eq!(counter.hits_of(input), 2);
    }

    #[test]
    fn meta_counting_once_per_path() {
        let g = build_cdag(&strassen(), 1);
        let meta = MetaVertices::compute(&g);
        let mut counter = VertexHitCounter::new(&g, Some(&meta));
        // A path through both members of one meta-vertex hits the meta once
        // (per path), though each vertex is hit individually.
        let input = g.input_b(0, 0); // b11: copied bare into M2
        let copy = g
            .succs(input)
            .iter()
            .copied()
            .find(|&s| meta.meta_of(s) == meta.meta_of(input))
            .expect("b11 must have a copy vertex in Strassen");
        counter.add_path(&[input, copy]);
        counter.add_path(&[input, copy]);
        let stats = counter.stats();
        assert_eq!(stats.max_vertex_hits, 2);
        assert_eq!(stats.max_meta_hits, 2, "once per path, two paths");
    }

    #[test]
    fn merge_equals_serial_count() {
        let g = build_cdag(&strassen(), 1);
        let meta = MetaVertices::compute(&g);
        let input = g.inputs().next().unwrap();
        let combo = g.succs(input)[0];
        // Serial: both paths into one counter.
        let mut serial = VertexHitCounter::new(&g, Some(&meta));
        serial.add_path(&[input, combo]);
        serial.add_path(&[input, combo]);
        // Sharded: one path per counter, merged.
        let mut a = VertexHitCounter::new(&g, Some(&meta));
        a.add_path(&[input, combo]);
        let mut b = VertexHitCounter::new(&g, Some(&meta));
        b.add_path(&[input, combo]);
        a.merge(&b);
        let (s, m) = (serial.stats(), a.stats());
        assert_eq!(s.paths, m.paths);
        assert_eq!(s.total_length, m.total_length);
        assert_eq!(s.max_vertex_hits, m.max_vertex_hits);
        assert_eq!(s.max_meta_hits, m.max_meta_hits);
        assert_eq!(a.hits_of(input), serial.hits_of(input));
    }

    #[test]
    fn arena_stores_paths_flat() {
        let g = build_cdag(&strassen(), 1);
        let input = g.inputs().next().unwrap();
        let combo = g.succs(input)[0];
        let mut arena = PathArena::with_capacity(2, 2);
        assert!(arena.is_empty());
        arena.push(&[input, combo]);
        arena.push(&[combo]);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.total_vertices(), 3);
        assert_eq!(arena.path(0), &[input, combo]);
        assert_eq!(arena.path(1), &[combo]);
        let collected: Vec<&[VertexId]> = arena.iter().collect();
        assert_eq!(collected.len(), 2);
    }

    #[test]
    fn chain_detection() {
        let g = build_cdag(&strassen(), 1);
        let input = g.inputs().next().unwrap();
        let combo = g.succs(input)[0];
        assert!(is_chain(&g, &[input, combo]));
        assert!(!is_chain(&g, &[combo, input]));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-edge")]
    fn non_edge_paths_rejected_in_debug() {
        let g = build_cdag(&strassen(), 1);
        let mut counter = VertexHitCounter::new(&g, None);
        let i1 = g.inputs().next().unwrap();
        let out = g.outputs().next().unwrap();
        counter.add_path(&[i1, out]);
    }
}
