//! Dominator sets — the Hong–Kung S-partition machinery ([10], also
//! Savage [14] and Bilardi et al. [7]), the oldest of the prior techniques
//! the paper's Section 2 lists.
//!
//! A *dominator* of a vertex set `T` is a set `D` such that every path
//! from an input to `T` meets `D`; during any segment that computes `T`,
//! the values of some dominator must have passed through cache, so
//! `|minimum dominator| − M` lower-bounds the segment's loads. By Menger's
//! theorem the minimum dominator is the maximum number of vertex-disjoint
//! input→`T` paths — computed here exactly with a vertex-capacity max-flow
//! (Dinic-style BFS/DFS on the split graph).
//!
//! Like Loomis–Whitney, the dominator bound is blunt against cancellation
//! (it cannot see that Strassen's combinations *must* be recombined), but
//! it is valid for every CDAG — and the per-segment empirical check here
//! is another independent soundness witness for the scheduler.

use mmio_cdag::{Cdag, VertexId};

/// Vertex-capacity max-flow on a CDAG from the inputs to `targets`:
/// the size of the minimum dominator of `targets` (Menger).
///
/// Every vertex is split into in/out nodes with capacity 1 (inputs and
/// targets included — a dominator may use any vertex, including an input
/// or a target itself).
pub fn min_dominator_size(g: &Cdag, targets: &[VertexId]) -> usize {
    // Node numbering: vertex v → in = 2v, out = 2v+1; source = 2n,
    // sink = 2n+1.
    let n = g.n_vertices();
    let source = 2 * n;
    let sink = 2 * n + 1;
    let mut flow = MaxFlow::new(2 * n + 2);
    for v in g.vertices() {
        flow.add_edge(2 * v.idx(), 2 * v.idx() + 1, 1); // vertex capacity
        for &s in g.succs(v) {
            flow.add_edge(2 * v.idx() + 1, 2 * s.idx(), usize::MAX / 4);
        }
        if g.is_input(v) {
            flow.add_edge(source, 2 * v.idx(), usize::MAX / 4);
        }
    }
    for &t in targets {
        flow.add_edge(2 * t.idx() + 1, sink, usize::MAX / 4);
    }
    flow.max_flow(source, sink)
}

/// A minimal Dinic max-flow (unit-ish capacities, graphs of ~10⁵ edges).
struct MaxFlow {
    first: Vec<i32>,
    next: Vec<i32>,
    to: Vec<usize>,
    cap: Vec<usize>,
}

impl MaxFlow {
    fn new(nodes: usize) -> MaxFlow {
        MaxFlow {
            first: vec![-1; nodes],
            next: Vec::new(),
            to: Vec::new(),
            cap: Vec::new(),
        }
    }

    fn add_edge(&mut self, from: usize, to: usize, cap: usize) {
        for (f, t, c) in [(from, to, cap), (to, from, 0)] {
            self.next.push(self.first[f]);
            self.first[f] = (self.to.len()) as i32;
            self.to.push(t);
            self.cap.push(c);
        }
    }

    fn bfs(&self, s: usize, t: usize, level: &mut [i32]) -> bool {
        level.fill(-1);
        level[s] = 0;
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            let mut e = self.first[u];
            while e >= 0 {
                let (v, c) = (self.to[e as usize], self.cap[e as usize]);
                if c > 0 && level[v] < 0 {
                    level[v] = level[u] + 1;
                    queue.push_back(v);
                }
                e = self.next[e as usize];
            }
        }
        level[t] >= 0
    }

    fn dfs(&mut self, u: usize, t: usize, pushed: usize, level: &[i32], iter: &mut [i32]) -> usize {
        if u == t {
            return pushed;
        }
        while iter[u] >= 0 {
            let e = iter[u] as usize;
            let v = self.to[e];
            if self.cap[e] > 0 && level[v] == level[u] + 1 {
                let d = self.dfs(v, t, pushed.min(self.cap[e]), level, iter);
                if d > 0 {
                    self.cap[e] -= d;
                    self.cap[e ^ 1] += d;
                    return d;
                }
            }
            iter[u] = self.next[e];
        }
        0
    }

    fn max_flow(&mut self, s: usize, t: usize) -> usize {
        let n = self.first.len();
        let mut level = vec![-1i32; n];
        let mut total = 0;
        while self.bfs(s, t, &mut level) {
            let mut iter = self.first.clone();
            loop {
                let f = self.dfs(s, t, usize::MAX / 2, &level, &mut iter);
                if f == 0 {
                    break;
                }
                total += f;
            }
        }
        total
    }
}

/// The Hong–Kung per-segment property, checked on a real schedule: every
/// set of `T` consecutively computed vertices has a dominator of size at
/// most `|R(T)| + M` — the values read plus those already in cache.
/// Returns the worst `(dominator, reads)` pair seen.
pub fn verify_dominator_bound(
    g: &Cdag,
    order: &[VertexId],
    segment_len: usize,
    m: usize,
) -> (usize, usize) {
    let mut worst = (0usize, 0usize);
    for chunk in order.chunks(segment_len) {
        let dom = min_dominator_size(g, chunk);
        let mask = crate::boundary::mask_of(g, chunk);
        let reads = crate::boundary::read_set(g, &mask).len();
        assert!(
            dom <= reads + m + chunk.len(),
            "dominator {dom} exceeds reads {reads} + M {m} + |T| {}",
            chunk.len()
        );
        if dom > worst.0 {
            worst = (dom, reads);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_algos::classical::classical;
    use mmio_algos::strassen::strassen;
    use mmio_cdag::build::build_cdag;
    use mmio_pebble::orders::recursive_order;

    #[test]
    fn dominator_of_single_product_is_small() {
        let g = build_cdag(&strassen(), 1);
        let p = g.products().next().unwrap();
        // One product: cut it off at itself — dominator size 1.
        assert_eq!(min_dominator_size(&g, &[p]), 1);
    }

    #[test]
    fn dominator_of_all_outputs_is_matrix_sized() {
        // Everything flows through the 2a^r inputs and through the a^r…
        // actually through the b^r products; the bottleneck is the inputs:
        // min dominator of all outputs ≤ 2a^r, and ≥ a^r (each output
        // needs its row/col data).
        let g = build_cdag(&strassen(), 2);
        let outputs: Vec<_> = g.outputs().collect();
        let dom = min_dominator_size(&g, &outputs);
        assert!(dom <= 32, "dominator {dom} can't exceed the inputs");
        assert!(dom >= 16, "dominator {dom} must cover all outputs' data");
    }

    #[test]
    fn dominator_of_inputs_is_inputs() {
        let g = build_cdag(&strassen(), 1);
        let inputs: Vec<_> = g.inputs().collect();
        assert_eq!(min_dominator_size(&g, &inputs), inputs.len());
    }

    #[test]
    fn hong_kung_property_on_schedules() {
        for base in [strassen(), classical(2)] {
            let g = build_cdag(&base, 2);
            let order = recursive_order(&g);
            let (dom, reads) = verify_dominator_bound(&g, &order, 16, 8);
            assert!(dom > 0);
            assert!(dom <= reads + 8 + 16);
        }
    }

    #[test]
    fn classical_products_dominated_by_operands() {
        // A window of classical products with shared operands has a
        // dominator smaller than 2×window (operand reuse) — the effect the
        // S-partition argument quantifies.
        let g = build_cdag(&classical(2), 2);
        let products: Vec<_> = g.products().take(16).collect();
        let dom = min_dominator_size(&g, &products);
        assert!(dom < 32, "got {dom}");
        assert!(dom >= 8);
    }
}
