//! The Loomis–Whitney segment argument (Irony–Toledo–Tiskin [12],
//! generalized in [5]) — the classical-algorithm technique the paper's
//! Section 2 contrasts with, made executable.
//!
//! For the classical algorithm, the products computed in a segment form a
//! set of lattice points `(i, j, k)`; the discrete Loomis–Whitney
//! inequality bounds their number by `√(|π_A|·|π_B|·|π_C|)` where the `π`s
//! are the three axis projections (the `A`, `B`, `C` entries touched). A
//! segment with ≤ `2M` available entries per matrix therefore computes at
//! most `2√2·M^{3/2}` products, giving `IO ≥ n³/(2√2·√M) − M`.
//!
//! Crucially, the argument needs every product to be an honest monomial
//! `a_{ik}·b_{kj}` — it has no purchase on Strassen-like algorithms whose
//! products are *linear combinations* (cancellation breaks the projection
//! counting). That failure is why dominator/LW techniques stop at
//! `ω₀ = 3` and the paper's routing technique exists.

use mmio_cdag::{Cdag, Layer, VertexId};
use std::collections::HashSet;

/// The three projection sizes of a set of classical products, plus the
/// Loomis–Whitney bound check.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LwCheck {
    /// Number of products in the set.
    pub products: usize,
    /// Distinct `(i,k)` pairs touched (entries of `A`).
    pub proj_a: usize,
    /// Distinct `(k,j)` pairs touched (entries of `B`).
    pub proj_b: usize,
    /// Distinct `(i,j)` pairs touched (entries of `C`).
    pub proj_c: usize,
}

impl LwCheck {
    /// The discrete Loomis–Whitney inequality:
    /// `products² ≤ proj_a · proj_b · proj_c`.
    pub fn holds(&self) -> bool {
        (self.products * self.products) as u128
            <= self.proj_a as u128 * self.proj_b as u128 * self.proj_c as u128
    }
}

/// Computes the projections of a set of product vertices of a *classical*
/// CDAG. Each classical product has a unique `(i, j, k)`; we recover it
/// from the product's two operand chains down to input entries.
///
/// # Panics
/// Panics if some product's operands are not single input entries (i.e.
/// the CDAG is not classical — exactly the case LW cannot handle).
pub fn projections(g: &Cdag, products: &[VertexId]) -> LwCheck {
    let mut pa: HashSet<(usize, usize)> = HashSet::new();
    let mut pb: HashSet<(usize, usize)> = HashSet::new();
    let mut pc: HashSet<(usize, usize)> = HashSet::new();
    for &p in products {
        let vr = g.vref(p);
        assert!(
            vr.layer == Layer::Dec && vr.level == 0,
            "projections expects product vertices"
        );
        // Walk each operand down its (copy) chain to the input entry.
        let mut entries = [None::<(Layer, u64, u64)>; 2];
        for (slot, &op) in g.preds(p).iter().enumerate() {
            let mut cur = op;
            loop {
                let preds = g.preds(cur);
                assert_eq!(
                    preds.len(),
                    1,
                    "classical operands are bare copies of inputs"
                );
                cur = preds[0];
                if g.is_input(cur) {
                    break;
                }
            }
            let cr = g.vref(cur);
            let (row, col) = crate::deps::unpack_entry(cr.entry, g.base().n0(), g.r());
            entries[slot] = Some((cr.layer, row, col));
        }
        let (a_entry, b_entry) = match (entries[0], entries[1]) {
            (Some(a @ (Layer::EncA, ..)), Some(b @ (Layer::EncB, ..))) => (a, b),
            (Some(b @ (Layer::EncB, ..)), Some(a @ (Layer::EncA, ..))) => (a, b),
            _ => panic!("product must read one A entry and one B entry"),
        };
        let (i, k) = (a_entry.1 as usize, a_entry.2 as usize);
        let (k2, j) = (b_entry.1 as usize, b_entry.2 as usize);
        assert_eq!(k, k2, "classical product contracts matching k");
        pa.insert((i, k));
        pb.insert((k, j));
        pc.insert((i, j));
    }
    LwCheck {
        products: products.len(),
        proj_a: pa.len(),
        proj_b: pb.len(),
        proj_c: pc.len(),
    }
}

/// Verifies the LW inequality on every window of `window` consecutive
/// products of a compute order of a classical CDAG. Returns the number of
/// windows checked.
pub fn verify_on_order(g: &Cdag, order: &[VertexId], window: usize) -> usize {
    let products: Vec<VertexId> = order
        .iter()
        .copied()
        .filter(|&v| {
            let vr = g.vref(v);
            vr.layer == Layer::Dec && vr.level == 0
        })
        .collect();
    let mut checked = 0;
    for chunk in products.chunks(window) {
        let check = projections(g, chunk);
        assert!(check.holds(), "Loomis–Whitney violated: {check:?}");
        checked += 1;
    }
    checked
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_algos::classical::classical;
    use mmio_algos::strassen::strassen;
    use mmio_cdag::build::build_cdag;
    use mmio_pebble::orders::{rank_order, recursive_order};

    #[test]
    fn lw_holds_on_classical_orders() {
        let g = build_cdag(&classical(2), 3);
        for order in [recursive_order(&g), rank_order(&g)] {
            for window in [4usize, 16, 64] {
                assert!(verify_on_order(&g, &order, window) > 0);
            }
        }
    }

    #[test]
    fn full_product_set_is_tight() {
        // All n³ products: projections are n² each; n³·n³ ≤ n²·n²·n² —
        // equality: LW is tight for the full cube.
        let g = build_cdag(&classical(2), 2);
        let products: Vec<VertexId> = g.products().collect();
        let check = projections(&g, &products);
        assert_eq!(check.products, 64);
        assert_eq!((check.proj_a, check.proj_b, check.proj_c), (16, 16, 16));
        assert!(check.holds());
        assert_eq!(check.products * check.products, 16 * 16 * 16);
    }

    #[test]
    fn single_product_projections() {
        let g = build_cdag(&classical(2), 1);
        let p = g.products().next().unwrap();
        let check = projections(&g, &[p]);
        assert_eq!(
            check,
            LwCheck {
                products: 1,
                proj_a: 1,
                proj_b: 1,
                proj_c: 1
            }
        );
    }

    #[test]
    #[should_panic(expected = "bare copies of inputs")]
    fn lw_refuses_strassen() {
        // The technique has no purchase on linear-combination products —
        // the module enforces that honestly rather than reporting nonsense.
        let g = build_cdag(&strassen(), 1);
        let p = g.products().next().unwrap();
        let _ = projections(&g, &[p]);
    }
}
