//! Lemma 1: a `1/b²` fraction of the subcomputations `G_k^i` are mutually
//! *input-disjoint* (no two share an input meta-vertex).
//!
//! The library selects an explicitly verified collection: a greedy sweep
//! that keeps a subcomputation iff its input meta-vertices are disjoint
//! from everything already kept. The paper's counting argument guarantees
//! the greedy result has size at least `b^{r-k-2}` whenever the Lemma 1
//! condition holds (both encodings contain a nontrivial row); tests check
//! that guarantee on every library base graph.

use mmio_cdag::meta::MetaId;
use mmio_cdag::{index, CdagView, Layer, MetaVertices, VertexRef};
use std::collections::HashSet;

/// The input meta-vertex set of subcomputation `i` of depth `k`.
///
/// Inputs are written in closed form (the Fact-1 copy's `2a^k` encoding
/// rank-`r-k` vertices with `mul = i`), so this works over any
/// [`CdagView`] without materializing the graph.
pub fn input_metas<V: CdagView>(
    g: &V,
    meta: &MetaVertices,
    k: u32,
    prefix: u64,
) -> HashSet<MetaId> {
    let ak = index::pow(g.a(), k);
    let mut out = HashSet::with_capacity(2 * ak as usize);
    for layer in [Layer::EncA, Layer::EncB] {
        for entry in 0..ak {
            let v = g
                .try_id(VertexRef {
                    layer,
                    level: g.r() - k,
                    mul: prefix,
                    entry,
                })
                .expect("subcomputation input in range");
            out.insert(meta.meta_of(v));
        }
    }
    out
}

/// Greedily selects a maximal prefix-ordered collection of mutually
/// input-disjoint subcomputations of depth `k`. Disjointness is *verified*,
/// not assumed.
pub fn select_input_disjoint<V: CdagView>(g: &V, meta: &MetaVertices, k: u32) -> Vec<u64> {
    assert!(k <= g.r(), "k must be at most r");
    let count = index::pow(g.b(), g.r() - k);
    let mut used: HashSet<MetaId> = HashSet::new();
    let mut chosen = Vec::new();
    for prefix in 0..count {
        let metas = input_metas(g, meta, k, prefix);
        if metas.iter().all(|m| !used.contains(m)) {
            used.extend(metas);
            chosen.push(prefix);
        }
    }
    chosen
}

/// The Lemma 1 target size: `b^{r-k-2}` (for `k ≤ r-2`).
pub fn lemma1_target<V: CdagView>(g: &V, k: u32) -> u64 {
    assert!(k + 2 <= g.r(), "Lemma 1 requires k ≤ r-2");
    index::pow(g.b(), g.r() - k - 2)
}

/// Exhaustively verifies that the selection is mutually input-disjoint.
pub fn verify_disjoint<V: CdagView>(g: &V, meta: &MetaVertices, k: u32, chosen: &[u64]) -> bool {
    let mut seen: HashSet<MetaId> = HashSet::new();
    for &prefix in chosen {
        for m in input_metas(g, meta, k, prefix) {
            if !seen.insert(m) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_algos::classical::classical;
    use mmio_algos::strassen::{strassen, winograd};
    use mmio_cdag::build::build_cdag;
    use mmio_cdag::fact1::Subcomputation;

    #[test]
    fn strassen_selection_meets_lemma1_bound() {
        for (r, k) in [(3u32, 1u32), (4, 1), (4, 2)] {
            let g = build_cdag(&strassen(), r);
            let meta = MetaVertices::compute(&g);
            let chosen = select_input_disjoint(&g, &meta, k);
            assert!(verify_disjoint(&g, &meta, k, &chosen));
            let target = lemma1_target(&g, k);
            assert!(
                chosen.len() as u64 >= target,
                "r={r} k={k}: selected {} < target {target}",
                chosen.len()
            );
        }
    }

    #[test]
    fn winograd_selection_meets_lemma1_bound() {
        let g = build_cdag(&winograd(), 3);
        let meta = MetaVertices::compute(&g);
        let chosen = select_input_disjoint(&g, &meta, 1);
        assert!(verify_disjoint(&g, &meta, 1, &chosen));
        assert!(chosen.len() as u64 >= lemma1_target(&g, 1));
    }

    #[test]
    fn classical_shares_inputs_heavily() {
        // Classical copies every input to many subcomputations: far fewer
        // disjoint subcomputations are available. (Lemma 1's hypothesis
        // fails for classical; the selection still runs, it just can't be
        // large.) At r=3, k=1: 64 subcomputations, inputs heavily shared.
        let g = build_cdag(&classical(2), 3);
        let meta = MetaVertices::compute(&g);
        let chosen = select_input_disjoint(&g, &meta, 1);
        assert!(verify_disjoint(&g, &meta, 1, &chosen));
        assert!(
            (chosen.len() as u64) < Subcomputation::count(&g, 1),
            "classical cannot have all subcomputations disjoint"
        );
    }

    #[test]
    fn disjointness_checker_catches_overlap() {
        let g = build_cdag(&strassen(), 3);
        let meta = MetaVertices::compute(&g);
        // Two children of the same parent share encoded inputs through
        // their parent's combination meta-vertices only if trivial rows
        // align; prefixes 0 and 0 trivially overlap.
        assert!(!verify_disjoint(&g, &meta, 1, &[0, 0]));
    }

    #[test]
    #[should_panic(expected = "k ≤ r-2")]
    fn lemma1_range_enforced() {
        let g = build_cdag(&strassen(), 2);
        let _ = lemma1_target(&g, 1);
    }
}
