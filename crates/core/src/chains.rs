//! Lemma 3: a `2n₀^k`-routing *of chains* for the guaranteed dependencies
//! of `G_k`, built from the base-level Hall matching by the recursive
//! lifting of Claim 2.
//!
//! The base matching assigns to every base dependence `(a_{ij}, c_{ij'})` a
//! middle-rank vertex (product) `t = match[i][j][j']` with each product
//! used at most `n₀` times (Lemma 5 + Theorem 3). At depth `k` a dependence
//! is a digit vector of base dependencies; the lifted chain simply uses the
//! matched product at every level — Claim 2's "replace a middle-rank pair
//! with a dependence of `G'_{k-1}`" composition, done in closed form.

use crate::deps::{DepSide, Dependence};
use crate::hall::MatchingGraph;
use crate::routing::VertexHitCounter;
use mmio_cdag::base::Side;
use mmio_cdag::{index, Cdag, Layer, VertexId, VertexRef};

/// Chain router for one CDAG, holding the per-side Hall matchings.
pub struct ChainRouter<'g> {
    g: &'g Cdag,
    /// `[i][j][j'] → product` for A-side dependencies.
    table_a: Vec<Vec<Vec<usize>>>,
    /// `[j][i][i'] → product` for B-side dependencies (shared index = column).
    table_b: Vec<Vec<Vec<usize>>>,
}

/// Reusable buffers for [`ChainRouter::chain_with`]: digit vectors and the
/// per-level prefix/suffix pack tables. One scratch serves millions of chain
/// constructions without touching the allocator.
#[derive(Clone, Debug, Default)]
pub struct ChainScratch {
    in_rows: Vec<usize>,
    in_cols: Vec<usize>,
    out_rows: Vec<usize>,
    out_cols: Vec<usize>,
    /// `t_pre[l] = pack(ts[..l], b)`: the packed matched-product prefix.
    t_pre: Vec<u64>,
    /// `x_suf[l] = pack(xs[l..], a)`: the packed input-entry suffix.
    x_suf: Vec<u64>,
    /// `y_suf[l] = pack(ys[l..], a)`: the packed output-entry suffix.
    y_suf: Vec<u64>,
}

impl ChainScratch {
    /// Fresh (empty) scratch; buffers grow to the graph's depth on first use.
    pub fn new() -> ChainScratch {
        ChainScratch::default()
    }

    fn resize(&mut self, k: usize) {
        self.in_rows.resize(k, 0);
        self.in_cols.resize(k, 0);
        self.out_rows.resize(k, 0);
        self.out_cols.resize(k, 0);
        self.t_pre.resize(k + 1, 0);
        self.x_suf.resize(k + 1, 0);
        self.y_suf.resize(k + 1, 0);
    }
}

impl<'g> ChainRouter<'g> {
    /// Builds the router. Returns `None` when either side lacks an
    /// `n₀`-capacity Hall matching (violating the paper's assumptions).
    pub fn new(g: &'g Cdag) -> Option<ChainRouter<'g>> {
        let base = g.base();
        let n0 = base.n0();
        let table_a = MatchingGraph::new(base, Side::A).matching_table(n0)?;
        let table_b = MatchingGraph::new(base, Side::B).matching_table(n0)?;
        Some(ChainRouter {
            g,
            table_a,
            table_b,
        })
    }

    /// Builds a router from explicit base-level middle-vertex tables
    /// (`[shared][in_other][out_other] → product`). Used by the routing
    /// ablation to compare the Hall matching against naive assignments;
    /// the tables must at least be *admissible* (nonzero encoding and
    /// decoding coefficients), or chains will contain non-edges.
    pub fn with_tables(
        g: &'g Cdag,
        table_a: Vec<Vec<Vec<usize>>>,
        table_b: Vec<Vec<Vec<usize>>>,
    ) -> ChainRouter<'g> {
        ChainRouter {
            g,
            table_a,
            table_b,
        }
    }

    /// The chain realizing `dep`, from its input vertex to its output
    /// vertex: `2(k+1)` vertices through encoding ranks `0..=k`, the
    /// product, and decoding ranks `1..=k`.
    ///
    /// # Panics
    /// Panics if `dep` is not guaranteed.
    pub fn chain(&self, dep: &Dependence) -> Vec<VertexId> {
        let mut scratch = ChainScratch::new();
        let mut path = Vec::with_capacity(2 * (self.g.r() as usize + 1));
        self.chain_with(dep, &mut scratch, &mut path);
        path
    }

    /// Allocation-free [`ChainRouter::chain`]: writes the chain into `path`
    /// (cleared first), reusing `scratch` for all digit arithmetic. The
    /// per-level prefix and suffix packs are built incrementally (`O(k)`
    /// total instead of `O(k²)` repacking per level).
    ///
    /// # Panics
    /// Panics if `dep` is not guaranteed.
    pub fn chain_with(
        &self,
        dep: &Dependence,
        scratch: &mut ChainScratch,
        path: &mut Vec<VertexId>,
    ) {
        assert!(dep.is_guaranteed(), "chains exist only for guaranteed deps");
        let g = self.g;
        let base = g.base();
        let (n0, a, b) = (base.n0(), base.a(), base.b());
        let k = g.r() as usize;
        scratch.resize(k);

        index::unpack_into(dep.in_row, n0, &mut scratch.in_rows);
        index::unpack_into(dep.in_col, n0, &mut scratch.in_cols);
        index::unpack_into(dep.out_row, n0, &mut scratch.out_rows);
        index::unpack_into(dep.out_col, n0, &mut scratch.out_cols);

        // Per-level matched product (prefix-packed incrementally) and
        // entry-digit suffix packs (built backward).
        let layer = match dep.side {
            DepSide::A => Layer::EncA,
            DepSide::B => Layer::EncB,
        };
        scratch.t_pre[0] = 0;
        scratch.x_suf[k] = 0;
        scratch.y_suf[k] = 0;
        for l in 0..k {
            let t = match dep.side {
                DepSide::A => {
                    self.table_a[scratch.in_rows[l]][scratch.in_cols[l]][scratch.out_cols[l]]
                }
                DepSide::B => {
                    self.table_b[scratch.in_cols[l]][scratch.in_rows[l]][scratch.out_rows[l]]
                }
            };
            scratch.t_pre[l + 1] = scratch.t_pre[l] * b as u64 + t as u64;
        }
        let mut weight = 1u64;
        for l in (0..k).rev() {
            let x = (scratch.in_rows[l] * n0 + scratch.in_cols[l]) as u64;
            let y = (scratch.out_rows[l] * n0 + scratch.out_cols[l]) as u64;
            scratch.x_suf[l] = x * weight + scratch.x_suf[l + 1];
            scratch.y_suf[l] = y * weight + scratch.y_suf[l + 1];
            weight *= a as u64;
        }

        path.clear();
        // Encoding ranks 0..=k.
        for l in 0..=k {
            path.push(g.id(VertexRef {
                layer,
                level: l as u32,
                mul: scratch.t_pre[l],
                entry: scratch.x_suf[l],
            }));
        }
        // Product = decoding rank 0 (already entered at l=k? No: encoding
        // rank k is the final combination; the product is its successor).
        path.push(g.id(VertexRef {
            layer: Layer::Dec,
            level: 0,
            mul: scratch.t_pre[k],
            entry: 0,
        }));
        // Decoding ranks 1..=k.
        for l in 1..=k {
            path.push(g.id(VertexRef {
                layer: Layer::Dec,
                level: l as u32,
                mul: scratch.t_pre[k - l],
                entry: scratch.y_suf[k - l],
            }));
        }
    }

    /// Routes every guaranteed dependence of `G_k`, feeding paths to the
    /// counter. Lemma 3: the result is a `2n₀^k`-routing consisting of
    /// chains.
    pub fn route_all(&self, counter: &mut VertexHitCounter<'_>) {
        let mut scratch = ChainScratch::new();
        let mut path = Vec::with_capacity(2 * (self.g.r() as usize + 1));
        for dep in crate::deps::all_dependencies(self.g.base().n0(), self.g.r()) {
            self.chain_with(&dep, &mut scratch, &mut path);
            counter.add_path(&path);
        }
    }

    /// The Lemma 3 bound for this graph: `2·n₀^k`.
    pub fn lemma3_bound(&self) -> u64 {
        2 * index::pow(self.g.base().n0(), self.g.r())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::{all_dependencies, input_vertex, output_vertex};
    use crate::routing::is_chain;
    use mmio_algos::laderman::laderman;
    use mmio_algos::strassen::{strassen, winograd};
    use mmio_cdag::build::build_cdag;
    use mmio_cdag::MetaVertices;

    #[test]
    fn chains_are_chains_with_correct_endpoints() {
        let g = build_cdag(&strassen(), 2);
        let router = ChainRouter::new(&g).unwrap();
        for dep in all_dependencies(2, 2) {
            let path = router.chain(&dep);
            assert_eq!(path.len(), 2 * 3, "2(k+1) vertices");
            assert!(is_chain(&g, &path), "must follow directed edges");
            assert_eq!(path[0], input_vertex(&g, &dep));
            assert_eq!(*path.last().unwrap(), output_vertex(&g, &dep));
        }
    }

    #[test]
    fn lemma3_bound_holds_for_strassen() {
        for k in 1..=3u32 {
            let g = build_cdag(&strassen(), k);
            let meta = MetaVertices::compute(&g);
            let router = ChainRouter::new(&g).unwrap();
            let mut counter = VertexHitCounter::new(&g, Some(&meta));
            router.route_all(&mut counter);
            let stats = counter.stats();
            assert!(
                stats.is_m_routing(router.lemma3_bound()),
                "k={k}: max hits {} / meta {} exceed {}",
                stats.max_vertex_hits,
                stats.max_meta_hits,
                router.lemma3_bound()
            );
            assert_eq!(stats.paths, 2 * 8u64.pow(k));
        }
    }

    #[test]
    fn lemma3_bound_holds_for_winograd() {
        for k in 1..=2u32 {
            let g = build_cdag(&winograd(), k);
            let router = ChainRouter::new(&g).unwrap();
            let mut counter = VertexHitCounter::new(&g, None);
            router.route_all(&mut counter);
            assert!(counter.stats().is_m_routing(router.lemma3_bound()), "k={k}");
        }
    }

    #[test]
    fn lemma3_bound_holds_for_laderman() {
        let g = build_cdag(&laderman(), 1);
        let router = ChainRouter::new(&g).unwrap();
        let mut counter = VertexHitCounter::new(&g, None);
        router.route_all(&mut counter);
        let stats = counter.stats();
        assert!(stats.is_m_routing(router.lemma3_bound()));
        assert_eq!(stats.paths, 2 * 27);
    }

    #[test]
    fn per_side_bound_is_half() {
        // Each side alone is an n₀^k-routing (middle vertices used ≤ n₀ per
        // level, multiplicatively).
        let g = build_cdag(&strassen(), 2);
        let router = ChainRouter::new(&g).unwrap();
        let mut counter = VertexHitCounter::new(&g, None);
        for dep in all_dependencies(2, 2)
            .into_iter()
            .filter(|d| d.side == DepSide::A)
        {
            counter.add_path(&router.chain(&dep));
        }
        let stats = counter.stats();
        assert!(
            stats.max_vertex_hits <= 4,
            "A-side alone must be an n₀^k = 4 routing, got {}",
            stats.max_vertex_hits
        );
    }

    #[test]
    #[should_panic(expected = "guaranteed")]
    fn unguaranteed_dep_rejected() {
        let g = build_cdag(&strassen(), 1);
        let router = ChainRouter::new(&g).unwrap();
        let bad = Dependence {
            side: DepSide::A,
            in_row: 0,
            in_col: 0,
            out_row: 1,
            out_col: 0,
        };
        let _ = router.chain(&bad);
    }
}
