//! Runtime-armed corruption switches for certificate emission — the
//! *engine-side* half of the mutation-testing harness (the certificate-side
//! half lives in `mmio-cert::mutate`).
//!
//! Compiled only under the `mutate` feature and dormant until a switch is
//! armed, so enabling the feature through cargo's unification never changes
//! behavior by itself. The `cert_mutate` harness arms one switch, emits,
//! disarms, and asserts the standalone verifier rejects the result: a lie
//! told at the *decision point inside the engine* must be caught from the
//! serialized certificate alone.

use std::sync::atomic::{AtomicBool, Ordering};

/// Drop the last routed path from emitted routing certificates
/// (expected kill: `MMIO-V015`/`MMIO-V011`).
pub static DROP_LAST_PATH: AtomicBool = AtomicBool::new(false);

/// Claim one fewer maximum vertex hit than the engine counted
/// (expected kill: `MMIO-V014`).
pub static UNDERCOUNT_VERTEX_HITS: AtomicBool = AtomicBool::new(false);

/// Replace the last transport prefix with a duplicate of the first
/// (expected kill: `MMIO-V016`; only observable when `r > k`, i.e. when
/// there is more than one copy).
pub static PREFIX_LIE: AtomicBool = AtomicBool::new(false);

/// Disarms every switch (harness hygiene between mutants).
pub fn disarm_all() {
    for flag in [&DROP_LAST_PATH, &UNDERCOUNT_VERTEX_HITS, &PREFIX_LIE] {
        flag.store(false, Ordering::SeqCst);
    }
}
