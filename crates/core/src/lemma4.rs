//! Lemma 4: from chains for guaranteed dependencies to paths between *all*
//! input–output pairs.
//!
//! For `v = a_{ij}` and `w = c_{i'j'}` the paper concatenates three
//! guaranteed-dependence chains (Figure 6):
//!
//! ```text
//! a_{ij} → c_{ij'}  ←  b_{jj'}  →  c_{i'j'}
//! ```
//!
//! (middle chain reversed), and symmetrically `b_{ij} → c_{i'j} ← a_{i'i} →
//! c_{i'j'}` for `B`-inputs. Every guaranteed dependence appears in exactly
//! `3·n₀^k` of the `2a^k·a^k` sequences — the "odd use of `j` as a row
//! index" is what equidistributes the middle chain.

use crate::deps::{DepSide, Dependence};
use std::collections::HashMap;

/// The three-dependence sequence for one input–output pair. Indices are
/// packed base-`n₀` digit vectors of length `k`.
///
/// `side`/`in_row`/`in_col` describe the input vertex; `out_row`/`out_col`
/// the output.
pub fn dependence_sequence(
    side: DepSide,
    in_row: u64,
    in_col: u64,
    out_row: u64,
    out_col: u64,
) -> [Dependence; 3] {
    match side {
        // a_{ij} → c_{ij'} ; b_{jj'} → c_{ij'} ; b_{jj'} → c_{i'j'}.
        DepSide::A => {
            let (i, j) = (in_row, in_col);
            let (i2, j2) = (out_row, out_col);
            [
                Dependence::a_side(i, j, j2),
                Dependence::b_side(j, j2, i),
                Dependence::b_side(j, j2, i2),
            ]
        }
        // b_{ij} → c_{i'j} ; a_{i'i} → c_{i'j} ; a_{i'i} → c_{i'j'}.
        DepSide::B => {
            let (i, j) = (in_row, in_col);
            let (i2, j2) = (out_row, out_col);
            [
                Dependence::b_side(i, j, i2),
                Dependence::a_side(i2, i, j),
                Dependence::a_side(i2, i, j2),
            ]
        }
    }
}

/// Verifies the three structural facts of Lemma 4 for all `2·n₀^{4k}` pairs
/// (exhaustively, for the given digit-space size `nk = n₀^k`):
///
/// 1. every dependence in every sequence is guaranteed;
/// 2. consecutive dependencies share the junction vertex (output, then
///    input) so chains concatenate;
/// 3. each guaranteed dependence is used at most (exactly) `3·nk` times.
///
/// Returns the maximum usage count observed.
pub fn verify_usage_bound(nk: u64) -> u64 {
    let mut usage: HashMap<(DepSide, u64, u64, u64, u64), u64> = HashMap::new();
    for side in [DepSide::A, DepSide::B] {
        for in_row in 0..nk {
            for in_col in 0..nk {
                for out_row in 0..nk {
                    for out_col in 0..nk {
                        let seq = dependence_sequence(side, in_row, in_col, out_row, out_col);
                        // 1. All guaranteed.
                        for d in &seq {
                            assert!(d.is_guaranteed(), "unguaranteed link {d:?}");
                        }
                        // 2. Junctions line up.
                        assert_eq!(
                            (seq[0].out_row, seq[0].out_col),
                            (seq[1].out_row, seq[1].out_col),
                            "first junction must share the output"
                        );
                        assert_eq!(
                            (seq[1].in_row, seq[1].in_col, seq[1].side),
                            (seq[2].in_row, seq[2].in_col, seq[2].side),
                            "second junction must share the input"
                        );
                        // Endpoints of the overall path.
                        assert_eq!((seq[0].in_row, seq[0].in_col), (in_row, in_col));
                        assert_eq!((seq[2].out_row, seq[2].out_col), (out_row, out_col));
                        // 3. Count usages.
                        for d in &seq {
                            *usage
                                .entry((d.side, d.in_row, d.in_col, d.out_row, d.out_col))
                                .or_insert(0) += 1;
                        }
                    }
                }
            }
        }
    }
    usage.values().copied().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_bound_is_exactly_3nk() {
        for nk in [2u64, 3, 4] {
            let max = verify_usage_bound(nk);
            assert_eq!(max, 3 * nk, "nk={nk}");
        }
    }

    #[test]
    fn a_side_sequence_matches_paper_figure6() {
        // a_{ij} → c_{ij'} → b_{jj'} → c_{i'j'} with (i,j,i',j') = (0,1,1,0):
        // a01→c00, b10→c00, b10→c10 … in digit form nk may be ≥ 2.
        let seq = dependence_sequence(DepSide::A, 0, 1, 1, 0);
        assert_eq!(seq[0], Dependence::a_side(0, 1, 0));
        assert_eq!(seq[1], Dependence::b_side(1, 0, 0));
        assert_eq!(seq[2], Dependence::b_side(1, 0, 1));
    }

    #[test]
    fn b_side_sequence_symmetric() {
        let seq = dependence_sequence(DepSide::B, 1, 0, 0, 1);
        assert_eq!(seq[0], Dependence::b_side(1, 0, 0));
        assert_eq!(seq[1], Dependence::a_side(0, 1, 0));
        assert_eq!(seq[2], Dependence::a_side(0, 1, 1));
    }

    #[test]
    fn every_middle_dep_uses_input_col_as_row() {
        // The paper's "odd use of j as a row index": the middle dependence
        // for A-inputs starts from b_{j j'}, whose *row* is the input's
        // column. This is what makes usage uniform.
        let seq = dependence_sequence(DepSide::A, 5, 3, 2, 7);
        assert_eq!(seq[1].in_row, 3);
        assert_eq!(seq[1].in_col, 7);
    }
}
