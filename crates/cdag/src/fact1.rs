//! **Fact 1** of the paper: for `0 ≤ k ≤ r`, the induced subgraph `G_{r,k}`
//! of `G_r` on the middle `2(k+1)` levels (encoding ranks `r-k..=r` of both
//! sides and decoding ranks `0..=k`) consists of `b^{r-k}` vertex-disjoint
//! copies of `G_k`.
//!
//! The copy `G_k^i` is indexed by the multiplication prefix
//! `i ∈ [b^{r-k}]`; its vertices are exactly those whose `mul` coordinate
//! has `i` as its leading `r-k` digits. This module provides the isomorphism
//! between each copy and a standalone `G_k` built from the same base graph,
//! which is how routings constructed once on `G_k` are transported into
//! every subcomputation of `G_r`.

use crate::graph::{Cdag, Layer, VertexId, VertexRef};
use crate::index;

/// A view of the `i`-th subcomputation `G_k^i` inside a larger `G_r`.
#[derive(Clone, Copy)]
pub struct Subcomputation<'g> {
    g: &'g Cdag,
    /// Subcomputation depth `k`.
    pub k: u32,
    /// Prefix index `i ∈ [b^{r-k}]`.
    pub prefix: u64,
}

impl<'g> Subcomputation<'g> {
    /// Number of subcomputations of depth `k` in `g`: `b^{r-k}`.
    ///
    /// # Panics
    /// Panics if `k > r`.
    pub fn count(g: &Cdag, k: u32) -> u64 {
        // audit: safe — documented contract panic; verify-path callers pass k ≤ r
        assert!(k <= g.r(), "k must be at most r");
        index::pow(g.base().b(), g.r() - k)
    }

    /// The `i`-th subcomputation of depth `k`.
    ///
    /// # Panics
    /// Panics if `k > r` or `prefix` is out of range.
    pub fn new(g: &'g Cdag, k: u32, prefix: u64) -> Subcomputation<'g> {
        assert!(prefix < Self::count(g, k), "prefix out of range");
        Subcomputation { g, k, prefix }
    }

    /// Iterates over all subcomputations of depth `k`.
    pub fn all(g: &'g Cdag, k: u32) -> impl Iterator<Item = Subcomputation<'g>> {
        (0..Self::count(g, k)).map(move |prefix| Subcomputation { g, k, prefix })
    }

    /// Maps a vertex reference of the *standalone* `G_k` (a [`Cdag`] built
    /// with recursion depth `k` from the same base graph) into the global
    /// `G_r` vertex it corresponds to under the Fact-1 isomorphism.
    pub fn local_to_global(&self, local: VertexRef) -> VertexId {
        let g = self.g;
        let (r, k) = (g.r(), self.k);
        let b = g.base().b();
        let global = match local.layer {
            Layer::EncA | Layer::EncB => {
                // Local encoding rank t' ↦ global encoding rank r-k+t'.
                debug_assert!(local.level <= k);
                VertexRef {
                    layer: local.layer,
                    level: r - k + local.level,
                    mul: index::concat(self.prefix, local.mul, b, local.level as usize),
                    entry: local.entry,
                }
            }
            Layer::Dec => {
                // Local decoding rank k' ↦ global decoding rank k'.
                debug_assert!(local.level <= k);
                let mul_len = (k - local.level) as usize;
                VertexRef {
                    layer: Layer::Dec,
                    level: local.level,
                    mul: index::concat(self.prefix, local.mul, b, mul_len),
                    entry: local.entry,
                }
            }
        };
        g.id(global)
    }

    /// Inverse of [`Subcomputation::local_to_global`] for vertices belonging
    /// to this subcomputation; `None` for vertices outside it (wrong prefix
    /// or outside the middle `2(k+1)` levels).
    pub fn global_to_local(&self, v: VertexId) -> Option<VertexRef> {
        let g = self.g;
        let (r, k) = (g.r(), self.k);
        let b = g.base().b();
        let vr = g.vref(v);
        match vr.layer {
            Layer::EncA | Layer::EncB => {
                if vr.level < r - k {
                    return None;
                }
                let t_local = vr.level - (r - k);
                let (pre, rest) =
                    index::split_prefix(vr.mul, b, vr.level as usize, (r - k) as usize);
                (pre == self.prefix).then_some(VertexRef {
                    layer: vr.layer,
                    level: t_local,
                    mul: rest,
                    entry: vr.entry,
                })
            }
            Layer::Dec => {
                if vr.level > k {
                    return None;
                }
                let mul_len = (r - vr.level) as usize;
                let (pre, rest) = index::split_prefix(vr.mul, b, mul_len, (r - k) as usize);
                (pre == self.prefix).then_some(VertexRef {
                    layer: Layer::Dec,
                    level: vr.level,
                    mul: rest,
                    entry: vr.entry,
                })
            }
        }
    }

    /// All global vertices of this subcomputation, in the standalone-`G_k`'s
    /// dense order (so the iso is order-preserving per segment).
    pub fn vertices(&self, local_gk: &Cdag) -> Vec<VertexId> {
        debug_assert_eq!(local_gk.r(), self.k, "standalone graph must be G_k");
        local_gk
            .vertices()
            .map(|lv| self.local_to_global(local_gk.vref(lv)))
            .collect()
    }

    /// The inputs of this subcomputation: encoding rank `r-k` vertices of
    /// both sides with this prefix (the `2a^k` inputs of the copy of `G_k`).
    pub fn input_vertices(&self) -> Vec<VertexId> {
        let g = self.g;
        let (r, k) = (g.r(), self.k);
        let ak = index::pow(g.base().a(), k);
        let mut out = Vec::with_capacity(2 * ak as usize);
        for layer in [Layer::EncA, Layer::EncB] {
            for e in 0..ak {
                out.push(g.id(VertexRef {
                    layer,
                    level: r - k,
                    mul: self.prefix,
                    entry: e,
                }));
            }
        }
        out
    }

    /// The outputs of this subcomputation: decoding rank `k` vertices with
    /// this prefix (the `a^k` outputs of the copy of `G_k`).
    pub fn output_vertices(&self) -> Vec<VertexId> {
        let g = self.g;
        let ak = index::pow(g.base().a(), self.k);
        (0..ak)
            .map(|e| {
                g.id(VertexRef {
                    layer: Layer::Dec,
                    level: self.k,
                    mul: self.prefix,
                    entry: e,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::BaseGraph;
    use crate::build::build_cdag;
    use mmio_matrix::{Matrix, Rational};
    use std::collections::HashSet;

    fn r_(n: i64) -> Rational {
        Rational::integer(n)
    }

    fn classical2() -> BaseGraph {
        let n0 = 2;
        let mut enc_a = Matrix::zeros(8, 4);
        let mut enc_b = Matrix::zeros(8, 4);
        let mut dec = Matrix::zeros(4, 8);
        let mut m = 0;
        for i in 0..n0 {
            for j in 0..n0 {
                for k in 0..n0 {
                    enc_a[(m, i * n0 + k)] = r_(1);
                    enc_b[(m, k * n0 + j)] = r_(1);
                    dec[(i * n0 + j, m)] = r_(1);
                    m += 1;
                }
            }
        }
        BaseGraph::new("classical2", n0, enc_a, enc_b, dec)
    }

    #[test]
    fn subcomputation_count() {
        let g = build_cdag(&classical2(), 3);
        assert_eq!(Subcomputation::count(&g, 3), 1);
        assert_eq!(Subcomputation::count(&g, 2), 8);
        assert_eq!(Subcomputation::count(&g, 0), 512);
    }

    #[test]
    fn copies_are_vertex_disjoint_and_cover_middle() {
        let base = classical2();
        let g = build_cdag(&base, 3);
        let gk = build_cdag(&base, 1);
        let mut seen: HashSet<VertexId> = HashSet::new();
        for sub in Subcomputation::all(&g, 1) {
            for v in sub.vertices(&gk) {
                assert!(seen.insert(v), "copies must be vertex-disjoint");
            }
        }
        // Fact 1: total = b^{r-k} · |V(G_k)|.
        assert_eq!(seen.len(), 64 * gk.n_vertices());
        // And they are exactly the middle-2(k+1)-level vertices.
        for v in g.vertices() {
            let vr = g.vref(v);
            let in_middle = match vr.layer {
                Layer::EncA | Layer::EncB => vr.level >= 2, // r-k = 2
                Layer::Dec => vr.level <= 1,
            };
            assert_eq!(seen.contains(&v), in_middle);
        }
    }

    #[test]
    fn iso_roundtrip() {
        let base = classical2();
        let g = build_cdag(&base, 3);
        let gk = build_cdag(&base, 2);
        for sub in Subcomputation::all(&g, 2) {
            for lv in gk.vertices() {
                let global = sub.local_to_global(gk.vref(lv));
                let back = sub.global_to_local(global).unwrap();
                assert_eq!(gk.id(back), lv);
            }
        }
    }

    #[test]
    fn iso_preserves_edges() {
        let base = classical2();
        let g = build_cdag(&base, 2);
        let gk = build_cdag(&base, 1);
        for sub in Subcomputation::all(&g, 1) {
            for lv in gk.vertices() {
                let gv = sub.local_to_global(gk.vref(lv));
                let local_preds: HashSet<VertexId> = gk
                    .preds(lv)
                    .iter()
                    .map(|&p| sub.local_to_global(gk.vref(p)))
                    .collect();
                // Global preds of gv that live inside the subcomputation
                // must be exactly the images of local preds.
                let global_preds: HashSet<VertexId> = g
                    .preds(gv)
                    .iter()
                    .copied()
                    .filter(|&p| sub.global_to_local(p).is_some())
                    .collect();
                assert_eq!(local_preds, global_preds);
            }
        }
    }

    #[test]
    fn inputs_and_outputs_shape() {
        let g = build_cdag(&classical2(), 3);
        let sub = Subcomputation::new(&g, 2, 3);
        assert_eq!(sub.input_vertices().len(), 2 * 16); // 2a^k
        assert_eq!(sub.output_vertices().len(), 16); // a^k
                                                     // Inputs are on encoding rank r-k, outputs on decoding rank k.
        for &v in &sub.input_vertices() {
            assert_eq!(g.rank(v), 1);
        }
        for &v in &sub.output_vertices() {
            assert_eq!(g.rank(v), g.r() + 1 + 2);
        }
    }

    #[test]
    fn outside_vertices_rejected() {
        let g = build_cdag(&classical2(), 2);
        let sub = Subcomputation::new(&g, 1, 0);
        // An input of G_r (encoding rank 0 < r-k = 1) is outside.
        let input = g.inputs().next().unwrap();
        assert!(sub.global_to_local(input).is_none());
        // A vertex with a different prefix is outside.
        let other = Subcomputation::new(&g, 1, 1);
        let v = other.input_vertices()[0];
        assert!(sub.global_to_local(v).is_none());
    }
}
