//! Reusable flat CSR (compressed sparse row) adjacency-style storage.
//!
//! The pebble scheduler's hot path needs, for every vertex, the sorted list
//! of compute-order positions at which the vertex is used. Building that as
//! `Vec<Vec<u64>>` costs one heap allocation per vertex per run; [`Csr`]
//! stores the same data as two flat arrays (`offsets` + `items`) built by a
//! two-pass counting sort, and `rebuild` reuses the allocations across
//! builds — the "build once per (graph, order), reuse across the (policy, M)
//! grid" pattern of `mmio_pebble::sweep`.

/// Flat CSR storage: `items[offsets[k]..offsets[k + 1]]` is row `k`.
///
/// Rows preserve emission order, so emitting items in ascending order per
/// key yields sorted rows without a sort pass.
#[derive(Clone, Debug, Default)]
pub struct Csr {
    offsets: Vec<u32>,
    items: Vec<u64>,
    cursors: Vec<u32>,
}

impl Csr {
    /// An empty CSR (no keys, no items).
    pub fn new() -> Csr {
        Csr::default()
    }

    /// Rebuilds the CSR for `n_keys` rows from scratch, reusing existing
    /// allocations. `emit` is called exactly twice with a sink closure and
    /// must produce the same `(key, item)` sequence both times (first pass
    /// counts, second pass fills).
    ///
    /// # Panics
    /// Panics if `emit` produces a key `>= n_keys`, or a different number of
    /// items on the second pass.
    pub fn rebuild(&mut self, n_keys: usize, emit: impl Fn(&mut dyn FnMut(u32, u64))) {
        self.offsets.clear();
        self.offsets.resize(n_keys + 1, 0);
        emit(&mut |key, _item| {
            self.offsets[key as usize + 1] += 1;
        });
        for k in 0..n_keys {
            self.offsets[k + 1] += self.offsets[k];
        }
        let total = self.offsets[n_keys] as usize;
        self.items.clear();
        self.items.resize(total, 0);
        self.cursors.clear();
        self.cursors.extend_from_slice(&self.offsets[..n_keys]);
        emit(&mut |key, item| {
            let cur = &mut self.cursors[key as usize];
            self.items[*cur as usize] = item;
            *cur += 1;
        });
        debug_assert!(
            (0..n_keys).all(|k| self.cursors[k] == self.offsets[k + 1]),
            "emit produced fewer items on the fill pass than on the count pass"
        );
    }

    /// Number of rows.
    pub fn n_keys(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total number of stored items.
    pub fn n_items(&self) -> usize {
        self.items.len()
    }

    /// Row `key` as a slice (empty slice for keys with no items).
    #[inline]
    pub fn row(&self, key: usize) -> &[u64] {
        &self.items[self.offsets[key] as usize..self.offsets[key + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_rows_in_emission_order() {
        let mut csr = Csr::new();
        let pairs = [(2u32, 10u64), (0, 5), (2, 11), (1, 7), (2, 12)];
        csr.rebuild(4, |sink| {
            for &(k, v) in &pairs {
                sink(k, v);
            }
        });
        assert_eq!(csr.n_keys(), 4);
        assert_eq!(csr.n_items(), 5);
        assert_eq!(csr.row(0), &[5]);
        assert_eq!(csr.row(1), &[7]);
        assert_eq!(csr.row(2), &[10, 11, 12]);
        assert_eq!(csr.row(3), &[] as &[u64]);
    }

    #[test]
    fn rebuild_reuses_and_replaces() {
        let mut csr = Csr::new();
        csr.rebuild(2, |sink| {
            sink(0, 1);
            sink(1, 2);
        });
        csr.rebuild(3, |sink| {
            sink(2, 9);
        });
        assert_eq!(csr.n_keys(), 3);
        assert_eq!(csr.row(0), &[] as &[u64]);
        assert_eq!(csr.row(2), &[9]);
    }

    #[test]
    fn empty_is_fine() {
        let mut csr = Csr::new();
        csr.rebuild(0, |_sink| {});
        assert_eq!(csr.n_keys(), 0);
        assert_eq!(csr.n_items(), 0);
    }
}
