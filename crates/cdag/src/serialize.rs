//! JSON import/export of base graphs, so users can define their own
//! Strassen-like algorithms in a data file and push them through the whole
//! pipeline (verification, CDAG, routings, bounds).
//!
//! Imported graphs are *always* checked against the matrix-multiplication
//! tensor: a coefficient file that does not multiply matrices is rejected,
//! not silently analyzed.

use crate::base::BaseGraph;
use mmio_matrix::{Matrix, Rational};
use serde::{Deserialize, Serialize};

/// The on-disk form of a base graph.
#[derive(Serialize, Deserialize)]
struct BaseGraphFile {
    name: String,
    n0: usize,
    enc_a: Matrix<Rational>,
    enc_b: Matrix<Rational>,
    dec: Matrix<Rational>,
}

/// Errors importing a base graph.
#[derive(Debug)]
pub enum ImportError {
    /// The JSON was malformed or shapes inconsistent.
    Parse(String),
    /// The coefficients do not satisfy the matmul tensor identity; the
    /// number of violated triples is reported.
    Incorrect(usize),
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::Parse(e) => write!(f, "parse error: {e}"),
            ImportError::Incorrect(n) => {
                write!(
                    f,
                    "not a matrix multiplication algorithm ({n} tensor violations)"
                )
            }
        }
    }
}

impl std::error::Error for ImportError {}

/// Serializes a base graph to pretty JSON.
pub fn to_json(base: &BaseGraph) -> String {
    let file = BaseGraphFile {
        name: base.name().to_string(),
        n0: base.n0(),
        enc_a: base.enc(crate::base::Side::A).clone(),
        enc_b: base.enc(crate::base::Side::B).clone(),
        dec: base.dec().clone(),
    };
    serde_json::to_string_pretty(&file).expect("base graphs always serialize")
}

/// Parses and *verifies* a base graph from JSON.
pub fn from_json(json: &str) -> Result<BaseGraph, ImportError> {
    let file: BaseGraphFile =
        serde_json::from_str(json).map_err(|e| ImportError::Parse(e.to_string()))?;
    let a = file.n0 * file.n0;
    if file.enc_a.cols() != a
        || file.enc_b.cols() != a
        || file.enc_a.rows() != file.enc_b.rows()
        || file.dec.rows() != a
        || file.dec.cols() != file.enc_a.rows()
    {
        return Err(ImportError::Parse("inconsistent matrix shapes".into()));
    }
    let base = BaseGraph::new(file.name, file.n0, file.enc_a, file.enc_b, file.dec);
    base.verify_correctness()
        .map_err(|errs| ImportError::Incorrect(errs.len()))?;
    Ok(base)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> BaseGraph {
        let one = Matrix::from_vec(1, 1, vec![Rational::ONE]);
        BaseGraph::new("unit", 1, one.clone(), one.clone(), one)
    }

    #[test]
    fn roundtrip() {
        let base = unit();
        let json = to_json(&base);
        let back = from_json(&json).unwrap();
        assert_eq!(back.name(), "unit");
        assert_eq!(back.n0(), 1);
        assert!(back
            .enc(crate::base::Side::A)
            .exactly_equals(base.enc(crate::base::Side::A)));
    }

    #[test]
    fn incorrect_algorithms_rejected() {
        let base = unit();
        let json = to_json(&base).replace("\"1\"", "\"2\""); // corrupt a coefficient
        match from_json(&json) {
            Err(ImportError::Incorrect(n)) => assert!(n > 0),
            other => panic!("expected Incorrect, got {other:?}"),
        }
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(matches!(from_json("{"), Err(ImportError::Parse(_))));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let json = r#"{"name":"bad","n0":2,
            "enc_a":{"rows":1,"cols":1,"data":["1"]},
            "enc_b":{"rows":1,"cols":1,"data":["1"]},
            "dec":{"rows":1,"cols":1,"data":["1"]}}"#;
        assert!(matches!(from_json(json), Err(ImportError::Parse(_))));
    }
}
