//! [`CdagView`]: lazy, closed-form access to `G_r` — the engines' way past
//! the `b^r` materialization wall.
//!
//! `build_cdag` materializes every vertex and edge of `G_r`, which caps all
//! engines at r ≈ 4. But Fact 1 plus the copy isomorphism make the whole
//! graph computable from pure mixed-radix index arithmetic over the base
//! matrices: the segment layout (EncA levels `0..=r`, EncB `0..=r`, Dec
//! `0..=r`), the dense-id ↔ structured-address bijection, predecessors and
//! successors, the copy grouping, and the Fact-1 lift of a `G_k` vertex into
//! any of the `b^{r-k}` copies inside `G_r`.
//!
//! This module defines:
//!
//! - [`CdagView`], the trait the routing, analysis, and pebble engines are
//!   generic over;
//! - [`IndexView`], the implicit implementation: `O(a·b)` memory regardless
//!   of `r`, every query answered by closed-form arithmetic (originally the
//!   certificate verifier's model in `mmio-cert`, promoted here so engines
//!   and verifier share one audited implementation — `mmio-cert::view`
//!   re-exports it, keeping the verifier's trust base unchanged);
//! - [`ExplicitView`], a zero-cost wrapper over a materialized [`Cdag`]
//!   (the `Cdag` itself also implements [`CdagView`] directly).
//!
//! Everything in [`IndexView`] is checked: malformed shapes and id-space
//! overflows surface as `Err`/`None`, never as panics, because certificate
//! input is untrusted.

use crate::base::{BaseGraph, Side};
use crate::graph::{Cdag, Layer, VertexId, VertexRef};
use crate::hits::UnionFind;
use mmio_matrix::{Matrix, Rational};
use std::fmt;

/// Why a view could not be constructed — split so the verifier can map
/// shape defects and parameter/size defects to distinct reject codes.
#[derive(Clone, Debug)]
pub enum ViewError {
    /// The embedded coefficient matrices have inconsistent dimensions.
    Shape(String),
    /// The requested parameters are out of the verifiable range (`r == 0`,
    /// or the implied graph overflows the dense id space).
    Params(String),
}

impl fmt::Display for ViewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewError::Shape(s) | ViewError::Params(s) => f.write_str(s),
        }
    }
}

/// `base^exp` without panicking on overflow.
pub fn checked_pow(base: u64, exp: u32) -> Option<u64> {
    let mut acc: u64 = 1;
    for _ in 0..exp {
        acc = acc.checked_mul(base)?;
    }
    Some(acc)
}

/// Closed-form vertex count of `G_r` for a base with parameters `(a, b)`:
/// `Σ_t 2·b^t·a^{r-t} + Σ_k b^{r-k}·a^k`. `None` on `u64` overflow — the
/// caller should treat that as "too big for any budget".
pub fn count_vertices(a: u64, b: u64, r: u32) -> Option<u64> {
    let mut total: u64 = 0;
    for t in 0..=r {
        let enc = checked_pow(b, t)?.checked_mul(checked_pow(a, r - t)?)?;
        total = total.checked_add(enc.checked_mul(2)?)?;
        let dec = checked_pow(b, r - t)?.checked_mul(checked_pow(a, t)?)?;
        total = total.checked_add(dec)?;
    }
    Some(total)
}

/// Uniform lazy access to the structure of `G_r`.
///
/// Implemented by the materialized [`Cdag`] (and [`ExplicitView`]) and by
/// the closed-form [`IndexView`]. The contract is exact structural
/// equivalence: for the same base and `r`, every method must return
/// identical results across implementations (property-tested in
/// `mmio-integration`), including the *order* of appended predecessors and
/// successors — engines rely on it for deterministic output.
///
/// Methods taking a [`VertexId`] assume `v.idx() < n_vertices()` unless
/// documented otherwise; `preds_into`/`succs_into` report out-of-range ids
/// by returning `false`.
pub trait CdagView {
    /// Recursion depth `r ≥ 1`.
    fn r(&self) -> u32;
    /// `a = n₀²`.
    fn a(&self) -> usize;
    /// `b`: multiplications per recursion step.
    fn b(&self) -> usize;
    /// Total vertex count of `G_r`.
    fn n_vertices(&self) -> usize;
    /// Dense id of a structured address, or `None` if out of range.
    fn try_id(&self, v: VertexRef) -> Option<VertexId>;
    /// Structured address of a dense id, or `None` if out of range.
    fn try_vref(&self, v: VertexId) -> Option<VertexRef>;
    /// `a^{entry_len}` — the entry-suffix width of segment `(layer, level)`.
    fn entry_width(&self, layer: Layer, level: u32) -> u64;
    /// Appends `v`'s predecessors (in dense-id order) to `out`; `false` if
    /// `v` is out of range. Does not clear `out`.
    fn preds_into(&self, v: VertexId, out: &mut Vec<VertexId>) -> bool;
    /// Appends `v`'s successors (in dense-id order) to `out`; `false` if
    /// `v` is out of range. Does not clear `out`.
    fn succs_into(&self, v: VertexId, out: &mut Vec<VertexId>) -> bool;
    /// Whether `v` is an input (encoding level 0 of either side).
    fn is_input(&self, v: VertexId) -> bool;
    /// Whether `v` is an output (decoding level `r`).
    fn is_output(&self, v: VertexId) -> bool;
    /// The paper's global rank (`0..=2r+1`), or `None` if out of range.
    fn rank_of(&self, v: VertexId) -> Option<u32>;
    /// Maximum in-degree over `G_r`.
    fn max_indegree(&self) -> usize;
    /// If `v` is a copy (its generating base row is trivial: one nonzero
    /// coefficient, equal to 1), its single predecessor; `None` otherwise.
    fn copy_parent(&self, v: VertexId) -> Option<VertexId>;

    /// The copy grouping as a flat root table (`roots[v]` = representative
    /// of `v`'s meta-vertex). `O(n_vertices)` memory by nature.
    fn copy_roots_table(&self) -> Vec<u32> {
        let n = self.n_vertices();
        let mut uf = UnionFind::new(n);
        for i in 0..n as u32 {
            if let Some(p) = self.copy_parent(VertexId(i)) {
                uf.union(i, p.0);
            }
        }
        uf.roots()
    }

    /// The Fact-1 lift: maps vertex `v` of the standalone `G_k` (viewed by
    /// `local`) into the copy of `G_k` inside this `G_r` selected by
    /// multiplication `prefix ∈ [b^{r-k}]`. `None` when the views are
    /// incompatible or anything is out of range.
    fn lift_from<V: CdagView + ?Sized>(
        &self,
        local: &V,
        prefix: u64,
        v: VertexId,
    ) -> Option<VertexId> {
        let (r, k) = (self.r(), local.r());
        if local.a() != self.a() || local.b() != self.b() || k > r {
            return None;
        }
        let copies = checked_pow(self.b() as u64, r - k)?;
        if prefix >= copies {
            return None;
        }
        let vr = local.try_vref(v)?;
        let lifted = match vr.layer {
            // Local encoding level t' sits at global level r-k+t', with the
            // prefix prepended to the t'-digit multiplication index.
            Layer::EncA | Layer::EncB => VertexRef {
                layer: vr.layer,
                level: r - k + vr.level,
                mul: prefix
                    .checked_mul(checked_pow(self.b() as u64, vr.level)?)?
                    .checked_add(vr.mul)?,
                entry: vr.entry,
            },
            // Local decoding level k' keeps its global level, with the
            // prefix prepended to the (k-k')-digit multiplication index.
            Layer::Dec => VertexRef {
                layer: Layer::Dec,
                level: vr.level,
                mul: prefix
                    .checked_mul(checked_pow(self.b() as u64, k - vr.level)?)?
                    .checked_add(vr.mul)?,
                entry: vr.entry,
            },
        };
        self.try_id(lifted)
    }
}

impl CdagView for Cdag {
    fn r(&self) -> u32 {
        Cdag::r(self)
    }
    fn a(&self) -> usize {
        self.base().a()
    }
    fn b(&self) -> usize {
        self.base().b()
    }
    fn n_vertices(&self) -> usize {
        Cdag::n_vertices(self)
    }
    fn try_id(&self, v: VertexRef) -> Option<VertexId> {
        if v.level > Cdag::r(self) {
            return None;
        }
        let width = Cdag::entry_width(self, v.layer, v.level);
        if v.entry >= width {
            return None;
        }
        let local = v.mul.checked_mul(width)?.checked_add(v.entry)?;
        if local >= self.segment_len(v.layer, v.level) {
            return None;
        }
        Some(VertexId(
            (self.segment_start(v.layer, v.level) + local) as u32,
        ))
    }
    fn try_vref(&self, v: VertexId) -> Option<VertexRef> {
        (v.idx() < Cdag::n_vertices(self)).then(|| self.vref(v))
    }
    fn entry_width(&self, layer: Layer, level: u32) -> u64 {
        Cdag::entry_width(self, layer, level)
    }
    fn preds_into(&self, v: VertexId, out: &mut Vec<VertexId>) -> bool {
        if v.idx() >= Cdag::n_vertices(self) {
            return false;
        }
        out.extend_from_slice(self.preds(v));
        true
    }
    fn succs_into(&self, v: VertexId, out: &mut Vec<VertexId>) -> bool {
        if v.idx() >= Cdag::n_vertices(self) {
            return false;
        }
        out.extend_from_slice(self.succs(v));
        true
    }
    fn is_input(&self, v: VertexId) -> bool {
        Cdag::is_input(self, v)
    }
    fn is_output(&self, v: VertexId) -> bool {
        Cdag::is_output(self, v)
    }
    fn rank_of(&self, v: VertexId) -> Option<u32> {
        (v.idx() < Cdag::n_vertices(self)).then(|| self.rank(v))
    }
    fn max_indegree(&self) -> usize {
        self.vertices()
            .map(|v| self.preds(v).len())
            .max()
            .unwrap_or(0)
    }
    fn copy_parent(&self, v: VertexId) -> Option<VertexId> {
        Cdag::copy_parent(self, v)
    }
}

/// A zero-cost [`CdagView`] borrowing a materialized [`Cdag`]. The `Cdag`
/// itself implements the trait; this wrapper exists for call sites that
/// want to name the explicit implementation symmetrically with
/// [`IndexView`].
#[derive(Clone, Copy)]
pub struct ExplicitView<'a>(pub &'a Cdag);

impl CdagView for ExplicitView<'_> {
    fn r(&self) -> u32 {
        Cdag::r(self.0)
    }
    fn a(&self) -> usize {
        self.0.base().a()
    }
    fn b(&self) -> usize {
        self.0.base().b()
    }
    fn n_vertices(&self) -> usize {
        Cdag::n_vertices(self.0)
    }
    fn try_id(&self, v: VertexRef) -> Option<VertexId> {
        CdagView::try_id(self.0, v)
    }
    fn try_vref(&self, v: VertexId) -> Option<VertexRef> {
        CdagView::try_vref(self.0, v)
    }
    fn entry_width(&self, layer: Layer, level: u32) -> u64 {
        Cdag::entry_width(self.0, layer, level)
    }
    fn preds_into(&self, v: VertexId, out: &mut Vec<VertexId>) -> bool {
        CdagView::preds_into(self.0, v, out)
    }
    fn succs_into(&self, v: VertexId, out: &mut Vec<VertexId>) -> bool {
        CdagView::succs_into(self.0, v, out)
    }
    fn is_input(&self, v: VertexId) -> bool {
        Cdag::is_input(self.0, v)
    }
    fn is_output(&self, v: VertexId) -> bool {
        Cdag::is_output(self.0, v)
    }
    fn rank_of(&self, v: VertexId) -> Option<u32> {
        CdagView::rank_of(self.0, v)
    }
    fn max_indegree(&self) -> usize {
        CdagView::max_indegree(self.0)
    }
    fn copy_parent(&self, v: VertexId) -> Option<VertexId> {
        Cdag::copy_parent(self.0, v)
    }
}

/// Sparsity pattern of one coefficient matrix: per-row nonzero columns
/// (for predecessor queries), per-column nonzero rows (for successor
/// queries), and per-row triviality (exactly one nonzero, equal to 1 —
/// the condition for copy-group membership).
#[derive(Clone)]
struct RowTable {
    cols: Vec<Vec<usize>>,
    rows_of_col: Vec<Vec<usize>>,
    trivial: Vec<bool>,
}

impl RowTable {
    fn new(m: &Matrix<Rational>) -> RowTable {
        let mut cols = Vec::with_capacity(m.rows());
        let mut trivial = Vec::with_capacity(m.rows());
        let mut rows_of_col: Vec<Vec<usize>> = vec![Vec::new(); m.cols()];
        for row in 0..m.rows() {
            // audit: safe — row and c range over m's own dimensions
            let nz: Vec<usize> = (0..m.cols()).filter(|&c| !m[(row, c)].is_zero()).collect();
            for &c in &nz {
                rows_of_col[c].push(row); // audit: safe — c < m.cols(), the table size
            }
            // audit: safe — nz[0] exists when nz.len() == 1; && short-circuits
            trivial.push(nz.len() == 1 && m[(row, nz[0])].is_one());
            cols.push(nz);
        }
        RowTable {
            cols,
            rows_of_col,
            trivial,
        }
    }

    /// Number of columns touched by at least one row.
    fn used_cols(&self) -> u64 {
        self.rows_of_col.iter().filter(|r| !r.is_empty()).count() as u64
    }

    fn max_row_len(&self) -> usize {
        self.cols.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// The closed-form view of `G_r` for one base algorithm: `O(a·b)` memory
/// regardless of `r`. See the module docs for what it derives and why.
///
/// The inherent API works on raw `u32` ids (it predates the trait and the
/// certificate verifier depends on exactly this surface); the [`CdagView`]
/// impl wraps it in [`VertexId`]s.
#[derive(Clone)]
pub struct IndexView {
    r: u32,
    a: usize,
    b: usize,
    /// `3(r+1)+1` cumulative segment offsets, in EncA/EncB/Dec order.
    seg_offsets: Vec<u64>,
    enc_a: RowTable,
    enc_b: RowTable,
    dec: RowTable,
}

impl IndexView {
    /// Builds the view from raw base matrices, validating shapes and the id
    /// space. Rejects (never panics) on inconsistent matrix dimensions,
    /// `r == 0`, or a graph that would not fit dense `u32` ids.
    pub fn new(
        n0: usize,
        enc_a: &Matrix<Rational>,
        enc_b: &Matrix<Rational>,
        dec: &Matrix<Rational>,
        r: u32,
    ) -> Result<IndexView, ViewError> {
        if n0 < 1 {
            return Err(ViewError::Shape("n0 must be at least 1".into()));
        }
        let a = n0
            .checked_mul(n0)
            .ok_or_else(|| ViewError::Shape("n0² overflows".into()))?;
        let b = enc_a.rows();
        if b < 1 {
            return Err(ViewError::Shape("enc_a must have at least one row".into()));
        }
        if enc_a.cols() != a
            || enc_b.rows() != b
            || enc_b.cols() != a
            || dec.rows() != a
            || dec.cols() != b
        {
            return Err(ViewError::Shape(format!(
                "inconsistent shapes: enc_a {}x{}, enc_b {}x{}, dec {}x{} for n0 = {}",
                enc_a.rows(),
                enc_a.cols(),
                enc_b.rows(),
                enc_b.cols(),
                dec.rows(),
                dec.cols(),
                n0
            )));
        }
        if r == 0 {
            return Err(ViewError::Params(
                "recursion depth r must be at least 1".into(),
            ));
        }
        let (au, bu) = (a as u64, b as u64);
        let mut seg_offsets = Vec::with_capacity(3 * (r as usize + 1) + 1);
        let mut total: u64 = 0;
        seg_offsets.push(0);
        let push_seg = |total: &mut u64, size: Option<u64>| -> Result<u64, ViewError> {
            let size =
                size.ok_or_else(|| ViewError::Params("segment size overflows u64".into()))?;
            *total = total
                .checked_add(size)
                .ok_or_else(|| ViewError::Params("vertex count overflows u64".into()))?;
            Ok(*total)
        };
        for _side in 0..2 {
            for t in 0..=r {
                let size = checked_pow(bu, t).and_then(|p| p.checked_mul(checked_pow(au, r - t)?));
                seg_offsets.push(push_seg(&mut total, size)?);
            }
        }
        for k in 0..=r {
            let size = checked_pow(bu, r - k).and_then(|p| p.checked_mul(checked_pow(au, k)?));
            seg_offsets.push(push_seg(&mut total, size)?);
        }
        if total > u32::MAX as u64 {
            return Err(ViewError::Params(format!(
                "G_r has {total} vertices, exceeding u32 ids"
            )));
        }
        Ok(IndexView {
            r,
            a,
            b,
            seg_offsets,
            enc_a: RowTable::new(enc_a),
            enc_b: RowTable::new(enc_b),
            dec: RowTable::new(dec),
        })
    }

    /// Builds the view of `G_r` for a trusted [`BaseGraph`].
    ///
    /// # Panics
    /// Panics if the graph does not fit dense `u32` ids (`BaseGraph` shapes
    /// are valid by construction, so only `Params` errors remain).
    pub fn from_base(base: &BaseGraph, r: u32) -> IndexView {
        match IndexView::new(
            base.n0(),
            base.enc(Side::A),
            base.enc(Side::B),
            base.dec(),
            r,
        ) {
            Ok(v) => v,
            Err(e) => panic!("G_{r} of '{}' is not viewable: {e}", base.name()),
        }
    }

    /// The view of the standalone `G_k` over the same base, sharing no
    /// state with `self`. `k` must be in `1..=r`.
    pub fn subview(&self, k: u32) -> IndexView {
        assert!(
            k >= 1 && k <= self.r,
            "subview depth {k} not in 1..={}",
            self.r
        );
        let (au, bu) = (self.a as u64, self.b as u64);
        let mut seg_offsets = Vec::with_capacity(3 * (k as usize + 1) + 1);
        let mut total: u64 = 0;
        seg_offsets.push(0);
        for _side in 0..2 {
            for t in 0..=k {
                // Cannot overflow: every G_k segment divides a G_r segment.
                total += checked_pow(bu, t).unwrap() * checked_pow(au, k - t).unwrap();
                seg_offsets.push(total);
            }
        }
        for j in 0..=k {
            total += checked_pow(bu, k - j).unwrap() * checked_pow(au, j).unwrap();
            seg_offsets.push(total);
        }
        IndexView {
            r: k,
            a: self.a,
            b: self.b,
            seg_offsets,
            enc_a: self.enc_a.clone(),
            enc_b: self.enc_b.clone(),
            dec: self.dec.clone(),
        }
    }

    /// The recursion depth `r` of the viewed graph.
    pub fn r(&self) -> u32 {
        self.r
    }

    /// `a = n₀²`.
    pub fn a(&self) -> usize {
        self.a
    }

    /// `b`: multiplications per recursion step.
    pub fn b(&self) -> usize {
        self.b
    }

    /// Total vertex count of `G_r`.
    pub fn n_vertices(&self) -> u32 {
        // audit: safe — seg_offsets is built with 3(r+1)+1 entries, never empty
        *self.seg_offsets.last().unwrap() as u32
    }

    fn seg_index(&self, layer: Layer, level: u32) -> usize {
        let l = match layer {
            Layer::EncA => 0,
            Layer::EncB => 1,
            Layer::Dec => 2,
        };
        l * (self.r as usize + 1) + level as usize
    }

    /// `a^{entry_len}` — the entry-suffix width of segment `(layer, level)`.
    pub fn entry_width(&self, layer: Layer, level: u32) -> u64 {
        let suffix_len = match layer {
            Layer::EncA | Layer::EncB => self.r - level,
            Layer::Dec => level,
        };
        // audit: safe — cannot overflow: bounded by a segment size already checked in new()
        checked_pow(self.a as u64, suffix_len).unwrap()
    }

    /// The dense id of a structured address, or `None` if out of range.
    pub fn id(&self, v: VertexRef) -> Option<u32> {
        if v.level > self.r {
            return None;
        }
        let si = self.seg_index(v.layer, v.level);
        let width = self.entry_width(v.layer, v.level);
        // audit: safe — si = seg_index(..) < 3(r+1); the table has 3(r+1)+1 offsets
        let seg_size = self.seg_offsets[si + 1] - self.seg_offsets[si];
        if v.entry >= width {
            return None;
        }
        let local = v.mul.checked_mul(width)?.checked_add(v.entry)?;
        if local >= seg_size {
            return None;
        }
        Some((self.seg_offsets[si] + local) as u32) // audit: safe — si bounded as above
    }

    /// The structured address of a dense id, or `None` if out of range.
    pub fn vref(&self, id: u32) -> Option<VertexRef> {
        let id = id as u64;
        // audit: safe — offsets never empty
        if id >= *self.seg_offsets.last().unwrap() {
            return None;
        }
        // 3(r+1) segments: a linear scan is fine at certificate scales.
        // audit: safe — seg_offsets[0] = 0 ≤ id, so some position matches
        let si = self.seg_offsets.iter().rposition(|&off| off <= id).unwrap();
        let levels = self.r as usize + 1;
        let (layer, level) = match si / levels {
            0 => (Layer::EncA, si % levels),
            1 => (Layer::EncB, si % levels),
            _ => (Layer::Dec, si % levels),
        };
        let width = self.entry_width(layer, level as u32);
        let local = id - self.seg_offsets[si]; // audit: safe — si is from rposition over this table
        Some(VertexRef {
            layer,
            level: level as u32,
            mul: local / width,
            entry: local % width,
        })
    }

    fn enc_rows(&self, layer: Layer) -> &RowTable {
        match layer {
            Layer::EncA => &self.enc_a,
            Layer::EncB => &self.enc_b,
            // audit: safe — callers match on the encoding layers before calling
            Layer::Dec => unreachable!("enc_rows is only called for encoding layers"),
        }
    }

    /// Predecessors of a structured address, pushed in dense-id order.
    fn preds_of(&self, v: VertexRef, push: &mut dyn FnMut(u32)) {
        match v.layer {
            Layer::EncA | Layer::EncB => {
                if v.level == 0 {
                    return;
                }
                // Parent at level t-1 drops the mul's least-significant
                // digit τ and gains the encoded column as the entry's
                // most-significant digit.
                let tau = (v.mul % self.b as u64) as usize;
                let m_parent = v.mul / self.b as u64;
                let width = self.entry_width(v.layer, v.level);
                // audit: safe — tau = mul % b < b, the encoding matrices' row count
                for &x in &self.enc_rows(v.layer).cols[tau] {
                    let e_parent = (x as u64) * width + v.entry;
                    push(
                        self.id(VertexRef {
                            layer: v.layer,
                            level: v.level - 1,
                            mul: m_parent,
                            entry: e_parent,
                        })
                        // audit: safe — parent address is derived from a valid child address
                        .expect("derived parent address is in range"),
                    );
                }
            }
            Layer::Dec => {
                if v.level == 0 {
                    // Product vertex: the two rank-r encoding combinations.
                    for layer in [Layer::EncA, Layer::EncB] {
                        push(
                            self.id(VertexRef {
                                layer,
                                level: self.r,
                                mul: v.mul,
                                entry: 0,
                            })
                            // audit: safe — (level r, mul, entry 0) exists for every product vertex
                            .expect("rank-r encoding address is in range"),
                        );
                    }
                } else {
                    let width = self.entry_width(Layer::Dec, v.level - 1);
                    let upsilon = (v.entry / width) as usize;
                    let e_rest = v.entry % width;
                    // audit: safe — upsilon = entry / width < a, the dec row count
                    for &tau in &self.dec.cols[upsilon] {
                        let m_parent = v.mul * self.b as u64 + tau as u64;
                        push(
                            self.id(VertexRef {
                                layer: Layer::Dec,
                                level: v.level - 1,
                                mul: m_parent,
                                entry: e_rest,
                            })
                            // audit: safe — parent address is derived from a valid child address
                            .expect("derived parent address is in range"),
                        );
                    }
                }
            }
        }
    }

    /// Successors of a structured address, pushed in dense-id order —
    /// the inverse of [`IndexView::preds_of`] through the column→row
    /// transposes. Matches the builder's successor CSR exactly: within one
    /// target segment, ascending `τ`/`υ` means ascending dense id.
    fn succs_of(&self, v: VertexRef, push: &mut dyn FnMut(u32)) {
        match v.layer {
            Layer::EncA | Layer::EncB => {
                if v.level == self.r {
                    // Rank-r combination feeds exactly its product vertex.
                    push(
                        self.id(VertexRef {
                            layer: Layer::Dec,
                            level: 0,
                            mul: v.mul,
                            entry: 0,
                        })
                        .expect("product address is in range"),
                    );
                    return;
                }
                // Child at level t+1 consumes this vertex as encoded column
                // x (the entry's most-significant digit) of every row τ
                // whose encoding touches x.
                let width = self.entry_width(v.layer, v.level + 1);
                let x = (v.entry / width) as usize;
                let e_rest = v.entry % width;
                for &tau in &self.enc_rows(v.layer).rows_of_col[x] {
                    push(
                        self.id(VertexRef {
                            layer: v.layer,
                            level: v.level + 1,
                            mul: v.mul * self.b as u64 + tau as u64,
                            entry: e_rest,
                        })
                        .expect("derived child address is in range"),
                    );
                }
            }
            Layer::Dec => {
                if v.level == self.r {
                    return; // outputs have no successors
                }
                // Child at level k+1 drops the mul's least-significant digit
                // τ and gains decode row υ as the entry's most-significant
                // digit, for every υ whose decode row reads column τ.
                let tau = (v.mul % self.b as u64) as usize;
                let m_child = v.mul / self.b as u64;
                let width = self.entry_width(Layer::Dec, v.level);
                for &upsilon in &self.dec.rows_of_col[tau] {
                    push(
                        self.id(VertexRef {
                            layer: Layer::Dec,
                            level: v.level + 1,
                            mul: m_child,
                            entry: (upsilon as u64) * width + v.entry,
                        })
                        .expect("derived child address is in range"),
                    );
                }
            }
        }
    }

    /// Appends the predecessors of `id` (dense ids) to `out`. Returns
    /// `false` if `id` is out of range. Encoding level-0 vertices (the
    /// inputs) have no predecessors.
    pub fn preds_into(&self, id: u32, out: &mut Vec<u32>) -> bool {
        let Some(v) = self.vref(id) else {
            return false;
        };
        self.preds_of(v, &mut |p| out.push(p));
        true
    }

    /// Appends the successors of `id` (dense ids) to `out`. Returns `false`
    /// if `id` is out of range. Outputs have no successors.
    pub fn succs_into(&self, id: u32, out: &mut Vec<u32>) -> bool {
        let Some(v) = self.vref(id) else {
            return false;
        };
        self.succs_of(v, &mut |s| out.push(s));
        true
    }

    /// Whether `(u, v)` is an edge of `G_r` in either direction.
    pub fn is_edge(&self, u: u32, v: u32) -> bool {
        let mut preds = Vec::new();
        if !self.preds_into(v, &mut preds) {
            return false;
        }
        if preds.contains(&u) {
            return true;
        }
        preds.clear();
        self.preds_into(u, &mut preds) && preds.contains(&v)
    }

    /// Whether `id` is an input (encoding level 0 of either side).
    pub fn is_input(&self, id: u32) -> bool {
        let id = id as u64;
        let enc_b0 = self.seg_index(Layer::EncB, 0);
        let a_side = self.seg_offsets[1]; // audit: safe — the table always has ≥ 2 entries
                                          // audit: safe — enc_b0 + 1 ≤ 3(r+1), within the 3(r+1)+1 offsets
        let (lo, hi) = (self.seg_offsets[enc_b0], self.seg_offsets[enc_b0 + 1]);
        id < a_side || (lo..hi).contains(&id)
    }

    /// Whether `id` is an output (decoding level `r`).
    pub fn is_output(&self, id: u32) -> bool {
        let last = self.seg_offsets.len() - 2;
        // audit: safe — last + 1 is the final index of the offsets table
        (self.seg_offsets[last]..self.seg_offsets[last + 1]).contains(&(id as u64))
    }

    /// Number of inputs, `2a^r`.
    pub fn inputs_count(&self) -> u64 {
        2 * self.entry_width(Layer::EncA, 0)
    }

    /// Dense ordinal of an input among all `2a^r` inputs (`A` side first),
    /// or `None` if `id` is not an input.
    pub fn input_ord(&self, id: u32) -> Option<u64> {
        let idu = id as u64;
        let a_r = self.seg_offsets[1]; // audit: safe — the table always has ≥ 2 entries
        if idu < a_r {
            return Some(idu);
        }
        let enc_b0 = self.seg_index(Layer::EncB, 0);
        // audit: safe — enc_b0 + 1 ≤ 3(r+1), within the 3(r+1)+1 offsets
        let (lo, hi) = (self.seg_offsets[enc_b0], self.seg_offsets[enc_b0 + 1]);
        (lo..hi).contains(&idu).then(|| a_r + (idu - lo))
    }

    /// Dense ordinal of an output among the `a^r` outputs, or `None` if
    /// `id` is not an output.
    pub fn output_ord(&self, id: u32) -> Option<u64> {
        let last = self.seg_offsets.len() - 2;
        // audit: safe — last + 1 is the final index of the offsets table
        let (lo, hi) = (self.seg_offsets[last], self.seg_offsets[last + 1]);
        (lo..hi).contains(&(id as u64)).then(|| id as u64 - lo)
    }

    /// Number of outputs, `a^r`.
    pub fn outputs_count(&self) -> u64 {
        self.entry_width(Layer::Dec, self.r)
    }

    /// Inputs with at least one successor: `(used columns of enc) · a^{r-1}`
    /// per side. Every such input must be loaded by any complete schedule.
    pub fn used_inputs(&self) -> u64 {
        let per_entry = self.entry_width(Layer::EncA, 1);
        (self.enc_a.used_cols() + self.enc_b.used_cols()) * per_entry
    }

    /// Maximum in-degree over `G_r` (products always have 2; combination
    /// vertices have their row's nonzero count).
    pub fn max_indegree(&self) -> usize {
        [
            2,
            self.enc_a.max_row_len(),
            self.enc_b.max_row_len(),
            self.dec.max_row_len(),
        ]
        .into_iter()
        .max()
        .unwrap() // audit: safe — max of a nonempty array literal
    }

    /// If `id` is a copy (its generating row is trivial), its single
    /// predecessor; `None` otherwise (including out of range).
    pub fn copy_parent_of(&self, id: u32) -> Option<u32> {
        let v = self.vref(id)?;
        let trivial = match v.layer {
            Layer::EncA | Layer::EncB => {
                // audit: safe — mul % b < b, the per-row triviality table size
                v.level > 0 && self.enc_rows(v.layer).trivial[(v.mul % self.b as u64) as usize]
            }
            Layer::Dec => {
                v.level > 0 && {
                    let width = self.entry_width(Layer::Dec, v.level - 1);
                    // audit: safe — entry / width < a, the dec row count
                    self.dec.trivial[(v.entry / width) as usize]
                }
            }
        };
        if !trivial {
            return None;
        }
        let mut parent = None;
        self.preds_of(v, &mut |p| {
            debug_assert!(parent.is_none(), "a trivial row has exactly one nonzero");
            parent = Some(p);
        });
        parent
    }

    /// The copy grouping as a flat root table (`roots[v]` = representative
    /// of `v`'s group), derived from row triviality: a vertex merges with
    /// its sole predecessor iff its encoding/decoding row has exactly one
    /// nonzero coefficient, equal to 1.
    pub fn copy_roots(&self) -> Vec<u32> {
        let n = self.n_vertices();
        let mut uf = UnionFind::new(n as usize);
        for id in 0..n {
            if let Some(p) = self.copy_parent_of(id) {
                uf.union(id, p);
            }
        }
        uf.roots()
    }

    /// The Fact-1 lift: maps vertex `v_local` of the standalone `G_k`
    /// (viewed by `local`) into the copy of `G_k` inside this `G_r`
    /// selected by multiplication `prefix ∈ [b^{r-k}]`. Returns `None` when
    /// the views are incompatible or anything is out of range.
    pub fn lift(&self, local: &IndexView, prefix: u64, v_local: u32) -> Option<u32> {
        self.lift_from(local, prefix, VertexId(v_local))
            .map(|v| v.0)
    }
}

impl CdagView for IndexView {
    fn r(&self) -> u32 {
        self.r
    }
    fn a(&self) -> usize {
        self.a
    }
    fn b(&self) -> usize {
        self.b
    }
    fn n_vertices(&self) -> usize {
        IndexView::n_vertices(self) as usize
    }
    fn try_id(&self, v: VertexRef) -> Option<VertexId> {
        IndexView::id(self, v).map(VertexId)
    }
    fn try_vref(&self, v: VertexId) -> Option<VertexRef> {
        IndexView::vref(self, v.0)
    }
    fn entry_width(&self, layer: Layer, level: u32) -> u64 {
        IndexView::entry_width(self, layer, level)
    }
    fn preds_into(&self, v: VertexId, out: &mut Vec<VertexId>) -> bool {
        let Some(vr) = IndexView::vref(self, v.0) else {
            return false;
        };
        self.preds_of(vr, &mut |p| out.push(VertexId(p)));
        true
    }
    fn succs_into(&self, v: VertexId, out: &mut Vec<VertexId>) -> bool {
        let Some(vr) = IndexView::vref(self, v.0) else {
            return false;
        };
        self.succs_of(vr, &mut |s| out.push(VertexId(s)));
        true
    }
    fn is_input(&self, v: VertexId) -> bool {
        IndexView::is_input(self, v.0)
    }
    fn is_output(&self, v: VertexId) -> bool {
        IndexView::is_output(self, v.0)
    }
    fn rank_of(&self, v: VertexId) -> Option<u32> {
        let vr = IndexView::vref(self, v.0)?;
        Some(match vr.layer {
            Layer::EncA | Layer::EncB => vr.level,
            Layer::Dec => self.r + 1 + vr.level,
        })
    }
    fn max_indegree(&self) -> usize {
        IndexView::max_indegree(self)
    }
    fn copy_parent(&self, v: VertexId) -> Option<VertexId> {
        self.copy_parent_of(v.0).map(VertexId)
    }
}

/// Re-checks the matrix-multiplication tensor identity
/// `Σ_m dec[y][m]·enc_a[m][x]·enc_b[m][z] = T(x, z, y)` directly on raw
/// coefficients (shapes must already be consistent — build an
/// [`IndexView`] first). Returns the first violated triple.
pub fn check_tensor(
    n0: usize,
    enc_a: &Matrix<Rational>,
    enc_b: &Matrix<Rational>,
    dec: &Matrix<Rational>,
) -> Result<(), String> {
    let b = enc_a.rows();
    for i in 0..n0 {
        for k in 0..n0 {
            for k2 in 0..n0 {
                for j in 0..n0 {
                    for i2 in 0..n0 {
                        for j2 in 0..n0 {
                            let x = i * n0 + k;
                            let z = k2 * n0 + j;
                            let y = i2 * n0 + j2;
                            let got: Rational = (0..b)
                                // audit: safe — indices range over the documented shape precondition
                                .map(|m| dec[(y, m)] * enc_a[(m, x)] * enc_b[(m, z)])
                                .sum();
                            let want = if i == i2 && j == j2 && k == k2 {
                                Rational::ONE
                            } else {
                                Rational::ZERO
                            };
                            if got != want {
                                return Err(format!(
                                    "tensor mismatch at a({i},{k})·b({k2},{j})→c({i2},{j2}): \
                                     got {got}, want {want}"
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_cdag;

    fn view_of(g: &BaseGraph, r: u32) -> IndexView {
        IndexView::from_base(g, r)
    }

    fn check_against_builder(g: &BaseGraph, r: u32) {
        let view = view_of(g, r);
        let cdag = build_cdag(g, r);
        assert_eq!(view.n_vertices() as usize, Cdag::n_vertices(&cdag));
        let mut preds = Vec::new();
        let mut succs = Vec::new();
        for v in cdag.vertices() {
            preds.clear();
            succs.clear();
            assert!(view.preds_into(v.0, &mut preds));
            assert!(view.succs_into(v.0, &mut succs));
            let want: Vec<u32> = cdag.preds(v).iter().map(|p| p.0).collect();
            assert_eq!(preds, want, "preds of {} in {} at r={r}", v.0, g.name());
            let want_s: Vec<u32> = cdag.succs(v).iter().map(|s| s.0).collect();
            assert_eq!(succs, want_s, "succs of {} in {} at r={r}", v.0, g.name());
            assert_eq!(
                view.is_input(v.0),
                cdag.preds(v).is_empty(),
                "input status of {}",
                v.0
            );
            // Round-trip the structured address.
            let vr = view.vref(v.0).unwrap();
            assert_eq!(view.id(vr), Some(v.0));
        }
        assert_eq!(
            (0..view.n_vertices())
                .filter(|&v| view.is_output(v))
                .count() as u64,
            view.outputs_count()
        );
        let max_in = cdag.vertices().map(|v| cdag.preds(v).len()).max().unwrap();
        assert_eq!(view.max_indegree(), max_in);
        // The Cdag's own trait impl agrees with the closed form.
        let mut tp = Vec::new();
        for v in cdag.vertices() {
            tp.clear();
            assert!(CdagView::succs_into(&cdag, v, &mut tp));
            let got: Vec<u32> = tp.iter().map(|s| s.0).collect();
            succs.clear();
            view.succs_into(v.0, &mut succs);
            assert_eq!(got, succs);
            assert_eq!(
                CdagView::copy_parent(&cdag, v).map(|p| p.0),
                view.copy_parent_of(v.0),
                "copy parent of {}",
                v.0
            );
        }
    }

    fn tiny_base(name: &str) -> BaseGraph {
        // classical 2×2: every row trivial, dense copy structure.
        let n0 = 2;
        let mut enc_a = Matrix::zeros(8, 4);
        let mut enc_b = Matrix::zeros(8, 4);
        let mut dec = Matrix::zeros(4, 8);
        let mut m = 0;
        for i in 0..n0 {
            for j in 0..n0 {
                for k in 0..n0 {
                    enc_a[(m, i * n0 + k)] = Rational::ONE;
                    enc_b[(m, k * n0 + j)] = Rational::ONE;
                    dec[(i * n0 + j, m)] = Rational::ONE;
                    m += 1;
                }
            }
        }
        BaseGraph::new(name, n0, enc_a, enc_b, dec)
    }

    #[test]
    fn matches_builder_classical2() {
        let g = tiny_base("classical2");
        check_against_builder(&g, 1);
        check_against_builder(&g, 2);
    }

    #[test]
    fn count_vertices_matches_view() {
        let g = tiny_base("classical2");
        for r in 1..=3 {
            let view = view_of(&g, r);
            assert_eq!(
                count_vertices(g.a() as u64, g.b() as u64, r),
                Some(view.n_vertices() as u64)
            );
        }
    }

    #[test]
    fn rejects_bad_shapes_and_zero_r() {
        let g = tiny_base("classical2");
        assert!(IndexView::new(g.n0(), g.enc(Side::A), g.enc(Side::B), g.dec(), 0).is_err());
        // enc shapes no longer match n0².
        assert!(IndexView::new(3, g.enc(Side::A), g.enc(Side::B), g.dec(), 2).is_err());
    }

    #[test]
    fn out_of_range_ids_are_none_not_panics() {
        let g = tiny_base("classical2");
        let view = view_of(&g, 2);
        let n = view.n_vertices();
        assert!(view.vref(n).is_none());
        assert!(view.vref(u32::MAX).is_none());
        let mut preds = Vec::new();
        assert!(!view.preds_into(n, &mut preds));
        assert!(!view.succs_into(n, &mut preds));
        assert!(!view.is_edge(n, 0));
        assert!(view.copy_parent_of(n).is_none());
    }

    #[test]
    fn lift_lands_in_subcomputation_copies() {
        // Cross-check the closed-form lift against crate::fact1.
        let g = tiny_base("classical2");
        let (r, k) = (3u32, 1u32);
        let rv = view_of(&g, r);
        let kv = view_of(&g, k);
        let gr = build_cdag(&g, r);
        let gk = build_cdag(&g, k);
        let subs = crate::fact1::Subcomputation::count(&gr, k);
        assert_eq!(subs, checked_pow(g.b() as u64, r - k).unwrap());
        for prefix in [0, 1, subs - 1] {
            let sub = crate::fact1::Subcomputation::new(&gr, k, prefix);
            for v in gk.vertices() {
                let want = sub.local_to_global(gk.vref(v));
                let got = rv.lift(&kv, prefix, v.0);
                assert_eq!(got, Some(want.0), "lift of {} at prefix {prefix}", v.0);
                // The generic lift over the explicit pair agrees.
                assert_eq!(gr.lift_from(&gk, prefix, v), Some(want));
            }
        }
        // Out-of-range prefix must be rejected.
        assert!(rv.lift(&kv, subs, 0).is_none());
    }

    #[test]
    fn subview_matches_fresh_view() {
        let g = tiny_base("classical2");
        let rv = view_of(&g, 3);
        let sub = rv.subview(2);
        let fresh = view_of(&g, 2);
        assert_eq!(sub.n_vertices(), fresh.n_vertices());
        let mut a = Vec::new();
        let mut b = Vec::new();
        for id in 0..sub.n_vertices() {
            a.clear();
            b.clear();
            sub.preds_into(id, &mut a);
            fresh.preds_into(id, &mut b);
            assert_eq!(a, b, "preds of {id}");
        }
    }

    #[test]
    fn copy_roots_match_materialized_meta_grouping() {
        let g = tiny_base("classical2");
        let r = 2;
        let view = view_of(&g, r);
        let roots = view.copy_roots();
        let cdag = build_cdag(&g, r);
        let meta = crate::MetaVertices::compute(&cdag);
        for v in cdag.vertices() {
            for w in cdag.vertices() {
                let same_meta = meta.meta_of(v) == meta.meta_of(w);
                let same_root = roots[v.idx()] == roots[w.idx()];
                assert_eq!(same_meta, same_root, "grouping of ({}, {})", v.0, w.0);
            }
        }
        // And the trait's default table agrees on both implementations.
        assert_eq!(roots, CdagView::copy_roots_table(&view));
        assert_eq!(roots, CdagView::copy_roots_table(&cdag));
    }

    #[test]
    fn used_inputs_counts_columns_with_successors() {
        let g = tiny_base("classical2");
        let view = view_of(&g, 2);
        let cdag = build_cdag(&g, 2);
        let used = cdag
            .vertices()
            .filter(|&v| cdag.preds(v).is_empty() && !cdag.succs(v).is_empty())
            .count() as u64;
        assert_eq!(view.used_inputs(), used);
    }

    #[test]
    fn tensor_check_accepts_real_and_rejects_corrupt() {
        let g = tiny_base("classical2");
        assert!(check_tensor(g.n0(), g.enc(Side::A), g.enc(Side::B), g.dec()).is_ok());
        let mut dec = g.dec().clone();
        let flipped = if dec[(0, 0)].is_zero() {
            Rational::ONE
        } else {
            Rational::ZERO
        };
        dec[(0, 0)] = flipped;
        assert!(check_tensor(g.n0(), g.enc(Side::A), g.enc(Side::B), &dec).is_err());
    }
}
