//! Value-equivalence classes: vertices holding the *same symbolic value*.
//!
//! Meta-vertices ([`crate::meta`]) group copies — syntactic equality. When
//! the single-use assumption is violated, two distinct nontrivial
//! combination vertices can compute the same linear combination without
//! either being a copy; the paper's Section 8 extension reasons about
//! exactly these *value classes* ("paths may jump to other vertices on the
//! same rank … that have the same membership in S"). This module computes
//! them exactly, by symbolic evaluation: every encoding vertex's value is
//! a linear functional over the `2a^r` inputs; products and decoding
//! vertices are polynomial and are grouped with their meta-vertex (copies)
//! only — correct algorithms cannot duplicate them (Lemma 2), and the
//! synthetic single-use violations the workspace studies duplicate
//! encodings and products, which we detect via identical operand classes.

use crate::graph::{Cdag, Layer, VertexId};
use crate::meta::MetaVertices;
use mmio_matrix::Rational;
use std::collections::HashMap;

/// Identifier of a value class: the smallest vertex id holding the value.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClassId(pub u32);

/// The value-class partition of a CDAG.
pub struct ValueClasses {
    class: Vec<u32>,
    members: HashMap<u32, Vec<VertexId>>,
}

impl ValueClasses {
    /// Computes value classes by exact symbolic evaluation of encoding
    /// functionals (sparse, over the graph's inputs), product operand
    /// pairs, and decoding-side copies.
    ///
    /// Cost is `O(|V| · nnz(functional))`; intended for the analysis sizes
    /// (`k ≤ 4`), matching the rest of the lower-bound machinery.
    pub fn compute(g: &Cdag) -> ValueClasses {
        let n = g.n_vertices();
        let meta = MetaVertices::compute(g);
        // Canonical functional per encoding vertex: sorted sparse vector
        // over input ids.
        let mut functional: Vec<Option<Vec<(u32, Rational)>>> = vec![None; n];
        let mut key_to_class: HashMap<Vec<(u32, Rational)>, u32> = HashMap::new();
        let mut class: Vec<u32> = (0..n as u32).collect();

        for v in g.vertices() {
            let vr = g.vref(v);
            match vr.layer {
                Layer::EncA | Layer::EncB => {
                    let func = if g.is_input(v) {
                        vec![(v.0, Rational::ONE)]
                    } else {
                        let mut acc: HashMap<u32, Rational> = HashMap::new();
                        for (&p, &c) in g.preds(v).iter().zip(g.pred_coeffs(v)) {
                            let pf = functional[p.idx()]
                                .as_ref()
                                .expect("encoding preds precede in id order");
                            for &(input, coeff) in pf {
                                let e = acc.entry(input).or_insert(Rational::ZERO);
                                *e += c * coeff;
                            }
                        }
                        let mut func: Vec<(u32, Rational)> =
                            acc.into_iter().filter(|(_, c)| !c.is_zero()).collect();
                        func.sort_unstable_by_key(|&(i, _)| i);
                        func
                    };
                    let id = *key_to_class.entry(func.clone()).or_insert(v.0);
                    class[v.idx()] = id;
                    functional[v.idx()] = Some(func);
                }
                Layer::Dec => {
                    if vr.level == 0 {
                        // Product: value determined by its operand classes
                        // (unordered pair would be for commutative scalars;
                        // keep ordered — A-side × B-side).
                        let ps = g.preds(v);
                        debug_assert_eq!(ps.len(), 2);
                        let key = vec![
                            (class[ps[0].idx()], Rational::ONE),
                            (class[ps[1].idx()], Rational::ZERO),
                        ];
                        // Tag product keys distinctly from functionals by
                        // using the zero-coefficient sentinel on the second
                        // operand (functionals never carry zero coeffs).
                        let id = *key_to_class.entry(key).or_insert(v.0);
                        class[v.idx()] = id;
                    } else {
                        // Decoding vertices: group with their meta root
                        // (copies share the root's class; non-copies keep
                        // their own id, already assigned at declaration).
                        let root = meta.root_vertex(meta.meta_of(v));
                        class[v.idx()] = class[root.idx()];
                    }
                }
            }
        }

        let mut members: HashMap<u32, Vec<VertexId>> = HashMap::new();
        for v in g.vertices() {
            members.entry(class[v.idx()]).or_default().push(v);
        }
        ValueClasses { class, members }
    }

    /// The class of a vertex.
    pub fn class_of(&self, v: VertexId) -> ClassId {
        ClassId(self.class[v.idx()])
    }

    /// All members of `v`'s class (including `v`).
    pub fn members_of(&self, v: VertexId) -> &[VertexId] {
        &self.members[&self.class[v.idx()]]
    }

    /// Number of distinct classes.
    pub fn count(&self) -> usize {
        self.members.len()
    }

    /// Whether any class has more members than its meta-vertex would —
    /// i.e. the graph computes some value in two places that are *not*
    /// copies (a single-use violation's footprint).
    pub fn has_non_copy_duplicates(&self, g: &Cdag) -> bool {
        let meta = MetaVertices::compute(g);
        g.vertices()
            .any(|v| self.members_of(v).len() > meta.size_of(v))
    }

    /// Value classes adjacent to the class-closure of `set` but not in it —
    /// the generalized `δ'` of the paper's Section 8.
    pub fn class_boundary(&self, g: &Cdag, set: &[VertexId]) -> Vec<ClassId> {
        let mut in_set = vec![false; g.n_vertices()];
        for &v in set {
            for &w in self.members_of(v) {
                in_set[w.idx()] = true;
            }
        }
        let mut seen = std::collections::HashSet::new();
        for v in g.vertices() {
            if !in_set[v.idx()] {
                continue;
            }
            for &w in g.preds(v).iter().chain(g.succs(v)) {
                if !in_set[w.idx()] {
                    seen.insert(self.class_of(w));
                }
            }
        }
        let mut out: Vec<ClassId> = seen.into_iter().collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_cdag;
    use crate::BaseGraph;
    use mmio_matrix::Matrix;

    fn r(x: i64) -> Rational {
        Rational::integer(x)
    }

    /// A 1×1 base graph with two products computing the *same* nontrivial
    /// combination (2a)·(3b), decoder averaging them: a single-use
    /// violation in miniature.
    fn duplicated() -> BaseGraph {
        BaseGraph::new(
            "dup11",
            1,
            Matrix::from_vec(2, 1, vec![r(2), r(2)]),
            Matrix::from_vec(2, 1, vec![r(3), r(3)]),
            Matrix::from_vec(1, 2, vec![Rational::new(1, 12), Rational::new(1, 12)]),
        )
    }

    #[test]
    fn duplicated_combinations_share_a_class() {
        let g = build_cdag(&duplicated(), 1);
        let vc = ValueClasses::compute(&g);
        // The two EncA level-1 vertices hold the same functional 2a.
        let vs: Vec<VertexId> = g.segment(Layer::EncA, 1).collect();
        assert_eq!(vc.class_of(vs[0]), vc.class_of(vs[1]));
        // And they are NOT copies of each other (nontrivial rows).
        assert!(vc.has_non_copy_duplicates(&g));
        // The two products also coincide in value.
        let ps: Vec<VertexId> = g.products().collect();
        assert_eq!(vc.class_of(ps[0]), vc.class_of(ps[1]));
    }

    #[test]
    fn strassen_has_no_non_copy_duplicates() {
        let g = build_cdag(&crate_test_strassen(), 2);
        let vc = ValueClasses::compute(&g);
        assert!(!vc.has_non_copy_duplicates(&g));
    }

    /// Strassen's coefficients inline (mmio-algos depends on this crate,
    /// so tests here rebuild the base graph directly).
    fn crate_test_strassen() -> BaseGraph {
        let rows_a: [[i64; 4]; 7] = [
            [1, 0, 0, 1],
            [0, 0, 1, 1],
            [1, 0, 0, 0],
            [0, 0, 0, 1],
            [1, 1, 0, 0],
            [-1, 0, 1, 0],
            [0, 1, 0, -1],
        ];
        let rows_b: [[i64; 4]; 7] = [
            [1, 0, 0, 1],
            [1, 0, 0, 0],
            [0, 1, 0, -1],
            [-1, 0, 1, 0],
            [0, 0, 0, 1],
            [1, 1, 0, 0],
            [0, 0, 1, 1],
        ];
        let dec: [[i64; 7]; 4] = [
            [1, 0, 0, 1, -1, 0, 1],
            [0, 0, 1, 0, 1, 0, 0],
            [0, 1, 0, 1, 0, 0, 0],
            [1, -1, 1, 0, 0, 1, 0],
        ];
        BaseGraph::new(
            "strassen",
            2,
            Matrix::from_fn(7, 4, |m, x| r(rows_a[m][x])),
            Matrix::from_fn(7, 4, |m, x| r(rows_b[m][x])),
            Matrix::from_fn(4, 7, |y, m| r(dec[y][m])),
        )
    }

    #[test]
    fn classes_refine_into_metas() {
        // Every meta-vertex is contained in one value class (copies hold
        // equal values), so #classes ≤ #metas.
        let g = build_cdag(&crate_test_strassen(), 2);
        let vc = ValueClasses::compute(&g);
        let meta = MetaVertices::compute(&g);
        for v in g.vertices() {
            for w in meta.members_of(v) {
                assert_eq!(vc.class_of(w), vc.class_of(v));
            }
        }
        assert!(vc.count() <= meta.count(&g));
    }

    #[test]
    fn class_boundary_of_everything_is_empty() {
        let g = build_cdag(&duplicated(), 1);
        let vc = ValueClasses::compute(&g);
        let all: Vec<VertexId> = g.vertices().collect();
        assert!(vc.class_boundary(&g, &all).is_empty());
    }
}
