//! # mmio-cdag
//!
//! Computation DAGs (CDAGs) of Strassen-like matrix multiplication
//! algorithms, following the definitions of *Matrix Multiplication
//! I/O-Complexity by Path Routing* (Scott, Holtz, Schwartz; SPAA 2015),
//! Section 3.
//!
//! A *Strassen-like algorithm* for `n₀×n₀` matrices is given by a
//! [`BaseGraph`]: two encoding maps (linear combinations of the entries of
//! `A` and of `B`), a multiplication layer with `b` product vertices, and a
//! decoding map producing the entries of `C`. For `n₀^r`-sided inputs the
//! algorithm recurses on blocks; the resulting CDAG `G_r` is a *ranked*
//! graph ([`Cdag`]) with
//!
//! - encoding ranks `0..=r` per side (`Σ_t b^t·a^{r-t}` vertices each,
//!   `a = n₀²`),
//! - the multiplication layer between encoding rank `r` and decoding rank 0
//!   (`b^r` product vertices), and
//! - decoding ranks `0..=r` (`Σ_k b^{r-k}·a^k` vertices), outputs on
//!   decoding rank `r`.
//!
//! The crate implements the structural facts the paper's proof rests on:
//!
//! - **Fact 1** ([`fact1`]): the middle `2(k+1)` ranks of `G_r` decompose
//!   into `b^{r-k}` vertex-disjoint copies of `G_k`.
//! - **Meta-vertices** ([`meta`]): maximal groups of vertices holding the
//!   same value, arising from copying (trivial linear combinations); chains
//!   under single copying, upward-branching trees under multiple copying
//!   (paper Figure 2).
//! - **Connectivity** ([`connectivity`]): whether the base graph's encoding
//!   and decoding graphs are individually connected — the property that
//!   breaks the earlier edge-expansion proof and motivates path routing.
//!
//! ```
//! use mmio_cdag::{BaseGraph, build::build_cdag};
//! use mmio_matrix::{Matrix, Rational};
//!
//! // The trivial 1×1 algorithm c = a·b, recursed twice.
//! let one = Matrix::from_vec(1, 1, vec![Rational::ONE]);
//! let base = BaseGraph::new("unit", 1, one.clone(), one.clone(), one);
//! assert!(base.verify_correctness().is_ok());
//! let g = build_cdag(&base, 2);
//! assert_eq!(g.n_vertices(), 9); // 3 per encoding side + product chain
//! assert_eq!(g.outputs().count(), 1);
//! ```

// Index arithmetic and adjacency access sit on every hot path of the
// routing engine; performance lints are errors here, not suggestions.
#![deny(clippy::perf)]
#![forbid(unsafe_code)]

pub mod base;
pub mod build;
pub mod connectivity;
pub mod csr;
pub mod dot;
pub mod fact1;
pub mod graph;
pub mod hits;
pub mod index;
pub mod iso;
pub mod meta;
pub mod serialize;
pub mod stats;
pub mod traversal;
pub mod values;
pub mod view;

pub use base::BaseGraph;
pub use csr::Csr;
pub use graph::{Cdag, Layer, VertexId, VertexRef};
pub use meta::MetaVertices;
pub use view::{CdagView, ExplicitView, IndexView, ViewError};
