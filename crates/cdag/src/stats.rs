//! Structural profiles of CDAGs: per-rank vertex counts, degree
//! distributions, copying statistics. Used by examples, experiments, and
//! as cross-checks against the closed-form counts.

use crate::graph::Cdag;
use crate::meta::MetaVertices;
use serde::Serialize;

/// A structural profile of one CDAG.
#[derive(Clone, Debug, Serialize)]
pub struct CdagProfile {
    /// Base-graph name.
    pub base: String,
    /// Recursion depth.
    pub r: u32,
    /// Matrix side.
    pub n: u64,
    /// Total vertices.
    pub vertices: usize,
    /// Total directed edges.
    pub edges: usize,
    /// Vertex count per global rank `0..=2r+1`.
    pub rank_sizes: Vec<u64>,
    /// Maximum in-degree (bounds the minimum feasible cache size − 1).
    pub max_in_degree: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Number of meta-vertices (distinct values).
    pub meta_vertices: usize,
    /// Number of duplicated vertices (members of non-singleton metas).
    pub duplicated_vertices: usize,
    /// Largest meta-vertex size.
    pub max_meta_size: usize,
}

/// Computes the profile of `g`.
pub fn profile(g: &Cdag) -> CdagProfile {
    let max_rank = 2 * g.r() + 1;
    let mut rank_sizes = vec![0u64; max_rank as usize + 1];
    let mut max_in = 0;
    let mut max_out = 0;
    for v in g.vertices() {
        rank_sizes[g.rank(v) as usize] += 1;
        max_in = max_in.max(g.preds(v).len());
        max_out = max_out.max(g.succs(v).len());
    }
    let meta = MetaVertices::compute(g);
    let mut duplicated = 0;
    let mut max_meta = 1;
    for v in g.vertices() {
        if meta.is_duplicated(v) {
            duplicated += 1;
        }
        max_meta = max_meta.max(meta.size_of(v));
    }
    CdagProfile {
        base: g.base().name().to_string(),
        r: g.r(),
        n: g.n(),
        vertices: g.n_vertices(),
        edges: g.n_edges(),
        rank_sizes,
        max_in_degree: max_in,
        max_out_degree: max_out,
        meta_vertices: meta.count(g),
        duplicated_vertices: duplicated,
        max_meta_size: max_meta,
    }
}

/// Closed-form rank size: encoding ranks `t ≤ r` hold `2·b^t·a^{r-t}`
/// vertices (both sides), decoding rank `k` (global rank `r+1+k`) holds
/// `b^{r-k}·a^k`.
pub fn expected_rank_size(g: &Cdag, rank: u32) -> u64 {
    let (a, b, r) = (g.base().a(), g.base().b(), g.r());
    if rank <= r {
        2 * crate::index::pow(b, rank) * crate::index::pow(a, r - rank)
    } else {
        let k = rank - r - 1;
        crate::index::pow(b, r - k) * crate::index::pow(a, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_cdag;
    use mmio_matrix::{Matrix, Rational};

    fn tiny_base() -> crate::BaseGraph {
        let one = Matrix::from_vec(1, 1, vec![Rational::ONE]);
        crate::BaseGraph::new("unit", 1, one.clone(), one.clone(), one)
    }

    #[test]
    fn profile_counts_consistent() {
        let g = build_cdag(&tiny_base(), 2);
        let p = profile(&g);
        assert_eq!(p.vertices, g.n_vertices());
        assert_eq!(p.rank_sizes.iter().sum::<u64>(), g.n_vertices() as u64);
        assert_eq!(p.max_in_degree, 2); // the product vertices
    }

    #[test]
    fn rank_sizes_match_closed_form() {
        let g = build_cdag(&tiny_base(), 3);
        let p = profile(&g);
        for rank in 0..=(2 * g.r() + 1) {
            assert_eq!(
                p.rank_sizes[rank as usize],
                expected_rank_size(&g, rank),
                "rank {rank}"
            );
        }
    }

    #[test]
    fn duplicated_counts() {
        // The unit base graph has all-trivial rows: every encoding vertex
        // above rank 0 is a copy; metas have size 3 on each side chain.
        let g = build_cdag(&tiny_base(), 2);
        let p = profile(&g);
        assert!(p.duplicated_vertices > 0);
        assert!(p.max_meta_size >= 3);
        assert!(p.meta_vertices < p.vertices);
    }
}
