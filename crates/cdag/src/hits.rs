//! Shared hit-counting primitives: a union-find over dense vertex ids and a
//! streaming per-vertex / per-group hit counter.
//!
//! Three independent verifiers count routing hits: the routing engine's own
//! verification (`mmio-core::routing::VertexHitCounter`), the analyzer's
//! certificate audit (`mmio-analyze`'s `RoutingAuditor`), and the portable
//! certificate verifier (`mmio-cert`). They deliberately *derive* their
//! vertex groupings differently (library meta-vertices, edge-coefficient
//! union-find over the materialized graph, closed-form index arithmetic) —
//! that diversity is the point — but the mechanical bookkeeping (group roots,
//! saturating per-path dedup, shard merging) is identical and lives here,
//! once, unit-tested.

/// A union-find (disjoint-set) structure over dense `u32` ids with path
/// compression. Used to group copy chains into meta-vertices.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    /// `n` singleton sets `0..n`.
    pub fn new(n: usize) -> UnionFind {
        UnionFind {
            // audit: safe — documented contract; callers size id spaces within u32
            parent: (0..u32::try_from(n).expect("id space exceeds u32")).collect(),
        }
    }

    /// Number of elements (not sets).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The representative of `v`'s set, compressing the path to the root.
    pub fn find(&mut self, v: u32) -> u32 {
        let mut root = v;
        // audit: safe — contract: v < len; parent entries are valid ids by construction
        while self.parent[root as usize] != root {
            root = self.parent[root as usize]; // audit: safe — parent entries are valid ids
        }
        let mut cur = v;
        // audit: safe — same invariant as the root walk above
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize]; // audit: safe — parent entries are valid ids
            self.parent[cur as usize] = root; // audit: safe — cur walks valid parent entries
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`.
    pub fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra as usize] = rb; // audit: safe — ra is a root returned by find
        }
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Flattens into a root table: `roots[v]` is the representative of `v`.
    /// Counting against a flat table avoids interior mutability in readers.
    pub fn roots(&mut self) -> Vec<u32> {
        (0..self.parent.len() as u32)
            .map(|v| self.find(v))
            .collect()
    }
}

/// Summary of a counted path family.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HitSummary {
    /// Number of paths counted.
    pub paths: u64,
    /// Total path length (vertices, with multiplicity).
    pub total_length: u64,
    /// Maximum hits over all vertices.
    pub max_vertex_hits: u64,
    /// Maximum hits over all groups (0 if groups are not tracked).
    pub max_group_hits: u64,
}

/// Streaming hit counter over `n` dense vertex ids, optionally also counting
/// hits per *group* (meta-vertex): a path hits each group at most once, no
/// matter how many of the group's vertices it traverses — the paper's
/// counting in the proof of Theorem 2.
///
/// The counter is pure bookkeeping: it never checks that paths traverse real
/// edges. Callers validate hops with whatever edge source their trust model
/// prescribes, then feed the path here.
#[derive(Clone, Debug)]
pub struct HitCounter {
    hits: Vec<u64>,
    /// `Some((roots, group_hits))` when group counting is on; `roots[v]` is
    /// the group representative of vertex `v`.
    groups: Option<(Vec<u32>, Vec<u64>)>,
    paths: u64,
    length_sum: u64,
    /// Reusable per-path scratch of touched group roots.
    touched: Vec<u32>,
}

impl HitCounter {
    /// A counter over `n` vertices without group tracking.
    pub fn new(n: usize) -> HitCounter {
        HitCounter {
            hits: vec![0; n],
            groups: None,
            paths: 0,
            length_sum: 0,
            touched: Vec::new(),
        }
    }

    /// A counter over `roots.len()` vertices that also counts group hits;
    /// `roots[v]` must be the group representative of vertex `v` (e.g. from
    /// [`UnionFind::roots`]).
    pub fn with_groups(roots: Vec<u32>) -> HitCounter {
        let n = roots.len();
        HitCounter {
            hits: vec![0; n],
            groups: Some((roots, vec![0; n])),
            paths: 0,
            length_sum: 0,
            touched: Vec::new(),
        }
    }

    /// Whether this counter tracks group hits.
    pub fn tracks_groups(&self) -> bool {
        self.groups.is_some()
    }

    /// Records one path of dense vertex ids. Vertex hits count per
    /// occurrence; each touched group counts once per path.
    pub fn add_path(&mut self, path: impl IntoIterator<Item = u32>) {
        self.paths += 1;
        let touched = &mut self.touched;
        touched.clear();
        let mut len = 0u64;
        for v in path {
            self.hits[v as usize] += 1; // audit: safe — contract: path ids are pre-validated < n
            len += 1;
            if let Some((roots, _)) = &self.groups {
                touched.push(roots[v as usize]); // audit: safe — roots table is sized n
            }
        }
        self.length_sum += len;
        if let Some((_, group_hits)) = &mut self.groups {
            touched.sort_unstable();
            touched.dedup();
            for &root in touched.iter() {
                group_hits[root as usize] += 1; // audit: safe — roots are themselves ids < n
            }
        }
    }

    /// Hits of one vertex.
    pub fn hits_of(&self, v: u32) -> u64 {
        self.hits[v as usize]
    }

    /// Hits of the group rooted at `root` (0 when groups are untracked).
    pub fn group_hits_of(&self, root: u32) -> u64 {
        self.groups
            .as_ref()
            .map(|(_, gh)| gh[root as usize])
            .unwrap_or(0)
    }

    /// Dense index of a vertex with maximal hits (ties: lowest id).
    pub fn argmax_vertex(&self) -> Option<u32> {
        argmax(&self.hits)
    }

    /// Dense index of a group root with maximal group hits (ties: lowest id).
    pub fn argmax_group(&self) -> Option<u32> {
        self.groups.as_ref().and_then(|(_, gh)| argmax(gh))
    }

    /// Absorbs another counter over the same vertex space. Hit counts are
    /// sums, so merging sharded counters in any fixed order reproduces the
    /// serial count exactly — the foundation of every deterministic parallel
    /// verification path in the workspace.
    ///
    /// # Panics
    /// Panics if the counters cover different vertex spaces or disagree on
    /// group tracking.
    pub fn merge(&mut self, other: &HitCounter) {
        assert_eq!(
            self.hits.len(),
            other.hits.len(),
            "counters must cover the same vertex space"
        );
        for (h, o) in self.hits.iter_mut().zip(&other.hits) {
            *h += o;
        }
        match (&mut self.groups, &other.groups) {
            (None, None) => {}
            (Some((_, gh)), Some((_, oh))) => {
                for (h, o) in gh.iter_mut().zip(oh) {
                    *h += o;
                }
            }
            _ => panic!("counters disagree on group tracking"),
        }
        self.paths += other.paths;
        self.length_sum += other.length_sum;
    }

    /// Clears all counts, keeping allocations and the group root table, so
    /// one counter is reusable across per-copy verification sweeps.
    pub fn reset(&mut self) {
        self.hits.fill(0);
        if let Some((_, gh)) = &mut self.groups {
            gh.fill(0);
        }
        self.paths = 0;
        self.length_sum = 0;
    }

    /// Summary statistics so far.
    pub fn summary(&self) -> HitSummary {
        HitSummary {
            paths: self.paths,
            total_length: self.length_sum,
            max_vertex_hits: self.hits.iter().copied().max().unwrap_or(0),
            max_group_hits: self
                .groups
                .as_ref()
                .map(|(_, gh)| gh.iter().copied().max().unwrap_or(0))
                .unwrap_or(0),
        }
    }
}

fn argmax(values: &[u64]) -> Option<u32> {
    let (mut best, mut best_at) = (0u64, None);
    for (i, &v) in values.iter().enumerate() {
        if best_at.is_none() || v > best {
            best = v;
            best_at = Some(i as u32);
        }
    }
    best_at
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_groups_and_compresses() {
        let mut uf = UnionFind::new(6);
        assert_eq!(uf.len(), 6);
        assert!(!uf.is_empty());
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(4, 5);
        assert!(uf.same(0, 2));
        assert!(uf.same(4, 5));
        assert!(!uf.same(0, 3));
        assert!(!uf.same(2, 4));
        let roots = uf.roots();
        assert_eq!(roots.len(), 6);
        assert_eq!(roots[0], roots[1]);
        assert_eq!(roots[1], roots[2]);
        assert_eq!(roots[4], roots[5]);
        assert_ne!(roots[0], roots[3]);
        // Root table entries are fixed points.
        for &r in &roots {
            assert_eq!(roots[r as usize], r);
        }
    }

    #[test]
    fn vertex_hits_count_multiplicity_group_hits_once_per_path() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 1); // {0,1} one group
        let mut c = HitCounter::with_groups(uf.roots());
        assert!(c.tracks_groups());
        // A path through both members of the group: each vertex hit once,
        // the group hit once.
        c.add_path([0u32, 1, 2]);
        c.add_path([0u32, 1, 2]);
        let s = c.summary();
        assert_eq!(s.paths, 2);
        assert_eq!(s.total_length, 6);
        assert_eq!(s.max_vertex_hits, 2);
        assert_eq!(s.max_group_hits, 2, "group counted once per path");
        assert_eq!(c.hits_of(0), 2);
        assert_eq!(c.hits_of(3), 0);
    }

    #[test]
    fn merge_equals_serial() {
        let mut uf = UnionFind::new(3);
        uf.union(1, 2);
        let roots = uf.roots();
        let mut serial = HitCounter::with_groups(roots.clone());
        serial.add_path([0u32, 1]);
        serial.add_path([1u32, 2]);
        let mut a = HitCounter::with_groups(roots.clone());
        a.add_path([0u32, 1]);
        let mut b = HitCounter::with_groups(roots);
        b.add_path([1u32, 2]);
        a.merge(&b);
        assert_eq!(a.summary(), serial.summary());
        assert_eq!(a.hits_of(1), serial.hits_of(1));
    }

    #[test]
    fn reset_keeps_grouping() {
        let mut uf = UnionFind::new(2);
        uf.union(0, 1);
        let mut c = HitCounter::with_groups(uf.roots());
        c.add_path([0u32, 1]);
        c.reset();
        assert_eq!(c.summary(), HitSummary::default());
        c.add_path([0u32, 1]);
        assert_eq!(c.summary().max_group_hits, 1);
    }

    #[test]
    fn argmax_prefers_lowest_id_on_ties() {
        let mut c = HitCounter::new(3);
        c.add_path([1u32, 2]);
        assert_eq!(c.argmax_vertex(), Some(1));
        assert_eq!(c.argmax_group(), None, "groups untracked");
        let empty = HitCounter::new(0);
        assert_eq!(empty.argmax_vertex(), None);
    }

    #[test]
    #[should_panic(expected = "group tracking")]
    fn merge_rejects_mismatched_tracking() {
        let mut a = HitCounter::new(2);
        let b = HitCounter::with_groups(vec![0, 1]);
        a.merge(&b);
    }
}
