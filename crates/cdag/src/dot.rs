//! Graphviz DOT export of CDAGs, used to regenerate the paper's structural
//! figures (Figure 1: Strassen's base graph; Figure 2: meta-vertices; and
//! the per-figure examples in the experiment harness).

use crate::graph::{Cdag, Layer, VertexId};
use std::fmt::Write as _;

/// Options controlling DOT emission.
#[derive(Clone, Debug)]
pub struct DotOptions {
    /// Cluster vertices of equal rank on the same horizontal level.
    pub rank_clusters: bool,
    /// Highlight these vertices (drawn filled).
    pub highlight: Vec<VertexId>,
    /// Show edge coefficients as labels.
    pub coefficient_labels: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            rank_clusters: true,
            highlight: Vec::new(),
            coefficient_labels: false,
        }
    }
}

/// Short human-readable label of a vertex: layer, level, and coordinates.
pub fn label(g: &Cdag, v: VertexId) -> String {
    let vr = g.vref(v);
    let layer = match vr.layer {
        Layer::EncA => "A",
        Layer::EncB => "B",
        Layer::Dec => "D",
    };
    format!("{layer}{}:{}/{}", vr.level, vr.mul, vr.entry)
}

/// Emits the whole CDAG as a DOT digraph (bottom-to-top as in the paper's
/// figures: inputs at the bottom, outputs on top).
pub fn to_dot(g: &Cdag, opts: &DotOptions) -> String {
    let mut out = String::new();
    writeln!(out, "digraph {} {{", sanitize(g.base().name())).unwrap();
    writeln!(out, "  rankdir=BT;").unwrap();
    writeln!(out, "  node [shape=circle, fontsize=9];").unwrap();
    let highlighted: std::collections::HashSet<VertexId> = opts.highlight.iter().copied().collect();
    for v in g.vertices() {
        let style = if highlighted.contains(&v) {
            ", style=filled, fillcolor=lightblue"
        } else {
            ""
        };
        writeln!(out, "  v{} [label=\"{}\"{}];", v.0, label(g, v), style).unwrap();
    }
    if opts.rank_clusters {
        let max_rank = 2 * g.r() + 1;
        for rank in 0..=max_rank {
            let ids: Vec<String> = g
                .vertices()
                .filter(|&v| g.rank(v) == rank)
                .map(|v| format!("v{}", v.0))
                .collect();
            if !ids.is_empty() {
                writeln!(out, "  {{ rank=same; {} }}", ids.join("; ")).unwrap();
            }
        }
    }
    for v in g.vertices() {
        for (ei, &p) in g.preds(v).iter().enumerate() {
            if opts.coefficient_labels {
                let c = g.pred_coeffs(v)[ei];
                writeln!(out, "  v{} -> v{} [label=\"{}\"];", p.0, v.0, c).unwrap();
            } else {
                writeln!(out, "  v{} -> v{};", p.0, v.0).unwrap();
            }
        }
    }
    writeln!(out, "}}").unwrap();
    out
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    if cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        format!("g_{cleaned}")
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::BaseGraph;
    use crate::build::build_cdag;
    use mmio_matrix::{Matrix, Rational};

    fn tiny() -> Cdag {
        let one = Matrix::from_vec(1, 1, vec![Rational::ONE]);
        build_cdag(
            &BaseGraph::new("tiny 1x1", 1, one.clone(), one.clone(), one),
            1,
        )
    }

    #[test]
    fn dot_contains_all_vertices_and_edges() {
        let g = tiny();
        let dot = to_dot(&g, &DotOptions::default());
        assert!(dot.starts_with("digraph tiny_1x1 {"));
        for v in g.vertices() {
            assert!(dot.contains(&format!("v{} [", v.0)));
        }
        let edge_lines = dot.lines().filter(|l| l.contains(" -> ")).count();
        assert_eq!(edge_lines, g.n_edges());
    }

    #[test]
    fn highlight_and_coefficients() {
        let g = tiny();
        let v = g.outputs().next().unwrap();
        let dot = to_dot(
            &g,
            &DotOptions {
                highlight: vec![v],
                coefficient_labels: true,
                ..DotOptions::default()
            },
        );
        assert!(dot.contains("fillcolor=lightblue"));
        assert!(dot.contains("label=\"1\""));
    }

    #[test]
    fn sanitize_leading_digit() {
        assert_eq!(sanitize("2x2"), "g_2x2");
        assert_eq!(sanitize("strassen⊗strassen"), "strassen_strassen");
    }
}
