//! Graph traversals: topological order, undirected BFS, connected
//! components, reachability, and CDAG evaluation on concrete inputs.

use crate::graph::{Cdag, VertexId};
use mmio_matrix::{Matrix, Scalar};

/// A topological order of the CDAG. Dense id order is topological by
/// construction, so this is simply `0..n`; exposed as a function so callers
/// don't depend on that layout detail.
pub fn topological_order(g: &Cdag) -> Vec<VertexId> {
    g.vertices().collect()
}

/// Verifies that `order` is a permutation of all vertices in which every
/// vertex appears after all of its predecessors.
pub fn is_topological(g: &Cdag, order: &[VertexId]) -> bool {
    if order.len() != g.n_vertices() {
        return false;
    }
    let mut pos = vec![usize::MAX; g.n_vertices()];
    for (i, &v) in order.iter().enumerate() {
        if pos[v.idx()] != usize::MAX {
            return false; // duplicate
        }
        pos[v.idx()] = i;
    }
    order
        .iter()
        .all(|&v| g.preds(v).iter().all(|&p| pos[p.idx()] < pos[v.idx()]))
}

/// Undirected breadth-first search from `start`, restricted to vertices for
/// which `allowed` returns true. Returns the set of reached vertices
/// (including `start` when allowed).
pub fn undirected_bfs(
    g: &Cdag,
    start: VertexId,
    allowed: impl Fn(VertexId) -> bool,
) -> Vec<VertexId> {
    if !allowed(start) {
        return Vec::new();
    }
    let mut visited = vec![false; g.n_vertices()];
    let mut queue = std::collections::VecDeque::new();
    let mut reached = Vec::new();
    visited[start.idx()] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        reached.push(v);
        for &w in g.preds(v).iter().chain(g.succs(v)) {
            if !visited[w.idx()] && allowed(w) {
                visited[w.idx()] = true;
                queue.push_back(w);
            }
        }
    }
    reached
}

/// Number of undirected connected components of the induced subgraph on the
/// vertices satisfying `allowed`.
pub fn component_count(g: &Cdag, allowed: impl Fn(VertexId) -> bool + Copy) -> usize {
    let mut visited = vec![false; g.n_vertices()];
    let mut components = 0;
    for v in g.vertices() {
        if !allowed(v) || visited[v.idx()] {
            continue;
        }
        components += 1;
        for w in undirected_bfs(g, v, allowed) {
            visited[w.idx()] = true;
        }
    }
    components
}

/// Evaluates the CDAG on concrete input matrices, returning every vertex's
/// value. Combination vertices compute `Σ coeff·pred`; product vertices
/// (decoding rank 0) multiply their two operands.
///
/// This is the semantic ground truth for the whole workspace: the outputs of
/// the returned valuation must equal `A·B` for a correct base graph (see
/// [`eval_outputs`]).
///
/// # Panics
/// Panics if the matrix sides don't equal `n₀^r`.
pub fn evaluate<T: Scalar>(g: &Cdag, a: &Matrix<T>, b: &Matrix<T>) -> Vec<T> {
    let n = g.n() as usize;
    assert_eq!(a.rows(), n, "A side must be n0^r");
    assert!(a.is_square() && b.is_square() && b.rows() == n);
    let mut values = vec![T::zero(); g.n_vertices()];
    for row in 0..n {
        for col in 0..n {
            values[g.input_a(row, col).idx()] = a[(row, col)];
            values[g.input_b(row, col).idx()] = b[(row, col)];
        }
    }
    for v in g.vertices() {
        if g.is_input(v) {
            continue;
        }
        let vr = g.vref(v);
        let is_product = vr.layer == crate::graph::Layer::Dec && vr.level == 0;
        let preds = g.preds(v);
        values[v.idx()] = if is_product {
            debug_assert_eq!(preds.len(), 2);
            values[preds[0].idx()] * values[preds[1].idx()]
        } else {
            let coeffs = g.pred_coeffs(v);
            let mut acc = T::zero();
            for (&p, &c) in preds.iter().zip(coeffs) {
                acc += T::from_rational(c) * values[p.idx()];
            }
            acc
        };
    }
    values
}

/// Evaluates the CDAG and extracts the output matrix `C`.
pub fn eval_outputs<T: Scalar>(g: &Cdag, a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    let values = evaluate(g, a, b);
    let n = g.n() as usize;
    Matrix::from_fn(n, n, |row, col| values[g.output(row, col).idx()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::BaseGraph;
    use crate::build::build_cdag;
    use mmio_matrix::classical::multiply_naive;
    use mmio_matrix::{Matrix, Rational};

    fn r_(n: i64) -> Rational {
        Rational::integer(n)
    }

    fn classical2() -> BaseGraph {
        let n0 = 2;
        let mut enc_a = Matrix::zeros(8, 4);
        let mut enc_b = Matrix::zeros(8, 4);
        let mut dec = Matrix::zeros(4, 8);
        let mut m = 0;
        for i in 0..n0 {
            for j in 0..n0 {
                for k in 0..n0 {
                    enc_a[(m, i * n0 + k)] = r_(1);
                    enc_b[(m, k * n0 + j)] = r_(1);
                    dec[(i * n0 + j, m)] = r_(1);
                    m += 1;
                }
            }
        }
        BaseGraph::new("classical2", n0, enc_a, enc_b, dec)
    }

    #[test]
    fn dense_order_is_topological_order() {
        let g = build_cdag(&classical2(), 2);
        assert!(is_topological(&g, &topological_order(&g)));
    }

    #[test]
    fn bad_orders_rejected() {
        let g = build_cdag(&classical2(), 1);
        let mut order = topological_order(&g);
        order.swap(0, g.n_vertices() - 1);
        assert!(!is_topological(&g, &order));
        let dup: Vec<_> = std::iter::repeat_n(order[0], g.n_vertices()).collect();
        assert!(!is_topological(&g, &dup));
        assert!(!is_topological(&g, &order[..3]));
    }

    #[test]
    fn whole_cdag_is_connected() {
        let g = build_cdag(&classical2(), 2);
        assert_eq!(component_count(&g, |_| true), 1);
    }

    #[test]
    fn evaluation_matches_matmul() {
        let g = build_cdag(&classical2(), 2);
        let a = Matrix::from_fn(4, 4, |i, j| (i as i64 * 2 - j as i64) * 3 + 1);
        let b = Matrix::from_fn(4, 4, |i, j| (j as i64 - i as i64) + 2);
        let c = eval_outputs(&g, &a, &b);
        assert!(c.exactly_equals(&multiply_naive(&a, &b)));
    }

    #[test]
    fn bfs_restriction() {
        let g = build_cdag(&classical2(), 1);
        // Restricted to a single vertex, BFS reaches exactly that vertex.
        let v = g.inputs().next().unwrap();
        assert_eq!(undirected_bfs(&g, v, |w| w == v), vec![v]);
        // Not allowed at all: empty.
        assert!(undirected_bfs(&g, v, |_| false).is_empty());
    }
}
