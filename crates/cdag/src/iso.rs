//! Structural isomorphism checking between CDAGs under an explicit vertex
//! map.
//!
//! Fact 1 claims each subcomputation `G_k^i` of `G_r` *is* a copy of `G_k`;
//! [`crate::fact1`] provides the map, and this module provides the
//! verification that the map really is an isomorphism (bijective on the
//! claimed vertex sets, edge-preserving in both directions, and
//! coefficient-preserving). Tests use it to validate the index arithmetic
//! exhaustively instead of trusting it.

use crate::graph::{Cdag, VertexId};
use std::collections::HashMap;

/// The ways a claimed isomorphism can fail.
#[derive(Clone, Debug, PartialEq)]
pub enum IsoError {
    /// The map is not injective: two sources share an image.
    NotInjective(VertexId, VertexId),
    /// An edge of the source has no corresponding edge in the target.
    MissingEdge { from: VertexId, to: VertexId },
    /// The image has an internal edge the source lacks (the map's image is
    /// not an induced subgraph copy).
    ExtraEdge { from: VertexId, to: VertexId },
    /// Edge coefficients differ.
    CoefficientMismatch { from: VertexId, to: VertexId },
}

/// Verifies that `map` (indexed by source dense id) embeds `src` into `dst`
/// as an induced, coefficient-preserving sub-DAG.
pub fn verify_embedding(src: &Cdag, dst: &Cdag, map: &[VertexId]) -> Result<(), IsoError> {
    assert_eq!(map.len(), src.n_vertices(), "map must cover the source");
    // Injectivity + inverse map.
    let mut inverse: HashMap<VertexId, VertexId> = HashMap::with_capacity(map.len());
    for (i, &img) in map.iter().enumerate() {
        let v = VertexId(i as u32);
        if let Some(&prev) = inverse.get(&img) {
            return Err(IsoError::NotInjective(prev, v));
        }
        inverse.insert(img, v);
    }
    for v in src.vertices() {
        let img = map[v.idx()];
        // Every source edge must map to a target edge with equal coefficient.
        for (ei, &p) in src.preds(v).iter().enumerate() {
            let img_p = map[p.idx()];
            let Some(pos) = dst.preds(img).iter().position(|&q| q == img_p) else {
                return Err(IsoError::MissingEdge { from: p, to: v });
            };
            if dst.pred_coeffs(img)[pos] != src.pred_coeffs(v)[ei] {
                return Err(IsoError::CoefficientMismatch { from: p, to: v });
            }
        }
        // Induced: target edges between image vertices must exist in source.
        for &q in dst.preds(img) {
            if let Some(&p) = inverse.get(&q) {
                if !src.preds(v).contains(&p) {
                    return Err(IsoError::ExtraEdge { from: p, to: v });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_cdag;
    use crate::fact1::Subcomputation;
    use mmio_matrix::{Matrix, Rational};

    fn classical2() -> crate::BaseGraph {
        let n0 = 2;
        let mut enc_a = Matrix::zeros(8, 4);
        let mut enc_b = Matrix::zeros(8, 4);
        let mut dec = Matrix::zeros(4, 8);
        let mut m = 0;
        for i in 0..n0 {
            for j in 0..n0 {
                for k in 0..n0 {
                    enc_a[(m, i * n0 + k)] = Rational::ONE;
                    enc_b[(m, k * n0 + j)] = Rational::ONE;
                    dec[(i * n0 + j, m)] = Rational::ONE;
                    m += 1;
                }
            }
        }
        crate::BaseGraph::new("classical2", n0, enc_a, enc_b, dec)
    }

    #[test]
    fn fact1_maps_are_embeddings() {
        let base = classical2();
        let g = build_cdag(&base, 3);
        let gk = build_cdag(&base, 1);
        for sub in Subcomputation::all(&g, 1) {
            let map: Vec<VertexId> = gk
                .vertices()
                .map(|lv| sub.local_to_global(gk.vref(lv)))
                .collect();
            verify_embedding(&gk, &g, &map).expect("Fact 1 isomorphism");
        }
    }

    #[test]
    fn identity_is_an_embedding() {
        let g = build_cdag(&classical2(), 2);
        let map: Vec<VertexId> = g.vertices().collect();
        assert_eq!(verify_embedding(&g, &g, &map), Ok(()));
    }

    #[test]
    fn broken_maps_are_caught() {
        let g = build_cdag(&classical2(), 1);
        // Swap two vertices of different roles: must fail.
        let mut map: Vec<VertexId> = g.vertices().collect();
        let input = g.inputs().next().unwrap();
        let output = g.outputs().next().unwrap();
        map.swap(input.idx(), output.idx());
        assert!(verify_embedding(&g, &g, &map).is_err());
        // Non-injective map: two vertices to one image.
        let mut dup: Vec<VertexId> = g.vertices().collect();
        dup[1] = dup[0];
        assert!(matches!(
            verify_embedding(&g, &g, &dup),
            Err(IsoError::NotInjective(_, _))
        ));
    }
}
