//! The ranked recursive CDAG `G_r` and its vertex addressing scheme.

use crate::base::{BaseGraph, Side};
use crate::index;
use mmio_matrix::Rational;
use std::fmt;

/// A vertex of a [`Cdag`], identified by a dense `u32`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The dense index as `usize`.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Which of the three structural layers of `G_r` a vertex belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Layer {
    /// The encoding graph of `A` (encoding ranks `0..=r`).
    EncA,
    /// The encoding graph of `B` (encoding ranks `0..=r`).
    EncB,
    /// The decoding graph (decoding ranks `0..=r`; rank 0 holds the product
    /// vertices, rank `r` the outputs).
    Dec,
}

impl Layer {
    /// The encoding side, if this is an encoding layer.
    pub fn side(self) -> Option<Side> {
        match self {
            Layer::EncA => Some(Side::A),
            Layer::EncB => Some(Side::B),
            Layer::Dec => None,
        }
    }
}

/// Structured address of a `G_r` vertex.
///
/// For encoding layers, `level = t ∈ 0..=r` is the encoding rank: the vertex
/// holds the partial combination addressed by multiplication prefix
/// `mul ∈ [b^t]` (digits coarsest-first) and block-entry suffix
/// `entry ∈ [a^{r-t}]` (digits coarsest-first).
///
/// For the decoding layer, `level = k ∈ 0..=r` is the decoding rank: the
/// vertex is addressed by `mul ∈ [b^{r-k}]` and output-entry suffix
/// `entry ∈ [a^k]` whose digits are the *deepest* `k` output coordinates,
/// coarsest-of-them first.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct VertexRef {
    /// Structural layer.
    pub layer: Layer,
    /// Encoding rank `t` or decoding rank `k`.
    pub level: u32,
    /// Packed multiplication prefix.
    pub mul: u64,
    /// Packed entry suffix.
    pub entry: u64,
}

/// The computation DAG `G_r` of a Strassen-like algorithm applied to
/// `n₀^r × n₀^r` matrices, with explicit bidirectional adjacency.
///
/// Vertices are laid out segment-by-segment: `EncA` levels `0..=r`, then
/// `EncB` levels `0..=r`, then `Dec` levels `0..=r`. Within a segment the
/// index is `mul · a^{suffix_len} + entry`, so identifiers in increasing
/// order form a topological order of the DAG.
pub struct Cdag {
    base: BaseGraph,
    r: u32,
    /// `3(r+1)+1` segment boundaries into the dense vertex space.
    seg_offsets: Vec<u64>,
    /// Per-segment size `a^{entry_len}` of the packed entry suffix,
    /// precomputed so [`Cdag::id`] and [`Cdag::vref`] — the innermost loop
    /// of every routing construction and verification — are pure index
    /// arithmetic with no `pow` evaluation.
    seg_suffix: Vec<u64>,
    pred_off: Vec<u32>,
    pred_tgt: Vec<VertexId>,
    pred_coeff: Vec<Rational>,
    succ_off: Vec<u32>,
    succ_tgt: Vec<VertexId>,
    /// Per-row triviality of the base matrices (one nonzero, equal to 1 —
    /// the copy condition), hoisted once so [`Cdag::copy_parent`] and the
    /// meta-vertex pass are pure table lookups.
    triv_a: Vec<bool>,
    triv_b: Vec<bool>,
    triv_d: Vec<bool>,
}

impl Cdag {
    #[allow(clippy::too_many_arguments)] // internal constructor fed by the builder
    pub(crate) fn from_parts(
        base: BaseGraph,
        r: u32,
        seg_offsets: Vec<u64>,
        pred_off: Vec<u32>,
        pred_tgt: Vec<VertexId>,
        pred_coeff: Vec<Rational>,
        succ_off: Vec<u32>,
        succ_tgt: Vec<VertexId>,
    ) -> Cdag {
        let rp1 = r as usize + 1;
        let a = base.a();
        let seg_suffix = (0..3 * rp1)
            .map(|s| {
                let level = (s % rp1) as u32;
                let entry_len = if s / rp1 < 2 { r - level } else { level };
                index::pow(a, entry_len)
            })
            .collect();
        let b = base.b();
        let triv_a = (0..b).map(|m| base.row_is_trivial(Side::A, m)).collect();
        let triv_b = (0..b).map(|m| base.row_is_trivial(Side::B, m)).collect();
        let triv_d = (0..a).map(|y| base.dec_row_is_trivial(y)).collect();
        Cdag {
            base,
            r,
            seg_offsets,
            seg_suffix,
            pred_off,
            pred_tgt,
            pred_coeff,
            succ_off,
            succ_tgt,
            triv_a,
            triv_b,
            triv_d,
        }
    }

    /// The base graph `G₁` this CDAG recurses on.
    pub fn base(&self) -> &BaseGraph {
        &self.base
    }

    /// The number of recursion levels `r` (input side is `n₀^r`).
    pub fn r(&self) -> u32 {
        self.r
    }

    /// The matrix side `n = n₀^r`.
    pub fn n(&self) -> u64 {
        index::pow(self.base.n0(), self.r)
    }

    /// Total number of vertices.
    pub fn n_vertices(&self) -> usize {
        // audit: safe — seg_offsets is built with 3(r+1)+1 entries, never empty
        *self.seg_offsets.last().unwrap() as usize
    }

    /// Total number of directed edges.
    pub fn n_edges(&self) -> usize {
        self.pred_tgt.len()
    }

    fn seg_index(&self, layer: Layer, level: u32) -> usize {
        let l = match layer {
            Layer::EncA => 0,
            Layer::EncB => 1,
            Layer::Dec => 2,
        };
        l * (self.r as usize + 1) + level as usize
    }

    /// Number of vertices in segment `(layer, level)`:
    /// `b^t·a^{r-t}` for encoding rank `t`, `b^{r-k}·a^k` for decoding rank `k`.
    pub fn segment_len(&self, layer: Layer, level: u32) -> u64 {
        let s = self.seg_index(layer, level);
        // audit: safe — s = seg_index(..) < 3(r+1); the table has 3(r+1)+1 offsets
        self.seg_offsets[s + 1] - self.seg_offsets[s]
    }

    /// Dense id of the first vertex of segment `(layer, level)`.
    pub fn segment_start(&self, layer: Layer, level: u32) -> u64 {
        self.seg_offsets[self.seg_index(layer, level)] // audit: safe — seg_index < table len
    }

    /// `a^{entry_len}` — the precomputed entry-suffix width of segment
    /// `(layer, level)`, so hot loops never re-evaluate `pow`.
    pub fn entry_width(&self, layer: Layer, level: u32) -> u64 {
        self.seg_suffix[self.seg_index(layer, level)] // audit: safe — seg_index < table len
    }

    /// Length of the packed `entry` suffix for vertices in `(layer, level)`.
    pub fn entry_len(&self, layer: Layer, level: u32) -> u32 {
        match layer {
            Layer::EncA | Layer::EncB => self.r - level,
            Layer::Dec => level,
        }
    }

    /// Length of the packed `mul` prefix for vertices in `(layer, level)`.
    pub fn mul_len(&self, layer: Layer, level: u32) -> u32 {
        match layer {
            Layer::EncA | Layer::EncB => level,
            Layer::Dec => self.r - level,
        }
    }

    /// Dense id of a structured reference.
    ///
    /// # Panics
    /// Debug-panics if the reference is out of range.
    pub fn id(&self, vref: VertexRef) -> VertexId {
        let s = self.seg_index(vref.layer, vref.level);
        let suffix = self.seg_suffix[s];
        debug_assert!(vref.entry < suffix, "entry out of range");
        let local = vref.mul * suffix + vref.entry;
        debug_assert!(local < self.seg_offsets[s + 1] - self.seg_offsets[s]);
        VertexId((self.seg_offsets[s] + local) as u32)
    }

    /// Structured reference of a dense id.
    pub fn vref(&self, v: VertexId) -> VertexRef {
        let pos = v.0 as u64;
        // Segments are few (3(r+1)); binary search the boundary.
        let s = match self.seg_offsets.binary_search(&pos) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let rp1 = self.r as usize + 1;
        let (layer, level) = match s / rp1 {
            0 => (Layer::EncA, (s % rp1) as u32),
            1 => (Layer::EncB, (s % rp1) as u32),
            _ => (Layer::Dec, (s % rp1) as u32),
        };
        let local = pos - self.seg_offsets[s]; // audit: safe — binary_search result is in range
        let suffix = self.seg_suffix[s]; // audit: safe — s < 3(r+1)+1 as above
        VertexRef {
            layer,
            level,
            mul: local / suffix,
            entry: local % suffix,
        }
    }

    /// The paper's global rank of a vertex: encoding rank `t` maps to rank
    /// `t`; decoding rank `k` maps to rank `r+1+k`. Ranks run `0..=2r+1`.
    pub fn rank(&self, v: VertexId) -> u32 {
        let vr = self.vref(v);
        match vr.layer {
            Layer::EncA | Layer::EncB => vr.level,
            Layer::Dec => self.r + 1 + vr.level,
        }
    }

    /// Direct predecessors of `v` (the values `v`'s computation reads).
    pub fn preds(&self, v: VertexId) -> &[VertexId] {
        let i = v.idx();
        // audit: safe — CSR invariant: pred_off has n+1 monotone entries bounding pred_tgt
        &self.pred_tgt[self.pred_off[i] as usize..self.pred_off[i + 1] as usize]
    }

    /// Edge coefficients aligned with [`Cdag::preds`]. Product vertices have
    /// coefficient 1 on both operands.
    pub fn pred_coeffs(&self, v: VertexId) -> &[Rational] {
        let i = v.idx();
        &self.pred_coeff[self.pred_off[i] as usize..self.pred_off[i + 1] as usize]
    }

    /// Direct successors of `v` (the computations reading `v`).
    pub fn succs(&self, v: VertexId) -> &[VertexId] {
        let i = v.idx();
        &self.succ_tgt[self.succ_off[i] as usize..self.succ_off[i + 1] as usize]
    }

    /// All vertices of segment `(layer, level)` in dense order.
    pub fn segment(&self, layer: Layer, level: u32) -> impl Iterator<Item = VertexId> + '_ {
        let s = self.seg_index(layer, level);
        (self.seg_offsets[s]..self.seg_offsets[s + 1]).map(|i| VertexId(i as u32))
    }

    /// The `2a^r` input vertices (entries of `A` then entries of `B`).
    pub fn inputs(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.segment(Layer::EncA, 0)
            .chain(self.segment(Layer::EncB, 0))
    }

    /// The `a^r` output vertices (entries of `C`), decoding rank `r`.
    pub fn outputs(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.segment(Layer::Dec, self.r)
    }

    /// The `b^r` multiplication (product) vertices, decoding rank 0.
    pub fn products(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.segment(Layer::Dec, 0)
    }

    /// All vertices in dense (topological) order.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.n_vertices() as u32).map(VertexId)
    }

    /// Whether `v` is an input of the whole CDAG.
    pub fn is_input(&self, v: VertexId) -> bool {
        self.preds(v).is_empty()
    }

    /// Whether `v` is an output of the whole CDAG.
    pub fn is_output(&self, v: VertexId) -> bool {
        let vr = self.vref(v);
        vr.layer == Layer::Dec && vr.level == self.r
    }

    /// If `v` is a copy (its generating base row is trivial: one nonzero
    /// coefficient, equal to 1), its single predecessor; `None` otherwise.
    pub fn copy_parent(&self, v: VertexId) -> Option<VertexId> {
        let vr = self.vref(v);
        let is_copy = match vr.layer {
            Layer::EncA | Layer::EncB if vr.level > 0 => {
                let tau = (vr.mul % self.base.b() as u64) as usize;
                match vr.layer {
                    Layer::EncA => self.triv_a[tau],
                    _ => self.triv_b[tau],
                }
            }
            Layer::Dec if vr.level > 0 => {
                let upsilon = (vr.entry / self.entry_width(Layer::Dec, vr.level - 1)) as usize;
                self.triv_d[upsilon]
            }
            _ => false,
        };
        if !is_copy {
            return None;
        }
        debug_assert_eq!(self.preds(v).len(), 1);
        self.preds(v).first().copied()
    }

    /// The input vertex holding `A[(row, col)]`.
    pub fn input_a(&self, row: usize, col: usize) -> VertexId {
        self.input_entry(Layer::EncA, row, col)
    }

    /// The input vertex holding `B[(row, col)]`.
    pub fn input_b(&self, row: usize, col: usize) -> VertexId {
        self.input_entry(Layer::EncB, row, col)
    }

    fn input_entry(&self, layer: Layer, row: usize, col: usize) -> VertexId {
        let digits = mmio_matrix::block::entry_to_digits(row, col, self.base.n0(), self.r as usize);
        self.id(VertexRef {
            layer,
            level: 0,
            mul: 0,
            entry: index::pack(&digits, self.base.a()),
        })
    }

    /// The output vertex holding `C[(row, col)]`.
    pub fn output(&self, row: usize, col: usize) -> VertexId {
        let digits = mmio_matrix::block::entry_to_digits(row, col, self.base.n0(), self.r as usize);
        self.id(VertexRef {
            layer: Layer::Dec,
            level: self.r,
            mul: 0,
            entry: index::pack(&digits, self.base.a()),
        })
    }
}

impl fmt::Debug for Cdag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Cdag({}, r={}, |V|={}, |E|={})",
            self.base.name(),
            self.r,
            self.n_vertices(),
            self.n_edges()
        )
    }
}
