//! Structural properties of base graphs that decide which earlier proof
//! techniques apply — and that the paper's path-routing technique does not
//! need.
//!
//! The edge-expansion argument of Ballard–Demmel–Holtz–Schwartz (JACM'12)
//! requires the base graph's decoding (and encoding) graphs to be
//! *individually connected* and fails under *multiple copying*. This module
//! classifies a base graph along exactly those axes (paper Sections 1, 3, 6).

use crate::base::{BaseGraph, Side};
use mmio_matrix::{Matrix, Rational};
use serde::Serialize;

/// The structural classification of a base graph.
#[derive(Clone, Debug, Serialize, PartialEq)]
pub struct BaseGraphProperties {
    /// Base-graph name.
    pub name: String,
    /// `n₀` of one recursion step.
    pub n0: usize,
    /// Inputs per matrix `a = n₀²`.
    pub a: usize,
    /// Multiplications per step.
    pub b: usize,
    /// `ω₀ = 2·log_a b`.
    pub omega0: f64,
    /// Whether `ω₀ < 3`.
    pub is_fast: bool,
    /// Connected components of the encoding graph for `A` (combination
    /// vertices + the `A` inputs).
    pub enc_a_components: usize,
    /// Connected components of the encoding graph for `B`.
    pub enc_b_components: usize,
    /// Connected components of the decoding graph (products + outputs).
    pub dec_components: usize,
    /// Whether some input feeds two or more multiplications bare — the
    /// multiple-copying case of paper Figure 2.
    pub multiple_copying: bool,
    /// The paper's standing assumption: every nontrivial combination feeds
    /// only one multiplication.
    pub single_use_assumption: bool,
    /// Lemma 1's hypothesis (both encodings contain a nontrivial row).
    pub lemma1_condition: bool,
    /// Whether the edge-expansion technique of [6] applies: both encoding
    /// graphs and the decoding graph connected, and no multiple copying.
    pub edge_expansion_applies: bool,
}

/// Counts connected components of the bipartite graph on `rows(m) + cols(m)`
/// vertices with an edge wherever `m` has a nonzero, ignoring isolated...
/// no — *counting* isolated vertices as their own components (an isolated
/// decoding vertex is precisely a disconnected decoding graph).
fn bipartite_components(m: &Matrix<Rational>) -> usize {
    let (rows, cols) = (m.rows(), m.cols());
    let n = rows + cols;
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for (i, j, _) in m.nonzeros() {
        let (ri, rj) = (find(&mut parent, i), find(&mut parent, rows + j));
        if ri != rj {
            parent[ri] = rj;
        }
    }
    (0..n).filter(|&x| find(&mut parent, x) == x).count()
}

/// Classifies a base graph.
pub fn classify(base: &BaseGraph) -> BaseGraphProperties {
    let enc_a_components = bipartite_components(base.enc(Side::A));
    let enc_b_components = bipartite_components(base.enc(Side::B));
    let dec_components = bipartite_components(base.dec());
    let multiple_copying = base.has_multiple_copying();
    BaseGraphProperties {
        name: base.name().to_string(),
        n0: base.n0(),
        a: base.a(),
        b: base.b(),
        omega0: base.omega0(),
        is_fast: base.is_fast(),
        enc_a_components,
        enc_b_components,
        dec_components,
        multiple_copying,
        single_use_assumption: base.single_use_assumption_holds(),
        lemma1_condition: base.lemma1_condition_holds(),
        edge_expansion_applies: enc_a_components == 1
            && enc_b_components == 1
            && dec_components == 1
            && !multiple_copying,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::integer(n)
    }

    fn classical2() -> BaseGraph {
        let n0 = 2;
        let mut enc_a = Matrix::zeros(8, 4);
        let mut enc_b = Matrix::zeros(8, 4);
        let mut dec = Matrix::zeros(4, 8);
        let mut m = 0;
        for i in 0..n0 {
            for j in 0..n0 {
                for k in 0..n0 {
                    enc_a[(m, i * n0 + k)] = r(1);
                    enc_b[(m, k * n0 + j)] = r(1);
                    dec[(i * n0 + j, m)] = r(1);
                    m += 1;
                }
            }
        }
        BaseGraph::new("classical2", n0, enc_a, enc_b, dec)
    }

    #[test]
    fn classical_is_the_hard_case() {
        // Classical 2×2 is exactly the case that defeats edge expansion:
        // its decoding graph splits into 4 components (one per output) and
        // every input is multiply copied.
        let p = classify(&classical2());
        assert_eq!(p.dec_components, 4);
        assert!(p.multiple_copying);
        assert!(!p.edge_expansion_applies);
        assert!(!p.is_fast);
        assert!((p.omega0 - 3.0).abs() < 1e-12);
        // All rows are trivial: the single-use assumption holds vacuously,
        // but Lemma 1's hypothesis fails (no nontrivial combinations).
        assert!(p.single_use_assumption);
        assert!(!p.lemma1_condition);
    }

    #[test]
    fn classical_encodings_disconnected() {
        // Every classical encoding row is a single bare input, so each input
        // forms its own star with its 2 products: 4 components per side.
        let p = classify(&classical2());
        assert_eq!(p.enc_a_components, 4);
        assert_eq!(p.enc_b_components, 4);
    }

    #[test]
    fn isolated_product_counts_as_component() {
        // A decoding matrix with a zero column (product unused by outputs)
        // must report the isolated product vertex as its own component.
        let dec = Matrix::from_vec(1, 2, vec![r(1), r(0)]);
        assert_eq!(bipartite_components(&dec), 2);
    }

    #[test]
    fn fully_connected_single_component() {
        let m = Matrix::from_fn(3, 4, |_, _| r(1));
        assert_eq!(bipartite_components(&m), 1);
    }

    #[test]
    fn empty_matrix_all_isolated() {
        let m: Matrix<Rational> = Matrix::zeros(2, 3);
        assert_eq!(bipartite_components(&m), 5);
    }
}
