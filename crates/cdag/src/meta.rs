//! Meta-vertices: maximal groups of CDAG vertices holding the same value.
//!
//! A vertex whose single predecessor feeds it with coefficient 1 through a
//! *trivial* base-graph row is a **copy** — its value equals its parent's.
//! Following the paper (Section 3, Figure 2), all vertices holding one value
//! are grouped into a *meta-vertex*: a chain under single copying, an
//! upward-branching subtree rooted at the original value (an input, for
//! base graphs satisfying the single-use assumption) under multiple copying.

use crate::graph::{Cdag, VertexId};
use crate::view::CdagView;
use std::collections::HashMap;

/// Identifier of a meta-vertex: the dense id of its *root* — the unique
/// member all other members are copies of (the member of smallest rank).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MetaId(pub u32);

/// The meta-vertex structure of a CDAG.
pub struct MetaVertices {
    /// For each vertex, the root of its meta-vertex.
    root: Vec<u32>,
    /// Members of each nontrivial meta-vertex (singletons omitted).
    members: HashMap<u32, Vec<VertexId>>,
}

impl MetaVertices {
    /// Computes the meta-vertex grouping of `g`.
    ///
    /// A vertex is a copy when its level's base-graph row (encoding row `τ`
    /// at encoding ranks, decoding row `υ` at decoding ranks) is trivial:
    /// one nonzero coefficient equal to 1. Copies are united with their
    /// single parent; roots are the non-copy vertices.
    pub fn compute(g: &Cdag) -> MetaVertices {
        MetaVertices::compute_view(g)
    }

    /// [`MetaVertices::compute`] over any [`CdagView`] — the copy condition
    /// and grouping are identical for the explicit and closed-form views
    /// (equivalence-tested in `mmio-integration`).
    pub fn compute_view<V: CdagView>(g: &V) -> MetaVertices {
        let n = g.n_vertices();
        let mut root: Vec<u32> = (0..n as u32).collect();
        // Dense order is topological, so a copy's parent already has its
        // final root when we visit the copy: one pass suffices.
        for i in 0..n as u32 {
            if let Some(p) = g.copy_parent(VertexId(i)) {
                root[i as usize] = root[p.idx()];
            }
        }
        let mut members: HashMap<u32, Vec<VertexId>> = HashMap::new();
        for i in 0..n as u32 {
            let rt = root[i as usize];
            if rt != i {
                members
                    .entry(rt)
                    .or_insert_with(|| vec![VertexId(rt)])
                    .push(VertexId(i));
            }
        }
        MetaVertices { root, members }
    }

    /// The meta-vertex containing `v`.
    pub fn meta_of(&self, v: VertexId) -> MetaId {
        MetaId(self.root[v.idx()])
    }

    /// The root vertex of a meta-vertex (the original, non-copy value).
    pub fn root_vertex(&self, m: MetaId) -> VertexId {
        VertexId(m.0)
    }

    /// All members of the meta-vertex containing `v` (including `v`).
    /// Singleton meta-vertices are returned without allocation lookups.
    pub fn members_of(&self, v: VertexId) -> Vec<VertexId> {
        let rt = self.root[v.idx()];
        match self.members.get(&rt) {
            Some(ms) => ms.clone(),
            None => vec![VertexId(rt)],
        }
    }

    /// Whether `v` is *duplicated*: its meta-vertex has more than one member.
    pub fn is_duplicated(&self, v: VertexId) -> bool {
        self.members.contains_key(&self.root[v.idx()])
    }

    /// Size of the meta-vertex containing `v`.
    pub fn size_of(&self, v: VertexId) -> usize {
        self.members
            .get(&self.root[v.idx()])
            .map_or(1, |ms| ms.len())
    }

    /// Number of distinct meta-vertices in the graph.
    pub fn count<V: CdagView>(&self, g: &V) -> usize {
        let n = g.n_vertices();
        (0..n as u32)
            .filter(|&i| self.root[i as usize] == i) // audit: safe — root is sized n_vertices
            .count()
    }

    /// Whether any meta-vertex branches (multiple copying): some member has
    /// two or more copy-children, i.e. the meta-vertex is a tree, not a chain.
    pub fn has_multiple_copying<V: CdagView>(&self, g: &V) -> bool {
        let mut succs = Vec::new();
        for ms in self.members.values() {
            for &v in ms {
                succs.clear();
                g.succs_into(v, &mut succs);
                let copy_children = succs
                    .iter()
                    .filter(|&&s| self.root[s.idx()] == self.root[v.idx()])
                    .count();
                if copy_children >= 2 {
                    return true;
                }
            }
        }
        false
    }

    /// Meta-vertices adjacent to the meta-closure of `set` that are not in it
    /// — the paper's `δ'(S')` (Definition 1, meta form). `set` is given as
    /// vertices; its meta-closure is taken automatically.
    pub fn meta_boundary<V: CdagView>(&self, g: &V, set: &[VertexId]) -> Vec<MetaId> {
        let mut in_set = vec![false; g.n_vertices()];
        // Meta-closure: mark every member of every touched meta-vertex.
        for &v in set {
            for m in self.members_of(v) {
                in_set[m.idx()] = true;
            }
        }
        let mut seen = std::collections::HashSet::new();
        let mut adj = Vec::new();
        for i in 0..in_set.len() as u32 {
            if !in_set[i as usize] {
                continue;
            }
            adj.clear();
            g.preds_into(VertexId(i), &mut adj);
            g.succs_into(VertexId(i), &mut adj);
            for &w in &adj {
                if !in_set[w.idx()] {
                    seen.insert(self.meta_of(w));
                }
            }
        }
        let mut out: Vec<MetaId> = seen.into_iter().collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::BaseGraph;
    use crate::build::build_cdag;
    use crate::graph::Layer;
    use mmio_matrix::{Matrix, Rational};

    fn r_(n: i64) -> Rational {
        Rational::integer(n)
    }

    fn classical2() -> BaseGraph {
        let n0 = 2;
        let mut enc_a = Matrix::zeros(8, 4);
        let mut enc_b = Matrix::zeros(8, 4);
        let mut dec = Matrix::zeros(4, 8);
        let mut m = 0;
        for i in 0..n0 {
            for j in 0..n0 {
                for k in 0..n0 {
                    enc_a[(m, i * n0 + k)] = r_(1);
                    enc_b[(m, k * n0 + j)] = r_(1);
                    dec[(i * n0 + j, m)] = r_(1);
                    m += 1;
                }
            }
        }
        BaseGraph::new("classical2", n0, enc_a, enc_b, dec)
    }

    /// A 1×1 base graph with no copying at all: every row is nontrivial
    /// (scaled), kept correct by compensating in the decoder:
    /// c = (2a)(3b)·(1/6).
    fn no_copy() -> BaseGraph {
        BaseGraph::new(
            "scaled",
            1,
            Matrix::from_vec(1, 1, vec![r_(2)]),
            Matrix::from_vec(1, 1, vec![r_(3)]),
            Matrix::from_vec(1, 1, vec![Rational::new(1, 6)]),
        )
    }

    #[test]
    fn classical_has_full_copying() {
        // Every classical encoding row is trivial: rank-1 vertices are all
        // copies of inputs, and every input is copied to 2 products.
        let g = build_cdag(&classical2(), 1);
        let meta = MetaVertices::compute(&g);
        for v in g.inputs() {
            assert!(meta.is_duplicated(v));
            assert_eq!(meta.size_of(v), 3, "input + 2 copies");
            assert_eq!(meta.root_vertex(meta.meta_of(v)), v);
        }
        assert!(meta.has_multiple_copying(&g));
    }

    #[test]
    fn no_copy_graph_has_singletons() {
        let g = build_cdag(&no_copy(), 2);
        let meta = MetaVertices::compute(&g);
        for v in g.vertices() {
            assert_eq!(meta.size_of(v), 1);
            assert_eq!(meta.meta_of(v), MetaId(v.0));
        }
        assert!(!meta.has_multiple_copying(&g));
        assert_eq!(meta.count(&g), g.n_vertices());
    }

    #[test]
    fn meta_count_consistency() {
        let g = build_cdag(&classical2(), 2);
        let meta = MetaVertices::compute(&g);
        let total: usize = g
            .vertices()
            .filter(|&v| meta.root_vertex(meta.meta_of(v)) == v)
            .map(|v| meta.size_of(v))
            .sum();
        assert_eq!(total, g.n_vertices());
    }

    #[test]
    fn copies_transitive_through_levels() {
        // classical2 at r=2: encoding rank-2 vertices whose two base rows are
        // both trivial are copies-of-copies; their root must be an input.
        let g = build_cdag(&classical2(), 2);
        let meta = MetaVertices::compute(&g);
        for v in g.segment(Layer::EncA, 2) {
            let root = meta.root_vertex(meta.meta_of(v));
            assert!(g.is_input(root), "root of a copy chain must be the input");
        }
    }

    #[test]
    fn meta_boundary_of_everything_is_empty() {
        let g = build_cdag(&classical2(), 1);
        let meta = MetaVertices::compute(&g);
        let all: Vec<_> = g.vertices().collect();
        assert!(meta.meta_boundary(&g, &all).is_empty());
    }

    #[test]
    fn meta_boundary_of_single_product() {
        let g = build_cdag(&classical2(), 1);
        let meta = MetaVertices::compute(&g);
        let p = g.products().next().unwrap();
        let boundary = meta.meta_boundary(&g, &[p]);
        // Product 0 = a00·b00 → c00: adjacent metas are input-a00's meta,
        // input-b00's meta, and the output c00.
        assert_eq!(boundary.len(), 3);
    }
}
