//! Base graphs `G₁` of Strassen-like algorithms.
//!
//! A base graph is fully specified by three exact coefficient matrices: the
//! two encodings (one row per multiplication, one column per entry of the
//! input matrix) and the decoding (one row per entry of the output matrix,
//! one column per multiplication). Entry flattening follows the paper:
//! `A` entries `(i,k)` (row, column) flatten to `i·n₀+k`, `B` entries `(k,j)`
//! to `k·n₀+j`, `C` entries `(i,j)` to `i·n₀+j`.

use mmio_matrix::{Matrix, Rational};
use std::fmt;

/// Which input matrix an encoding refers to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Side {
    /// The left operand `A`.
    A,
    /// The right operand `B`.
    B,
}

/// A Strassen-like base graph `⟨n₀, n₀, n₀; b⟩`: compute `b` products of
/// linear combinations of the entries of `A` and `B`, then linear
/// combinations of the products give the entries of `C = A·B`.
#[derive(Clone)]
pub struct BaseGraph {
    name: String,
    n0: usize,
    /// `b × a` encoding of `A` (`a = n₀²`): row `m` holds the combination
    /// multiplied in product `m`.
    enc_a: Matrix<Rational>,
    /// `b × a` encoding of `B`.
    enc_b: Matrix<Rational>,
    /// `a × b` decoding: row `y` holds the combination of products giving
    /// output entry `y`.
    dec: Matrix<Rational>,
}

/// A violation of the matrix-multiplication tensor identity, reported by
/// [`BaseGraph::verify_correctness`].
#[derive(Clone, Debug, PartialEq)]
pub struct CorrectnessError {
    /// `A` entry `(i, k)`.
    pub a_entry: (usize, usize),
    /// `B` entry `(k', j)`.
    pub b_entry: (usize, usize),
    /// `C` entry `(i', j')`.
    pub c_entry: (usize, usize),
    /// The coefficient the algorithm computes for this triple.
    pub got: Rational,
    /// The coefficient matrix multiplication demands (1 or 0).
    pub want: Rational,
}

impl fmt::Display for CorrectnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tensor mismatch at a{:?}·b{:?}→c{:?}: got {}, want {}",
            self.a_entry, self.b_entry, self.c_entry, self.got, self.want
        )
    }
}

impl BaseGraph {
    /// Creates a base graph from its three coefficient matrices.
    ///
    /// # Panics
    /// Panics if the dimensions are inconsistent: `enc_a` and `enc_b` must be
    /// `b × n₀²` and `dec` must be `n₀² × b`.
    pub fn new(
        name: impl Into<String>,
        n0: usize,
        enc_a: Matrix<Rational>,
        enc_b: Matrix<Rational>,
        dec: Matrix<Rational>,
    ) -> BaseGraph {
        let a = n0 * n0;
        let b = enc_a.rows();
        assert!(n0 >= 1, "n0 must be at least 1");
        assert_eq!(enc_a.cols(), a, "enc_a must have a = n0² columns");
        assert_eq!(enc_b.rows(), b, "enc_b must have b rows");
        assert_eq!(enc_b.cols(), a, "enc_b must have a = n0² columns");
        assert_eq!(dec.rows(), a, "dec must have a = n0² rows");
        assert_eq!(dec.cols(), b, "dec must have b columns");
        BaseGraph {
            name: name.into(),
            n0,
            enc_a,
            enc_b,
            dec,
        }
    }

    /// Human-readable name (e.g. `"strassen"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Block side `n₀` of one recursion step.
    pub fn n0(&self) -> usize {
        self.n0
    }

    /// `a = n₀²`: the number of inputs per matrix (the paper's `a`, so the
    /// base graph has `2a` inputs).
    pub fn a(&self) -> usize {
        self.n0 * self.n0
    }

    /// `b`: the number of multiplications per recursion step.
    pub fn b(&self) -> usize {
        self.enc_a.rows()
    }

    /// The encoding matrix for the given side.
    pub fn enc(&self, side: Side) -> &Matrix<Rational> {
        match side {
            Side::A => &self.enc_a,
            Side::B => &self.enc_b,
        }
    }

    /// The decoding matrix.
    pub fn dec(&self) -> &Matrix<Rational> {
        &self.dec
    }

    /// Flattened index of `A` entry `(i, k)`.
    pub fn a_index(&self, i: usize, k: usize) -> usize {
        debug_assert!(i < self.n0 && k < self.n0);
        i * self.n0 + k
    }

    /// Flattened index of `B` entry `(k, j)`.
    pub fn b_index(&self, k: usize, j: usize) -> usize {
        debug_assert!(k < self.n0 && j < self.n0);
        k * self.n0 + j
    }

    /// Flattened index of `C` entry `(i, j)`.
    pub fn c_index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.n0 && j < self.n0);
        i * self.n0 + j
    }

    /// The exponent `ω₀ = 2·log_a b` of the algorithm's arithmetic
    /// complexity `Θ(n^{ω₀})`.
    pub fn omega0(&self) -> f64 {
        2.0 * (self.b() as f64).ln() / (self.a() as f64).ln()
    }

    /// Whether the algorithm is *fast* in the paper's sense (`ω₀ < 3`, i.e.
    /// `b < a^{3/2} = n₀³`).
    pub fn is_fast(&self) -> bool {
        self.b() < self.n0.pow(3) // b < n0³
    }

    /// Verifies the matrix-multiplication tensor identity
    /// `Σ_m dec[y][m]·enc_a[m][x]·enc_b[m][z] = T(x, z, y)`,
    /// returning every violated triple (empty ⇔ the algorithm is correct).
    pub fn verify_correctness(&self) -> Result<(), Vec<CorrectnessError>> {
        let n0 = self.n0;
        let mut errors = Vec::new();
        for i in 0..n0 {
            for k in 0..n0 {
                for k2 in 0..n0 {
                    for j in 0..n0 {
                        for i2 in 0..n0 {
                            for j2 in 0..n0 {
                                let x = self.a_index(i, k);
                                let z = self.b_index(k2, j);
                                let y = self.c_index(i2, j2);
                                let got: Rational = (0..self.b())
                                    .map(|m| {
                                        self.dec[(y, m)] * self.enc_a[(m, x)] * self.enc_b[(m, z)]
                                    })
                                    .sum();
                                let want = if i == i2 && j == j2 && k == k2 {
                                    Rational::ONE
                                } else {
                                    Rational::ZERO
                                };
                                if got != want {
                                    errors.push(CorrectnessError {
                                        a_entry: (i, k),
                                        b_entry: (k2, j),
                                        c_entry: (i2, j2),
                                        got,
                                        want,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    /// Whether encoding row `m` on `side` is *trivial*: exactly one nonzero
    /// coefficient, equal to 1. A trivial row means the combination vertex is
    /// a *copy* of its single parent (paper Section 3).
    pub fn row_is_trivial(&self, side: Side, m: usize) -> bool {
        row_trivial(self.enc(side), m)
    }

    /// Whether decoding row `y` is trivial (only possible for degenerate
    /// base graphs; Lemma 2 shows correct algorithms never have decoding
    /// copying).
    pub fn dec_row_is_trivial(&self, y: usize) -> bool {
        row_trivial(&self.dec, y)
    }

    /// The paper's standing assumption: every *nontrivial* linear combination
    /// is used in only one multiplication. In coefficient terms: no
    /// nontrivial encoding row is repeated (a repeat would be the same
    /// combination feeding two products, given that values are never
    /// recomputed).
    pub fn single_use_assumption_holds(&self) -> bool {
        for side in [Side::A, Side::B] {
            let enc = self.enc(side);
            for m1 in 0..self.b() {
                if row_trivial(enc, m1) {
                    continue;
                }
                for m2 in (m1 + 1)..self.b() {
                    if enc.row(m1) == enc.row(m2) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Whether the base graph exhibits *multiple copying*: some input entry
    /// is used bare (via a trivial row) in two or more multiplications, so
    /// its meta-vertex branches (paper Figure 2).
    pub fn has_multiple_copying(&self) -> bool {
        for side in [Side::A, Side::B] {
            let enc = self.enc(side);
            for x in 0..self.a() {
                let copies = (0..self.b())
                    .filter(|&m| row_trivial(enc, m) && !enc[(m, x)].is_zero())
                    .count();
                if copies >= 2 {
                    return true;
                }
            }
        }
        false
    }

    /// Lemma 1's hypothesis: not every vertex of the encoding graph for `A`
    /// is duplicated, and similarly for `B`. Equivalently, each encoding has
    /// at least one nontrivial row (otherwise the algorithm takes no linear
    /// combinations of that matrix and is no faster than classical).
    pub fn lemma1_condition_holds(&self) -> bool {
        [Side::A, Side::B]
            .iter()
            .all(|&side| (0..self.b()).any(|m| !self.row_is_trivial(side, m)))
    }

    /// Tensor (Kronecker) product with another base graph: the `⟨n₀·n₀'; b·b'⟩`
    /// algorithm applying `self` at the outer level and `other` inside.
    /// Preserves correctness: the tensor of correct algorithms is correct.
    pub fn tensor(&self, other: &BaseGraph) -> BaseGraph {
        let n0 = self.n0 * other.n0;
        // Flattened entry index of the tensor: the outer block coordinate is
        // (i1, k1) and the inner (i2, k2); the combined matrix entry is
        // (i1·n0'+i2, k1·n0'+k2), flattening to a single [n0²] index.
        let combine = |outer: usize, inner: usize, n_inner: usize| -> usize {
            let (or, oc) = (outer / self.n0, outer % self.n0);
            let (ir, ic) = (inner / n_inner, inner % n_inner);
            (or * n_inner + ir) * n0 + (oc * n_inner + ic)
        };
        let kron = |m1: &Matrix<Rational>, m2: &Matrix<Rational>, by_rows: bool| {
            if by_rows {
                // Encodings: rows are products (pure Kronecker), columns are
                // entries (remapped through `combine`).
                Matrix::from_fn(m1.rows() * m2.rows(), n0 * n0, |row, col| {
                    let (r1, r2) = (row / m2.rows(), row % m2.rows());
                    // Invert `combine`: recover outer and inner entry index.
                    let (cr, cc) = (col / n0, col % n0);
                    let (o, i) = (
                        (cr / other.n0) * self.n0 + cc / other.n0,
                        (cr % other.n0) * other.n0 + cc % other.n0,
                    );
                    m1[(r1, o)] * m2[(r2, i)]
                })
            } else {
                // Decoding: rows are entries, columns are products.
                Matrix::from_fn(n0 * n0, m1.cols() * m2.cols(), |row, col| {
                    let (rr, rc) = (row / n0, row % n0);
                    let (o, i) = (
                        (rr / other.n0) * self.n0 + rc / other.n0,
                        (rr % other.n0) * other.n0 + rc % other.n0,
                    );
                    let (c1, c2) = (col / m2.cols(), col % m2.cols());
                    m1[(o, c1)] * m2[(i, c2)]
                })
            }
        };
        let _ = combine; // documented above; inverted inline in `kron`
        BaseGraph::new(
            format!("{}⊗{}", self.name, other.name),
            n0,
            kron(&self.enc_a, &other.enc_a, true),
            kron(&self.enc_b, &other.enc_b, true),
            kron(&self.dec, &other.dec, false),
        )
    }
}

fn row_trivial(m: &Matrix<Rational>, row: usize) -> bool {
    let mut nonzeros = 0;
    let mut is_one = false;
    for j in 0..m.cols() {
        let c = m[(row, j)];
        if !c.is_zero() {
            nonzeros += 1;
            is_one = c.is_one();
        }
    }
    nonzeros == 1 && is_one
}

impl fmt::Debug for BaseGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BaseGraph({}, n0={}, a={}, b={}, ω0={:.3})",
            self.name,
            self.n0,
            self.a(),
            self.b(),
            self.omega0()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::integer(n)
    }

    /// The trivial ⟨1,1,1;1⟩ algorithm: c = a·b.
    fn trivial() -> BaseGraph {
        BaseGraph::new(
            "trivial",
            1,
            Matrix::from_vec(1, 1, vec![r(1)]),
            Matrix::from_vec(1, 1, vec![r(1)]),
            Matrix::from_vec(1, 1, vec![r(1)]),
        )
    }

    /// A deliberately wrong 1×1 "algorithm": c = 2·a·b.
    fn broken() -> BaseGraph {
        BaseGraph::new(
            "broken",
            1,
            Matrix::from_vec(1, 1, vec![r(2)]),
            Matrix::from_vec(1, 1, vec![r(1)]),
            Matrix::from_vec(1, 1, vec![r(1)]),
        )
    }

    #[test]
    fn trivial_is_correct() {
        assert!(trivial().verify_correctness().is_ok());
    }

    #[test]
    fn broken_is_detected() {
        let errs = broken().verify_correctness().unwrap_err();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].got, r(2));
        assert_eq!(errs[0].want, r(1));
    }

    #[test]
    fn parameters() {
        let g = trivial();
        assert_eq!(g.a(), 1);
        assert_eq!(g.b(), 1);
        assert_eq!(g.n0(), 1);
    }

    #[test]
    fn tensor_of_trivial_is_trivial() {
        let t = trivial().tensor(&trivial());
        assert_eq!(t.n0(), 1);
        assert_eq!(t.b(), 1);
        assert!(t.verify_correctness().is_ok());
    }

    #[test]
    #[should_panic(expected = "dec must have b columns")]
    fn dimension_check() {
        let _ = BaseGraph::new(
            "bad",
            1,
            Matrix::from_vec(2, 1, vec![r(1), r(1)]),
            Matrix::from_vec(2, 1, vec![r(1), r(1)]),
            Matrix::from_vec(1, 1, vec![r(1)]),
        );
    }

    #[test]
    fn trivial_rows() {
        let g = BaseGraph::new(
            "rows",
            1,
            Matrix::from_vec(3, 1, vec![r(1), r(2), r(0)]),
            Matrix::from_vec(3, 1, vec![r(1), r(1), r(1)]),
            Matrix::from_vec(1, 3, vec![r(1), r(0), r(0)]),
        );
        assert!(g.row_is_trivial(Side::A, 0));
        assert!(!g.row_is_trivial(Side::A, 1)); // coefficient 2
        assert!(!g.row_is_trivial(Side::A, 2)); // zero row
        assert!(g.has_multiple_copying()); // B input copied to 3 products
    }
}
