//! Mixed-radix index arithmetic for the recursive coordinates of `G_r`.
//!
//! Every vertex of `G_r` is addressed by a *multiplication prefix*
//! `(t₁,…,t_ℓ) ∈ [b]^ℓ` (which subproblem chain it belongs to, coarsest
//! level first) and an *entry suffix* `(x_{ℓ+1},…,x_r) ∈ [a]^{r-ℓ}` (which
//! block entry it is, again coarsest first). Both are packed into `u64`s
//! most-significant-digit-first, so that all vertices sharing a prefix form
//! a contiguous range — which is exactly what Fact 1 extraction needs.

/// Packs digits (most significant first) in base `radix`.
pub fn pack(digits: &[usize], radix: usize) -> u64 {
    digits
        .iter()
        .fold(0u64, |acc, &d| acc * radix as u64 + d as u64)
}

/// Unpacks `value` into `len` digits (most significant first) in base `radix`.
pub fn unpack(value: u64, radix: usize, len: usize) -> Vec<usize> {
    let mut digits = vec![0usize; len];
    unpack_into(value, radix, &mut digits);
    digits
}

/// Allocation-free [`unpack`]: fills `digits` (most significant first) from
/// `value` in base `radix`. Routing hot paths decode millions of digit
/// vectors; reusing one scratch slice keeps them off the allocator.
pub fn unpack_into(value: u64, radix: usize, digits: &mut [usize]) {
    let mut v = value;
    for d in digits.iter_mut().rev() {
        *d = (v % radix as u64) as usize;
        v /= radix as u64;
    }
    debug_assert_eq!(
        v,
        0,
        "value does not fit in {} base-{radix} digits",
        digits.len()
    );
}

/// A radix with its powers precomputed up to the largest exponent whose
/// value fits in `u64`. Turns the `radix^exp` in hot-path address
/// arithmetic ([`crate::Cdag::id`] / [`crate::Cdag::vref`], chain lifting)
/// into a table load.
#[derive(Clone, Debug)]
pub struct Radix {
    radix: usize,
    pows: Vec<u64>,
}

impl Radix {
    /// Precomputes the power table for `radix ≥ 2`.
    pub fn new(radix: usize) -> Radix {
        assert!(radix >= 2, "radix must be at least 2");
        let mut pows = vec![1u64];
        while let Some(next) = pows.last().unwrap().checked_mul(radix as u64) {
            pows.push(next);
        }
        Radix { radix, pows }
    }

    /// The radix itself.
    pub fn radix(&self) -> usize {
        self.radix
    }

    /// `radix^exp`, panicking (like [`pow`]) when the value overflows `u64`.
    #[inline]
    pub fn pow(&self, exp: u32) -> u64 {
        self.pows
            .get(exp as usize)
            .copied()
            .expect("index space overflow: graph too large")
    }
}

/// `radix^exp` as `u64`, panicking on overflow (graph sizes must fit).
pub fn pow(radix: usize, exp: u32) -> u64 {
    (radix as u64)
        .checked_pow(exp)
        // audit: safe — documented overflow panic; graph constructors validate sizes first
        .expect("index space overflow: graph too large")
}

/// Appends one digit at the least-significant (deepest recursion) end.
pub fn push_digit(packed: u64, digit: usize, radix: usize) -> u64 {
    packed * radix as u64 + digit as u64
}

/// Splits off the most-significant digit of a `len`-digit value.
pub fn split_msd(packed: u64, radix: usize, len: usize) -> (usize, u64) {
    debug_assert!(len >= 1);
    let lower = pow(radix, (len - 1) as u32);
    ((packed / lower) as usize, packed % lower)
}

/// Splits a `len`-digit value into its `plen`-digit prefix and the rest.
pub fn split_prefix(packed: u64, radix: usize, len: usize, plen: usize) -> (u64, u64) {
    debug_assert!(plen <= len);
    let lower = pow(radix, (len - plen) as u32);
    (packed / lower, packed % lower)
}

/// Concatenates `prefix` (any length) with a `slen`-digit suffix.
pub fn concat(prefix: u64, suffix: u64, radix: usize, slen: usize) -> u64 {
    prefix * pow(radix, slen as u32) + suffix
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for radix in [2usize, 4, 7] {
            for v in 0..(radix as u64).pow(3) {
                let d = unpack(v, radix, 3);
                assert_eq!(pack(&d, radix), v);
            }
        }
    }

    #[test]
    fn msd_first() {
        // digits (1, 2, 3) base 7 = 1·49 + 2·7 + 3.
        assert_eq!(pack(&[1, 2, 3], 7), 66);
        assert_eq!(unpack(66, 7, 3), vec![1, 2, 3]);
    }

    #[test]
    fn split_and_concat() {
        let v = pack(&[3, 1, 4, 1], 7);
        let (msd, rest) = split_msd(v, 7, 4);
        assert_eq!(msd, 3);
        assert_eq!(unpack(rest, 7, 3), vec![1, 4, 1]);

        let (pre, suf) = split_prefix(v, 7, 4, 2);
        assert_eq!(unpack(pre, 7, 2), vec![3, 1]);
        assert_eq!(unpack(suf, 7, 2), vec![4, 1]);
        assert_eq!(concat(pre, suf, 7, 2), v);
    }

    #[test]
    fn push_digit_appends_lsd() {
        let v = pack(&[2, 5], 7);
        assert_eq!(push_digit(v, 6, 7), pack(&[2, 5, 6], 7));
    }

    #[test]
    fn pow_works() {
        assert_eq!(pow(7, 0), 1);
        assert_eq!(pow(4, 5), 1024);
    }

    #[test]
    fn radix_table_matches_checked_pow() {
        for radix in [2usize, 4, 7, 49] {
            let table = Radix::new(radix);
            assert_eq!(table.radix(), radix);
            let mut exp = 0u32;
            while (radix as u64).checked_pow(exp).is_some() {
                assert_eq!(table.pow(exp), pow(radix, exp), "radix={radix} exp={exp}");
                exp += 1;
            }
        }
    }

    #[test]
    #[should_panic(expected = "index space overflow")]
    fn radix_table_overflow_panics() {
        let _ = Radix::new(7).pow(64);
    }

    #[test]
    fn unpack_into_matches_unpack() {
        let mut buf = [0usize; 4];
        for v in 0..7u64.pow(4) {
            unpack_into(v, 7, &mut buf);
            assert_eq!(buf.to_vec(), unpack(v, 7, 4));
        }
    }

    #[test]
    #[should_panic(expected = "index space overflow")]
    fn pow_overflow_panics() {
        let _ = pow(7, 64);
    }
}
