//! Construction of the recursive CDAG `G_r` from a base graph.

use crate::base::{BaseGraph, Side};
use crate::graph::{Cdag, Layer, VertexId};
use crate::index;
use mmio_matrix::Rational;

/// Builds the CDAG `G_r` of `base` applied recursively `r` times
/// (multiplying `n₀^r × n₀^r` matrices).
///
/// Edge rules (coefficients are the base-graph coefficients):
///
/// - encoding rank `t-1 → t`: vertex `(m; x_t, xs)` feeds `(m·b+τ; xs)`
///   whenever `enc[τ][x_t] ≠ 0`;
/// - multiplication: encoding-rank-`r` vertices `m` of both sides feed the
///   product vertex `m` (decoding rank 0) with coefficient 1;
/// - decoding rank `k-1 → k`: vertex `(m·b+τ; ys)` feeds `(m; υ·a^{k-1}+ys)`
///   whenever `dec[υ][τ] ≠ 0`.
///
/// # Panics
/// Panics if the graph would exceed `u32` vertex ids.
pub fn build_cdag(base: &BaseGraph, r: u32) -> Cdag {
    let a = base.a();
    let b = base.b();

    // Segment layout: EncA 0..=r, EncB 0..=r, Dec 0..=r.
    let mut seg_offsets = Vec::with_capacity(3 * (r as usize + 1) + 1);
    let mut total: u64 = 0;
    seg_offsets.push(0);
    for _side in 0..2 {
        for t in 0..=r {
            total += index::pow(b, t) * index::pow(a, r - t);
            seg_offsets.push(total);
        }
    }
    for k in 0..=r {
        total += index::pow(b, r - k) * index::pow(a, k);
        seg_offsets.push(total);
    }
    assert!(
        total <= u32::MAX as u64,
        "CDAG too large for u32 vertex ids ({total} vertices)"
    );
    let n = total as usize;

    // Per-vertex predecessor lists; successor CSR is derived afterwards.
    let mut pred_off = vec![0u32; n + 1];
    let mut preds: Vec<(VertexId, Rational)> = Vec::new();

    // A throwaway Cdag shell for id computation would be circular, so the
    // builder carries its own closure over the layout.
    let seg_index = |layer: Layer, level: u32| -> usize {
        let l = match layer {
            Layer::EncA => 0,
            Layer::EncB => 1,
            Layer::Dec => 2,
        };
        l * (r as usize + 1) + level as usize
    };
    let id = |layer: Layer, level: u32, mul: u64, entry: u64| -> VertexId {
        let suffix_len = match layer {
            Layer::EncA | Layer::EncB => r - level,
            Layer::Dec => level,
        };
        let local = mul * index::pow(a, suffix_len) + entry;
        VertexId((seg_offsets[seg_index(layer, level)] + local) as u32)
    };

    // Walk vertices in dense order, pushing each one's predecessor list.
    let mut push_vertex = |ps: &mut Vec<(VertexId, Rational)>, v: usize| {
        pred_off[v + 1] = pred_off[v] + ps.len() as u32;
        preds.append(ps);
    };

    let mut scratch: Vec<(VertexId, Rational)> = Vec::new();
    for (layer, side) in [(Layer::EncA, Side::A), (Layer::EncB, Side::B)] {
        let enc = base.enc(side);
        for t in 0..=r {
            let muls = index::pow(b, t);
            let suffix = index::pow(a, r - t);
            for m in 0..muls {
                for e in 0..suffix {
                    let v = id(layer, t, m, e);
                    if t > 0 {
                        // Parent at rank t-1: prefix m minus its last digit
                        // τ; parent entry gains x_t as most significant digit.
                        let tau = (m % b as u64) as usize;
                        let m_parent = m / b as u64;
                        for x in 0..a {
                            let c = enc[(tau, x)];
                            if !c.is_zero() {
                                let e_parent = (x as u64) * suffix + e;
                                scratch.push((id(layer, t - 1, m_parent, e_parent), c));
                            }
                        }
                    }
                    push_vertex(&mut scratch, v.idx());
                }
            }
        }
    }
    let dec = base.dec();
    for k in 0..=r {
        let muls = index::pow(b, r - k);
        let suffix = index::pow(a, k);
        for m in 0..muls {
            for e in 0..suffix {
                let v = id(Layer::Dec, k, m, e);
                if k == 0 {
                    // Product vertex: reads the two rank-r combinations m.
                    scratch.push((id(Layer::EncA, r, m, 0), Rational::ONE));
                    scratch.push((id(Layer::EncB, r, m, 0), Rational::ONE));
                } else {
                    // Entry suffix: most significant digit is υ.
                    let upsilon = (e / index::pow(a, k - 1)) as usize;
                    let e_rest = e % index::pow(a, k - 1);
                    for tau in 0..b {
                        let c = dec[(upsilon, tau)];
                        if !c.is_zero() {
                            let m_parent = m * b as u64 + tau as u64;
                            scratch.push((id(Layer::Dec, k - 1, m_parent, e_rest), c));
                        }
                    }
                }
                push_vertex(&mut scratch, v.idx());
            }
        }
    }

    // Split predecessor pairs and derive the successor CSR by counting sort.
    let mut pred_tgt = Vec::with_capacity(preds.len());
    let mut pred_coeff = Vec::with_capacity(preds.len());
    let mut succ_count = vec![0u32; n];
    for &(p, c) in &preds {
        pred_tgt.push(p);
        pred_coeff.push(c);
        succ_count[p.idx()] += 1;
    }
    let mut succ_off = vec![0u32; n + 1];
    for i in 0..n {
        succ_off[i + 1] = succ_off[i] + succ_count[i];
    }
    let mut succ_tgt = vec![VertexId(0); preds.len()];
    let mut cursor = succ_off.clone();
    for v in 0..n {
        for ei in pred_off[v]..pred_off[v + 1] {
            let p = pred_tgt[ei as usize];
            succ_tgt[cursor[p.idx()] as usize] = VertexId(v as u32);
            cursor[p.idx()] += 1;
        }
    }

    Cdag::from_parts(
        base.clone(),
        r,
        seg_offsets,
        pred_off,
        pred_tgt,
        pred_coeff,
        succ_off,
        succ_tgt,
    )
}

/// Convenience: builds `G_r` and sanity-checks segment sizes against the
/// closed-form counts. Intended for tests and examples.
pub fn build_checked(base: &BaseGraph, r: u32) -> Cdag {
    let g = build_cdag(base, r);
    let (a, b) = (base.a(), base.b());
    for t in 0..=r {
        assert_eq!(
            g.segment_len(Layer::EncA, t),
            index::pow(b, t) * index::pow(a, r - t)
        );
        assert_eq!(
            g.segment_len(Layer::Dec, t),
            index::pow(b, r - t) * index::pow(a, t)
        );
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_matrix::Matrix;

    fn r_(n: i64) -> Rational {
        Rational::integer(n)
    }

    /// Classical 2×2 multiplication as a base graph: b = 8 products
    /// `a_{ik}·b_{kj}`, outputs `c_{ij} = Σ_k`.
    fn classical2() -> BaseGraph {
        let n0 = 2;
        let a = 4;
        let b = 8;
        let mut enc_a = Matrix::zeros(b, a);
        let mut enc_b = Matrix::zeros(b, a);
        let mut dec = Matrix::zeros(a, b);
        let mut m = 0;
        for i in 0..n0 {
            for j in 0..n0 {
                for k in 0..n0 {
                    enc_a[(m, i * n0 + k)] = r_(1);
                    enc_b[(m, k * n0 + j)] = r_(1);
                    dec[(i * n0 + j, m)] = r_(1);
                    m += 1;
                }
            }
        }
        BaseGraph::new("classical2", n0, enc_a, enc_b, dec)
    }

    #[test]
    fn classical2_is_correct() {
        assert!(classical2().verify_correctness().is_ok());
    }

    #[test]
    fn g1_shape() {
        let g = build_checked(&classical2(), 1);
        // EncA: 4 inputs + 8 combos; EncB same; Dec: 8 products + 4 outputs.
        assert_eq!(g.n_vertices(), 4 + 8 + 4 + 8 + 8 + 4);
        assert_eq!(g.products().count(), 8);
        assert_eq!(g.outputs().count(), 4);
        assert_eq!(g.inputs().count(), 8);
    }

    #[test]
    fn product_vertices_read_two_operands() {
        let g = build_cdag(&classical2(), 2);
        for p in g.products() {
            assert_eq!(g.preds(p).len(), 2, "product must read two combinations");
        }
    }

    #[test]
    fn ids_roundtrip() {
        let g = build_cdag(&classical2(), 2);
        for v in g.vertices() {
            assert_eq!(g.id(g.vref(v)), v);
        }
    }

    #[test]
    fn dense_order_is_topological() {
        let g = build_cdag(&classical2(), 2);
        for v in g.vertices() {
            for &p in g.preds(v) {
                assert!(p < v, "edge {p:?}->{v:?} violates topological id order");
            }
        }
    }

    #[test]
    fn ranks() {
        let g = build_cdag(&classical2(), 2);
        for v in g.inputs() {
            assert_eq!(g.rank(v), 0);
        }
        for v in g.products() {
            assert_eq!(g.rank(v), 3); // r+1 = 3
        }
        for v in g.outputs() {
            assert_eq!(g.rank(v), 5); // 2r+1 = 5
        }
    }

    #[test]
    fn succs_mirror_preds() {
        let g = build_cdag(&classical2(), 2);
        for v in g.vertices() {
            for &p in g.preds(v) {
                assert!(g.succs(p).contains(&v));
            }
            for &s in g.succs(v) {
                assert!(g.preds(s).contains(&v));
            }
        }
    }

    #[test]
    fn edge_count_matches_both_directions() {
        let g = build_cdag(&classical2(), 3);
        let pred_total: usize = g.vertices().map(|v| g.preds(v).len()).sum();
        let succ_total: usize = g.vertices().map(|v| g.succs(v).len()).sum();
        assert_eq!(pred_total, succ_total);
        assert_eq!(pred_total, g.n_edges());
    }

    #[test]
    fn input_output_lookup() {
        let g = build_cdag(&classical2(), 2);
        // 4x4 matrices: every entry addressable, ids distinct.
        let mut seen = std::collections::HashSet::new();
        for row in 0..4 {
            for col in 0..4 {
                assert!(seen.insert(g.input_a(row, col)));
            }
        }
        for row in 0..4 {
            for col in 0..4 {
                assert!(seen.insert(g.input_b(row, col)));
                assert!(g.is_output(g.output(row, col)));
            }
        }
        assert!(g.is_input(g.input_a(0, 0)));
        assert!(!g.is_input(g.output(0, 0)));
    }
}
