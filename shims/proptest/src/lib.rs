//! Offline stand-in for [`proptest`](https://docs.rs/proptest): the
//! [`Strategy`] trait over integer/float ranges, tuples, `collection::vec`,
//! and `prop_map`, driven by the [`proptest!`] macro with deterministic
//! seeding (seed = hash of the test name, [`CASES`] cases per test).
//!
//! No shrinking: a failing case reports its index and seed instead. See
//! `docs/offline-build.md` for why the workspace vendors its dependencies.

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore, SeedableRng};

/// Number of cases each [`proptest!`]-generated test runs.
pub const CASES: u32 = 64;

/// The deterministic generator backing strategy sampling.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds from a test name (FNV-1a), so every test gets a distinct but
    /// reproducible stream.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A proptest failure raised by `prop_assert!`-family macros.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident: $idx:tt),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

pub mod collection {
    //! Collection strategies (`vec`).

    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Anything usable as the vec-length argument: a fixed `usize` or a
    /// `usize` range.
    pub trait IntoLenRange {
        /// Draws a concrete length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLenRange for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLenRange for core::ops::Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl IntoLenRange for core::ops::RangeInclusive<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `len`.
    pub fn vec<S: Strategy, L: IntoLenRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoLenRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.draw_len(rng);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*` imports.
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Strategy, TestCaseError, TestRng};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies,
/// mirroring `proptest::proptest!`. Each test runs [`CASES`] deterministic
/// cases; a failure reports the case index (no shrinking).
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $( $arg:pat in $strat:expr ),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for case in 0..$crate::CASES {
                    $( let $arg = $crate::Strategy::gen_value(&$strat, &mut rng); )*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest {} failed at case {case}: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(::std::format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 0usize..10, (a, b) in (-5i64..=5, 1i64..=4)) {
            prop_assert!(x < 10);
            prop_assert!((-5..=5).contains(&a));
            prop_assert!((1..=4).contains(&b));
        }

        #[test]
        fn mapped_vec(v in crate::collection::vec(0u32..100, 3..6).prop_map(|v| v.len())) {
            prop_assert!((3..6).contains(&v));
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        let s = crate::collection::vec(0u64..1000, 4);
        assert_eq!(s.gen_value(&mut a), s.gen_value(&mut b));
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_surface() {
        proptest! {
            fn inner(x in 0u32..10) {
                prop_assert!(x < 5);
            }
        }
        inner();
    }
}
