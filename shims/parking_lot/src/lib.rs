//! Offline stand-in for [`parking_lot`](https://docs.rs/parking_lot):
//! `Mutex` and `RwLock` with parking_lot's poison-free API, implemented
//! over `std::sync` (a poisoned std lock — a panic while held — panics the
//! acquirer instead of returning `Err`, which matches how parking_lot
//! users treat the lock anyway).
//!
//! See `docs/offline-build.md` for why the workspace vendors its
//! dependencies.

use std::sync;

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
