//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` against the shimmed `serde` value-tree traits.
//!
//! Implemented directly on `proc_macro` (no `syn`/`quote`, which are not
//! available offline). Supports exactly the shape this workspace derives:
//! **non-generic structs with named fields**. Anything else produces a
//! `compile_error!` pointing here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed skeleton of a `struct` item: its name and named fields.
struct StructShape {
    name: String,
    fields: Vec<String>,
}

fn parse_struct(input: TokenStream, trait_name: &str) -> Result<StructShape, String> {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    let name = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => match iter.next() {
                Some(TokenTree::Ident(n)) => break n.to_string(),
                _ => return Err(format!("derive({trait_name}): malformed struct")),
            },
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" || id.to_string() == "union" => {
                return Err(format!(
                    "derive({trait_name}) shim supports only structs with named fields"
                ));
            }
            Some(_) => continue,
            None => return Err(format!("derive({trait_name}): no struct found")),
        }
    };
    // Next token must be the brace group; generics are unsupported.
    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!(
                "derive({trait_name}) shim does not support generic structs"
            ));
        }
        _ => {
            return Err(format!(
                "derive({trait_name}) shim supports only structs with named fields"
            ))
        }
    };

    let mut fields = Vec::new();
    let mut depth = 0usize;
    let mut chunk: Vec<TokenTree> = Vec::new();
    let flush = |chunk: &mut Vec<TokenTree>, fields: &mut Vec<String>| {
        // Within one field: skip attributes and visibility, first ident
        // before the `:` is the field name.
        let mut it = chunk.drain(..).peekable();
        while let Some(tt) = it.next() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '#' => {
                    it.next();
                }
                TokenTree::Ident(id) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = it.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            it.next();
                        }
                    }
                }
                TokenTree::Ident(id) => {
                    fields.push(id.to_string());
                    break;
                }
                _ => {}
            }
        }
    };
    for tt in body {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && depth > 0 => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                flush(&mut chunk, &mut fields);
                chunk.clear();
                continue;
            }
            _ => {}
        }
        chunk.push(tt);
    }
    flush(&mut chunk, &mut fields);
    Ok(StructShape { name, fields })
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("valid error tokens")
}

/// Derives the shimmed `serde::Serialize` (value-tree rendering).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input, "Serialize") {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let mut entries = String::new();
    for f in &shape.fields {
        entries.push_str(&format!(
            "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),"
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{entries}])\n\
             }}\n\
         }}",
        name = shape.name,
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives the shimmed `serde::Deserialize` (value-tree reconstruction).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input, "Deserialize") {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let mut inits = String::new();
    for f in &shape.fields {
        inits.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value(v.get(\"{f}\").ok_or_else(|| \
                 ::serde::de::Error::custom(\"missing field `{f}`\"))?)?,"
        ));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                 match v {{\n\
                     ::serde::Value::Object(_) => ::std::result::Result::Ok({name} {{ {inits} }}),\n\
                     other => ::std::result::Result::Err(::serde::de::Error::custom(\
                         ::std::format!(\"expected object, got {{}}\", other.kind()))),\n\
                 }}\n\
             }}\n\
         }}",
        name = shape.name,
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
