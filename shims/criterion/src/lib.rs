//! Offline stand-in for [`criterion`](https://docs.rs/criterion): the
//! `Criterion` / `BenchmarkGroup` / `Bencher` / `BenchmarkId` API surface
//! this workspace's benches use, with simple wall-clock measurement
//! (median of a handful of timed batches) printed to stdout.
//!
//! No statistics, plots, or baselines — this exists so `cargo bench`
//! compiles and produces usable numbers offline; see
//! `docs/offline-build.md`. When run under `cargo test` (bench harnesses
//! compiled as tests), each benchmark executes once for smoke coverage.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier of one parameterized benchmark within a group.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Measurement driver handed to the bench closure.
pub struct Bencher {
    /// Measured median batch time, populated by [`Bencher::iter`].
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f`, storing the median duration over several batches.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One warmup call, then time batches.
        std::hint::black_box(f());
        const BATCHES: usize = 5;
        let mut times = Vec::with_capacity(BATCHES);
        let mut total_iters = 0u64;
        for _ in 0..BATCHES {
            // Scale batch size so fast bodies get multiple iterations.
            let start = Instant::now();
            let mut iters = 0u64;
            loop {
                std::hint::black_box(f());
                iters += 1;
                if start.elapsed() >= Duration::from_millis(10) || iters >= 1000 {
                    break;
                }
            }
            times.push(start.elapsed() / u32::try_from(iters).unwrap_or(u32::MAX));
            total_iters += iters;
        }
        times.sort();
        self.elapsed = times[BATCHES / 2];
        self.iters = total_iters;
    }
}

fn run_one(full_name: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    println!(
        "bench {full_name:<50} {:>12.3?} /iter ({} iters)",
        b.elapsed, b.iters
    );
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the shim ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim ignores time limits.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.name), |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Re-export matching criterion's helper (std's black_box).
pub use std::hint::black_box;

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &x| b.iter(|| x * 2));
        g.finish();
    }
}
