//! Offline stand-in for [`crossbeam`](https://docs.rs/crossbeam): scoped
//! threads ([`scope`]) over `std::thread::scope` and bounded channels
//! ([`channel::bounded`]) over `std::sync::mpsc::sync_channel`.
//!
//! See `docs/offline-build.md` for why the workspace vendors its
//! dependencies. Semantics match crossbeam for the workspace's usage
//! pattern (every handle joined inside the scope); unjoined panicking
//! threads abort the scope via `std::thread::scope`'s propagation rather
//! than being collected into the returned `Result`.

use std::any::Any;

/// A scope in which threads borrowing local data may be spawned.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread and returns its result (`Err` if it panicked).
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread inside the scope. The closure receives the scope
    /// again (crossbeam's signature), allowing nested spawns.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Creates a scope for spawning threads that borrow from the caller's
/// stack. Mirrors `crossbeam::scope`, which returns `Err` only when a
/// spawned thread panicked without being joined.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

pub mod channel {
    //! Multi-producer multi-consumer channels (bounded flavor only).

    use std::fmt;
    use std::sync::mpsc;

    /// The sending half of a bounded channel.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    /// The receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when all receivers disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned when all senders disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks until space is available, then sends.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }
    }

    /// Creates a bounded channel with the given capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_return_values() {
        let data = [1, 2, 3];
        let sum = super::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(sum, 12);
    }

    #[test]
    fn channel_roundtrip_across_threads() {
        let (tx, rx) = super::channel::bounded::<u32>(1);
        super::scope(|s| {
            let h = s.spawn(move |_| rx.recv().unwrap());
            tx.send(99).unwrap();
            assert_eq!(h.join().unwrap(), 99);
        })
        .unwrap();
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = super::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 7);
    }
}
