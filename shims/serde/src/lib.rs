//! Offline stand-in for [`serde`](https://docs.rs/serde), built around an
//! explicit JSON-like [`Value`] tree instead of upstream's
//! serializer/deserializer visitors.
//!
//! The container this repository builds in has no network access to
//! crates.io, so the workspace vendors minimal shims for its external
//! dependencies (see `docs/offline-build.md`). The API is intentionally
//! much smaller than real serde:
//!
//! - [`Serialize`] renders a value into a [`Value`];
//! - [`Deserialize`] reconstructs a value from a [`Value`];
//! - the `derive` feature re-exports `#[derive(Serialize, Deserialize)]`
//!   macros (from the sibling `serde_derive` shim) for non-generic structs
//!   with named fields — the only shape this workspace derives.
//!
//! `serde_json` (also shimmed) supplies the text format on top of [`Value`].

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;

/// A JSON-shaped value tree: the interchange type between [`Serialize`],
/// [`Deserialize`], and the `serde_json` shim.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (fits all workspace counters up to `i64::MAX`).
    Int(i64),
    /// Unsigned integer beyond `i64::MAX`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys (field order of the struct).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// One-word name of the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialization out of a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, de::Error>;
}

pub mod ser {
    //! Serialization-side helpers (placeholder module mirroring serde's
    //! layout so `use serde::ser::...` paths keep resolving).
    pub use super::Serialize;
}

pub mod de {
    //! Deserialization-side error type, mirroring `serde::de::Error::custom`.
    use std::fmt;

    /// A deserialization failure.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct Error(String);

    impl Error {
        /// Creates an error from any displayable message.
        pub fn custom<T: fmt::Display>(msg: T) -> Error {
            Error(msg.to_string())
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for Error {}
}

fn type_error<T>(want: &str, got: &Value) -> Result<T, de::Error> {
    Err(de::Error::custom(format!(
        "expected {want}, got {}",
        got.kind()
    )))
}

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as u64;
                if let Ok(i) = i64::try_from(v) { Value::Int(i) } else { Value::UInt(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let raw: u64 = match *v {
                    Value::Int(i) if i >= 0 => i as u64,
                    Value::UInt(u) => u,
                    ref other => return type_error("unsigned integer", other),
                };
                <$t>::try_from(raw).map_err(|_| de::Error::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let raw: i64 = match *v {
                    Value::Int(i) => i,
                    Value::UInt(u) => i64::try_from(u)
                        .map_err(|_| de::Error::custom("integer out of range"))?,
                    ref other => return type_error("integer", other),
                };
                <$t>::try_from(raw).map_err(|_| de::Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_serialize_unsigned!(u8, u16, u32, u64, usize);
impl_serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match *v {
            Value::Float(f) => Ok(f),
            Value::Int(i) => Ok(i as f64),
            Value::UInt(u) => Ok(u as f64),
            ref other => type_error("number", other),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            ref other => type_error("bool", other),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => type_error("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_error("array", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let v: Vec<u32> = Deserialize::from_value(&vec![1u32, 2, 3].to_value()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn big_u64_preserved() {
        let big = u64::MAX - 1;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn type_mismatches_rejected() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(u32::from_value(&Value::UInt(u64::MAX)).is_err());
        assert!(String::from_value(&Value::Int(1)).is_err());
    }

    #[test]
    fn object_get() {
        let v = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
        assert_eq!(v.get("b"), None);
    }
}
