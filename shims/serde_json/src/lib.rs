//! Offline stand-in for [`serde_json`](https://docs.rs/serde_json): the JSON
//! text format on top of the shimmed `serde` [`Value`] tree.
//!
//! Provides exactly what this workspace calls: [`to_string`],
//! [`to_string_pretty`], and [`from_str`], plus [`Value`] re-exported for
//! ad-hoc inspection. See `docs/offline-build.md` for why the workspace
//! vendors its dependencies.

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt;

/// A JSON serialization or parse failure.
#[derive(Clone, Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Error {
        Error(e.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Always keep a decimal point or exponent so the token
                // re-parses as a float.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(Error(format!(
                "unexpected character '{}' at byte {}",
                c as char, self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(Error("unterminated string".into()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(Error("unterminated escape".into()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("invalid \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // workspace's data; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(Error("invalid escape".into())),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multibyte UTF-8: back up and decode just this one
                    // character from a ≤ 4-byte window. Never re-validate
                    // the whole remaining input per character — that made
                    // parsing quadratic in the length of long strings.
                    let start = self.pos - 1;
                    let end = self.bytes.len().min(start + 4);
                    let window = &self.bytes[start..end];
                    let valid = match std::str::from_utf8(window) {
                        Ok(s) => s,
                        // The window may cut the *next* character short;
                        // any valid prefix still holds this one whole.
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&window[..e.valid_up_to()])
                                .expect("validated prefix")
                        }
                        Err(_) => return Err(Error("invalid UTF-8".into())),
                    };
                    let c = valid.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes[self.pos] == b'-' {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number '{text}'")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("strassen \"fast\"".into())),
            ("n".into(), Value::Int(7)),
            ("omega".into(), Value::Float(2.807)),
            (
                "rows".into(),
                Value::Array(vec![Value::Int(1), Value::Int(-2)]),
            ),
            ("ok".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
        ]);
        let compact = to_string(&v).unwrap();
        let parsed: Value = from_str(&compact).unwrap();
        assert_eq!(parsed, v);
        let pretty = to_string_pretty(&v).unwrap();
        let parsed_pretty: Value = from_str(&pretty).unwrap();
        assert_eq!(parsed_pretty, v);
        assert!(pretty.contains("\n  \"name\""));
    }

    #[test]
    fn malformed_rejected() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"abc").is_err());
    }

    #[test]
    fn integers_stay_exact() {
        let parsed: Value = from_str("18446744073709551615").unwrap();
        assert_eq!(parsed, Value::UInt(u64::MAX));
        let parsed: Value = from_str("-9223372036854775808").unwrap();
        assert_eq!(parsed, Value::Int(i64::MIN));
    }

    #[test]
    fn floats_keep_a_marker() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
    }

    #[test]
    fn multibyte_strings_roundtrip() {
        // Adjacent multibyte chars exercise the decode window cutting the
        // *next* character short; the tail digits exercise the ASCII path
        // after a multibyte prefix.
        let s = "ω₀ ≈ 2.807 — strassen⊗strassen, naïve=false, ✓✓✓ 123".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
        // A long single-token string parses in linear time; this is the
        // regression shape (schedule certificates carry ~10⁶-char op
        // strings), though only correctness is asserted here.
        let long = "LC".repeat(1 << 18);
        let back: String = from_str(&to_string(&long).unwrap()).unwrap();
        assert_eq!(back, long);
    }

    #[test]
    fn escapes_roundtrip() {
        let s = "line\nbreak\ttab \"quote\" back\\slash".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
