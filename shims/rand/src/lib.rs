//! Offline stand-in for [`rand` 0.8](https://docs.rs/rand/0.8), providing
//! exactly the API surface this workspace uses: [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and the [`Rng`] convenience methods `gen` / `gen_range`
//! over integer and float ranges.
//!
//! The container this repository builds in has no network access to
//! crates.io, so the workspace vendors minimal shims for its external
//! dependencies (see `docs/offline-build.md`). The generator here is
//! xoshiro256** seeded through SplitMix64 — high-quality, deterministic,
//! and *not* a drop-in bit-for-bit match for upstream `StdRng` (which is
//! ChaCha12). Seeded test expectations are therefore stable within this
//! repo but not portable to upstream `rand`.

/// A random number generator: the single primitive every other method is
/// derived from.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a uniform value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one sample from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Uniform `u64` in `[0, n)` by rejection from the top of the 64-bit space
/// (Lemire-style bound without bias).
fn uniform_below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample an empty range");
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// RNGs constructible from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> StdRng {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(-9i64..=9);
            assert!((-9..=9).contains(&x));
            let y = rng.gen_range(0usize..7);
            assert!(y < 7);
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn all_residues_reachable() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_u64_differs_across_draws() {
        let mut rng = StdRng::seed_from_u64(3);
        let a: u64 = rng.gen();
        let b: u64 = rng.gen();
        assert_ne!(a, b);
    }
}
